"""E10 — streaming compiled backend vs eager compiled execution.

Section 4 ("Laziness, Latency, and Concurrency") makes *pipelined*
evaluation the centerpiece of Kleisli's responsiveness story: results should
reach the consumer while the remote source is still producing.  This
benchmark measures what the pull-based lowering (``compile_stream``) buys
over the eager closure backend on a remote-scan comprehension chain:

* **time-to-first-result** — eager execution cannot yield anything until the
  scan is drained (O(n) source elements); the streaming pipeline yields
  after O(1);
* **total time** — both modes consume every element, so full-drain time must
  stay at parity;
* **peak intermediate size** — the eager backend buffers the whole result
  list; the pipeline holds no intermediate collection.

Two shapes that used to break the pipeline are benchmarked against the pure
``Ext`` chain:

* a **union chain** — ``Union`` of two remote-scan comprehensions; the
  typed streaming union (kind proof, see ``compile._stream_union``) keeps
  its TTFR at one source element where the eager section used to drain both
  operands first;
* a **blocked-join probe** — a blocked join with block size 1 (what the
  optimizer emits under the streaming hint) yields per outer element where
  the default block buffers ``block_size`` outer elements first.

A ``BENCH_streaming.json`` summary is written next to this file for the
experiment log; CI uploads it as a workflow artifact and gates on the
union-chain/join TTFR factors below.
"""

import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.core.values import CList, iter_collection

from repro.core.values import Record

from conftest import report, update_summary

#: Elements produced by the simulated remote scan, and per-element latency.
ELEMENTS = 150
LATENCY = 0.0015

#: Asserted floor for the time-to-first-result improvement.  The local bar
#: is 3x (the acceptance criterion; observed margin is orders of magnitude);
#: CI sets it lower to absorb shared-runner wall-clock noise.
MIN_SPEEDUP = float(os.environ.get("BENCH_STREAMING_MIN_SPEEDUP", "3.0"))
#: Allowed relative difference in full-drain time between the two backends.
PARITY_TOLERANCE = float(os.environ.get("BENCH_STREAMING_PARITY", "0.10"))
#: TTFR regression gates: a streamed union chain / unit-block join probe must
#: reach its first result within this factor of the pure-Ext chain's TTFR
#: (the acceptance bar is 5x; CI can widen it for shared-runner jitter).
UNION_TTFR_FACTOR = float(os.environ.get("BENCH_STREAMING_UNION_FACTOR", "5.0"))
JOIN_TTFR_FACTOR = float(os.environ.get("BENCH_STREAMING_JOIN_FACTOR", "5.0"))
#: Local-throughput gate: the chunked lowering must finish the local
#: ext-chain workload at least this many times faster than the per-element
#: stream (the acceptance bar is 2x; CI relaxes it for shared runners).
CHUNK_FACTOR = float(os.environ.get("BENCH_STREAMING_CHUNK_FACTOR", "2.0"))
#: TTFR guard for the ramp: the chunked remote chain's first result must
#: arrive within this factor of the per-element stream's TTFR.
CHUNK_TTFR_FACTOR = float(os.environ.get("BENCH_STREAMING_CHUNK_TTFR", "1.5"))

REPS = 3


class SlowRemoteDriver(Driver):
    """A scan whose cursor yields one element per ``LATENCY`` seconds."""

    def __init__(self, name="remote", total=ELEMENTS, latency=LATENCY):
        super().__init__(name)
        self.total = total
        self.latency = latency

    def _execute(self, request):
        def cursor():
            for i in range(self.total):
                time.sleep(self.latency)
                yield i

        return cursor()


def _chain():
    """A comprehension chain over the remote scan: filter then transform."""
    inner = B.ext(
        "y",
        B.if_then_else(B.prim("gt", B.var("y"), B.const(-1)),
                       B.singleton(B.prim("add", B.var("y"), B.const(1000)),
                                   "list"),
                       B.empty("list")),
        A.Scan("remote", {"table": "t"}, kind="list"),
        kind="list")
    return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(1)), "list"),
                 inner, kind="list")


def _union_chain():
    """Union of two comprehension chains over the remote scan (list kind).

    Both operands are ``Ext`` nodes, so the kind proof holds and the union
    streams: the first result needs one element of the *left* scan; the
    right operand is not even requested yet.
    """
    def operand(offset):
        return B.ext("y",
                     B.singleton(B.prim("add", B.var("y"), B.const(offset)),
                                 "list"),
                     A.Scan("remote", {"table": "t"}, kind="list"),
                     kind="list")

    return A.Union(operand(1000), operand(5000), "list")


def _blocked_join_probe(block_size):
    """A blocked join probing the remote scan against a small local inner."""
    inner = CList(range(0, 8))
    condition = B.eq(B.prim("mod", B.var("o"), B.const(8)), B.var("i"))
    return A.Join("blocked", "o",
                  A.Scan("remote", {"table": "t"}, kind="list"),
                  "i", A.Const(inner), condition,
                  B.singleton(B.prim("add", B.prim("mul", B.var("o"), B.const(10)),
                                     B.var("i")), "list"),
                  None, None, "list", block_size)


def _engine():
    engine = KleisliEngine()
    engine.register_driver(SlowRemoteDriver())
    return engine


def _stream_first(engine, expr):
    """Time-to-first-result of the streamed pipeline (and close the rest)."""
    started = time.perf_counter()
    stream = engine.stream(expr, optimize=False, mode="compiled")
    first = next(stream)
    first_at = time.perf_counter() - started
    stream.close()
    return first, first_at


def _update_summary(section, data):
    """Merge one benchmark's numbers into BENCH_streaming.json."""
    update_summary("BENCH_streaming.json", section, data)


def _measure_streaming(engine, expr):
    started = time.perf_counter()
    stream = engine.stream(expr, optimize=False, mode="compiled")
    first = next(stream)
    first_at = time.perf_counter() - started
    count = 1 + sum(1 for _ in stream)
    total = time.perf_counter() - started
    return first, first_at, count, total, engine.last_eval_statistics


def _measure_eager(engine, expr):
    started = time.perf_counter()
    result = engine.execute(expr, optimize=False, mode="compiled")
    elements = list(iter_collection(result))
    first_at = time.perf_counter() - started  # nothing visible before this
    total = time.perf_counter() - started
    return elements[0], first_at, len(elements), total, engine.last_eval_statistics


def test_e10_report():
    expr = _chain()
    stream_first = eager_first = float("inf")
    stream_total = eager_total = float("inf")
    stream_count = eager_count = None
    stream_stats = eager_stats = None
    first_value_s = first_value_e = None
    for _ in range(REPS):
        first_value_s, first_at, stream_count, total, stream_stats = \
            _measure_streaming(_engine(), expr)
        stream_first = min(stream_first, first_at)
        stream_total = min(stream_total, total)
        first_value_e, first_at, eager_count, total, eager_stats = \
            _measure_eager(_engine(), expr)
        eager_first = min(eager_first, first_at)
        eager_total = min(eager_total, total)

    assert first_value_s == first_value_e == 1000
    assert stream_count == eager_count == ELEMENTS

    speedup = eager_first / stream_first
    parity = abs(stream_total - eager_total) / eager_total
    rows = [
        ["eager compiled", f"{eager_first * 1000:.1f} ms",
         f"{eager_total * 1000:.1f} ms", eager_stats.peak_intermediate],
        ["streaming compiled", f"{stream_first * 1000:.1f} ms",
         f"{stream_total * 1000:.1f} ms", stream_stats.peak_intermediate],
        ["streaming vs eager", f"{speedup:.1f}x faster to first result",
         f"{parity * 100:.1f}% total-time difference", ""],
    ]
    report(f"E10: remote-scan chain, {ELEMENTS} elements at "
           f"{LATENCY * 1000:.1f} ms each", rows,
           ["backend", "first result", "full drain", "peak intermediate"])

    summary = {
        "elements": ELEMENTS,
        "element_latency_s": LATENCY,
        "time_to_first_eager_s": eager_first,
        "time_to_first_streaming_s": stream_first,
        "first_result_speedup": speedup,
        "total_eager_s": eager_total,
        "total_streaming_s": stream_total,
        "total_time_relative_difference": parity,
        "peak_intermediate_eager": eager_stats.peak_intermediate,
        "peak_intermediate_streaming": stream_stats.peak_intermediate,
    }
    _update_summary("ext_chain", summary)

    # Acceptance: first element after O(1) source elements, not O(n) …
    assert speedup >= MIN_SPEEDUP, summary
    # … at total-time parity (both backends pay the same per-element latency) …
    assert parity <= PARITY_TOLERANCE, summary
    # … with no intermediate buffering in the pipeline.
    assert eager_stats.peak_intermediate >= ELEMENTS
    assert stream_stats.peak_intermediate == 0


def test_union_chain_ttfr():
    """The typed streaming union: TTFR within UNION_TTFR_FACTOR of the pure
    Ext chain (the eager-section union used to drain BOTH operand scans
    before the first result), zero intermediate materialization, and no
    stream fallbacks."""
    chain_expr = _chain()
    union_expr = _union_chain()

    chain_first = union_first = float("inf")
    union_eager_first = float("inf")
    stats = None
    for _ in range(REPS):
        _, first_at = _stream_first(_engine(), chain_expr)
        chain_first = min(chain_first, first_at)

        engine = _engine()
        value, first_at = _stream_first(engine, union_expr)
        assert value == 1000
        union_first = min(union_first, first_at)
        stats = engine.last_eval_statistics

        # The eager baseline: nothing visible until the whole union is built.
        engine = _engine()
        started = time.perf_counter()
        result = engine.execute(union_expr, optimize=False, mode="compiled")
        union_eager_first = min(union_eager_first,
                                time.perf_counter() - started)
        assert len(list(iter_collection(result))) == 2 * ELEMENTS

    # The union pipelines end-to-end: no eager section ran, nothing buffered.
    assert stats.stream_fallbacks == 0, stats.as_dict()
    assert stats.peak_intermediate == 0, stats.as_dict()
    query = _engine().compiled_stream(union_expr)
    assert query.fully_streamed, query.eager_nodes

    ratio = union_first / chain_first
    summary = {
        "elements_per_operand": ELEMENTS,
        "chain_ttfr_s": chain_first,
        "union_ttfr_s": union_first,
        "union_eager_ttfr_s": union_eager_first,
        "union_vs_chain_ttfr_factor": ratio,
        "union_vs_eager_speedup": union_eager_first / union_first,
        "peak_intermediate_streaming": stats.peak_intermediate,
        "stream_fallbacks": stats.stream_fallbacks,
    }
    report("E10b: typed streaming union vs pure Ext chain",
           [["pure Ext chain", f"{chain_first * 1000:.1f} ms", ""],
            ["streamed union chain", f"{union_first * 1000:.1f} ms",
             f"{ratio:.1f}x the chain's TTFR"],
            ["eager union (baseline)", f"{union_eager_first * 1000:.1f} ms",
             f"{union_eager_first / union_first:.0f}x slower to first result"]],
           ["shape", "first result", "notes"])
    _update_summary("union_chain", summary)

    # The TTFR regression gate CI enforces (BENCH_STREAMING_UNION_FACTOR).
    assert ratio <= UNION_TTFR_FACTOR, summary


def test_blocked_join_probe_ttfr():
    """The per-element join probe: a block-size-1 blocked join (what the
    optimizer emits under the streaming hint) reaches its first result
    within JOIN_TTFR_FACTOR of the pure Ext chain; the default block size
    buffers a whole outer block first."""
    chain_expr = _chain()
    probe_expr = _blocked_join_probe(1)
    block_expr = _blocked_join_probe(256)

    chain_first = probe_first = block_first = float("inf")
    stats = None
    for _ in range(REPS):
        _, first_at = _stream_first(_engine(), chain_expr)
        chain_first = min(chain_first, first_at)

        engine = _engine()
        value, first_at = _stream_first(engine, probe_expr)
        assert value == 0
        probe_first = min(probe_first, first_at)
        stats = engine.last_eval_statistics

        _, first_at = _stream_first(_engine(), block_expr)
        block_first = min(block_first, first_at)

    assert stats.stream_fallbacks == 0, stats.as_dict()
    assert stats.peak_intermediate == 0, stats.as_dict()

    # Differential guard: blocked-join emission is outer-major at every
    # block size, so block 1 and block 256 produce the SAME element
    # sequence as each other and as eager execution — the plan's block size
    # is value-invisible (only fetch counts and TTFR differ).
    probe_all = list(_engine().stream(probe_expr, optimize=False, mode="compiled"))
    block_all = list(_engine().stream(block_expr, optimize=False, mode="compiled"))
    eager_all = list(iter_collection(
        _engine().execute(probe_expr, optimize=False, mode="compiled")))
    assert probe_all == block_all == eager_all

    ratio = probe_first / chain_first
    summary = {
        "outer_elements": ELEMENTS,
        "chain_ttfr_s": chain_first,
        "unit_block_ttfr_s": probe_first,
        "default_block_ttfr_s": block_first,
        "unit_block_vs_chain_ttfr_factor": ratio,
        "unit_vs_default_block_speedup": block_first / probe_first,
        "stream_fallbacks": stats.stream_fallbacks,
    }
    report("E10c: per-element join probe vs per-block",
           [["pure Ext chain", f"{chain_first * 1000:.1f} ms", ""],
            ["blocked join, block 1", f"{probe_first * 1000:.1f} ms",
             f"{ratio:.1f}x the chain's TTFR"],
            ["blocked join, block 256", f"{block_first * 1000:.1f} ms",
             f"{block_first / probe_first:.0f}x slower to first result"]],
           ["shape", "first result", "notes"])
    _update_summary("blocked_join_probe", summary)

    # The TTFR regression gate CI enforces (BENCH_STREAMING_JOIN_FACTOR).
    assert ratio <= JOIN_TTFR_FACTOR, summary


#: Size of the in-memory source for the local-throughput comparison.
LOCAL_ELEMENTS = 40_000
#: Elements surviving the chain's filter (values 0..9 of each %1000 cycle drop).
LOCAL_EXPECTED = LOCAL_ELEMENTS - (LOCAL_ELEMENTS // 1000) * 10


def _local_chain():
    """The local ext-chain workload: project -> filter -> add -> mul.

    The shape every CPL shaping query takes (project fields out of records,
    filter, compute) over an in-memory collection — the regime where PR 2/3's
    per-element generator pipeline only *matched* eager total time and the
    chunked lowering is supposed to win outright.
    """
    proj = B.ext("r", B.singleton(B.project(B.var("r"), "value"), "list"),
                 B.var("RS"), kind="list")
    filt = B.ext("v", B.if_then_else(B.prim("ge", B.var("v"), B.const(10)),
                                     B.singleton(B.var("v"), "list"),
                                     B.empty("list")),
                 proj, kind="list")
    scaled = B.ext("w", B.singleton(B.prim("add", B.var("w"), B.const(1000)),
                                    "list"),
                   filt, kind="list")
    return B.ext("u", B.singleton(B.prim("mul", B.var("u"), B.const(3)),
                                  "list"),
                 scaled, kind="list")


def _local_bindings():
    return {"RS": CList(Record({"id": i, "value": i % 1000})
                        for i in range(LOCAL_ELEMENTS))}


def test_local_throughput():
    """E10d — the tentpole gate: on a local in-memory ext chain the chunked
    lowering beats the per-element stream by >= CHUNK_FACTOR in total drain
    time (fused per-chunk stages vs one generator frame per stage per
    element), while on the remote chain its ramping first chunk keeps TTFR
    within CHUNK_TTFR_FACTOR of the per-element stream's."""
    expr = _local_chain()
    bindings = _local_bindings()
    engine = KleisliEngine()

    def drain(chunked):
        started = time.perf_counter()
        count = sum(1 for _ in engine.stream(expr, bindings, optimize=False,
                                             chunked=chunked))
        return count, time.perf_counter() - started

    eager_total = element_total = chunked_total = float("inf")
    counts = set()
    for _ in range(max(REPS, 5)):
        count, elapsed = drain(chunked=False)
        counts.add(count)
        element_total = min(element_total, elapsed)
        count, elapsed = drain(chunked=True)
        counts.add(count)
        chunked_total = min(chunked_total, elapsed)
        started = time.perf_counter()
        result = engine.execute(expr, bindings, optimize=False)
        eager_total = min(eager_total, time.perf_counter() - started)
        counts.add(len(list(iter_collection(result))))
    assert counts == {LOCAL_EXPECTED}, counts  # values agree across paths

    # Re-drain chunked once for its statistics (fallback-free, no scalars).
    assert sum(1 for _ in engine.stream(expr, bindings, optimize=False,
                                        chunked=True)) == LOCAL_EXPECTED
    chunk_stats = engine.last_eval_statistics
    assert chunk_stats.stream_fallbacks == 0, chunk_stats.as_dict()
    assert chunk_stats.scalar_stages == 0, chunk_stats.as_dict()

    # The ramp guard: chunked TTFR on the REMOTE chain (per-element latency)
    # stays within CHUNK_TTFR_FACTOR of the per-element backend's.
    remote_expr = _chain()
    element_ttfr = chunked_ttfr = float("inf")
    for _ in range(REPS):
        remote_engine = _engine()
        started = time.perf_counter()
        stream = remote_engine.stream(remote_expr, optimize=False,
                                      chunked=False)
        next(stream)
        element_ttfr = min(element_ttfr, time.perf_counter() - started)
        stream.close()

        remote_engine = _engine()
        started = time.perf_counter()
        stream = remote_engine.stream(remote_expr, optimize=False,
                                      chunked=True)
        next(stream)
        chunked_ttfr = min(chunked_ttfr, time.perf_counter() - started)
        stream.close()

    speedup = element_total / chunked_total
    ttfr_factor = chunked_ttfr / element_ttfr
    report(f"E10d: local throughput, {LOCAL_ELEMENTS} in-memory records "
           f"(project/filter/add/mul chain)",
           [["eager compiled", f"{eager_total * 1000:.1f} ms", ""],
            ["per-element stream", f"{element_total * 1000:.1f} ms", ""],
            ["chunked stream", f"{chunked_total * 1000:.1f} ms",
             f"{speedup:.2f}x the per-element stream"],
            ["chunked TTFR (remote chain)", f"{chunked_ttfr * 1000:.2f} ms",
             f"{ttfr_factor:.2f}x the per-element TTFR"]],
           ["backend", "time", "notes"])

    summary = {
        "local_elements": LOCAL_ELEMENTS,
        "total_eager_s": eager_total,
        "total_element_stream_s": element_total,
        "total_chunked_stream_s": chunked_total,
        "chunked_vs_element_speedup": speedup,
        "element_ttfr_remote_s": element_ttfr,
        "chunked_ttfr_remote_s": chunked_ttfr,
        "chunked_vs_element_ttfr_factor": ttfr_factor,
        "stream_fallbacks": chunk_stats.stream_fallbacks,
        "scalar_stages": chunk_stats.scalar_stages,
    }
    _update_summary("local_throughput", summary)

    # The acceptance gates (env-tunable for shared-runner noise).
    assert speedup >= CHUNK_FACTOR, summary
    assert ttfr_factor <= CHUNK_TTFR_FACTOR, summary


def test_first_result_consumes_o1_source_elements():
    """The pipelining claim stated without wall clocks: pulling the first
    element consumes O(1) elements from the source, independent of n."""

    class CountingDriver(Driver):
        def __init__(self):
            super().__init__("remote")
            self.produced = 0

        def _execute(self, request):
            def cursor():
                for i in range(10_000):
                    self.produced += 1
                    yield i

            return cursor()

    engine = KleisliEngine()
    driver = engine.register_driver(CountingDriver())
    stream = engine.stream(_chain(), optimize=False, mode="compiled")
    assert next(stream) == 1000
    assert driver.produced <= 3, \
        f"first result consumed {driver.produced} source elements"
    stream.close()
