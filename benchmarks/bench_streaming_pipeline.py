"""E10 — streaming compiled backend vs eager compiled execution.

Section 4 ("Laziness, Latency, and Concurrency") makes *pipelined*
evaluation the centerpiece of Kleisli's responsiveness story: results should
reach the consumer while the remote source is still producing.  This
benchmark measures what the pull-based lowering (``compile_stream``) buys
over the eager closure backend on a remote-scan comprehension chain:

* **time-to-first-result** — eager execution cannot yield anything until the
  scan is drained (O(n) source elements); the streaming pipeline yields
  after O(1);
* **total time** — both modes consume every element, so full-drain time must
  stay at parity;
* **peak intermediate size** — the eager backend buffers the whole result
  list; the pipeline holds no intermediate collection.

A ``BENCH_streaming.json`` summary is written next to this file for the
experiment log.
"""

import json
import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.core.values import iter_collection

from conftest import report

#: Elements produced by the simulated remote scan, and per-element latency.
ELEMENTS = 150
LATENCY = 0.0015

#: Asserted floor for the time-to-first-result improvement.  The local bar
#: is 3x (the acceptance criterion; observed margin is orders of magnitude);
#: CI sets it lower to absorb shared-runner wall-clock noise.
MIN_SPEEDUP = float(os.environ.get("BENCH_STREAMING_MIN_SPEEDUP", "3.0"))
#: Allowed relative difference in full-drain time between the two backends.
PARITY_TOLERANCE = float(os.environ.get("BENCH_STREAMING_PARITY", "0.10"))

REPS = 3


class SlowRemoteDriver(Driver):
    """A scan whose cursor yields one element per ``LATENCY`` seconds."""

    def __init__(self, name="remote", total=ELEMENTS, latency=LATENCY):
        super().__init__(name)
        self.total = total
        self.latency = latency

    def _execute(self, request):
        def cursor():
            for i in range(self.total):
                time.sleep(self.latency)
                yield i

        return cursor()


def _chain():
    """A comprehension chain over the remote scan: filter then transform."""
    inner = B.ext(
        "y",
        B.if_then_else(B.prim("gt", B.var("y"), B.const(-1)),
                       B.singleton(B.prim("add", B.var("y"), B.const(1000)),
                                   "list"),
                       B.empty("list")),
        A.Scan("remote", {"table": "t"}, kind="list"),
        kind="list")
    return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(1)), "list"),
                 inner, kind="list")


def _engine():
    engine = KleisliEngine()
    engine.register_driver(SlowRemoteDriver())
    return engine


def _measure_streaming(engine, expr):
    started = time.perf_counter()
    stream = engine.stream(expr, optimize=False, mode="compiled")
    first = next(stream)
    first_at = time.perf_counter() - started
    count = 1 + sum(1 for _ in stream)
    total = time.perf_counter() - started
    return first, first_at, count, total, engine.last_eval_statistics


def _measure_eager(engine, expr):
    started = time.perf_counter()
    result = engine.execute(expr, optimize=False, mode="compiled")
    elements = list(iter_collection(result))
    first_at = time.perf_counter() - started  # nothing visible before this
    total = time.perf_counter() - started
    return elements[0], first_at, len(elements), total, engine.last_eval_statistics


def test_e10_report():
    expr = _chain()
    stream_first = eager_first = float("inf")
    stream_total = eager_total = float("inf")
    stream_count = eager_count = None
    stream_stats = eager_stats = None
    first_value_s = first_value_e = None
    for _ in range(REPS):
        first_value_s, first_at, stream_count, total, stream_stats = \
            _measure_streaming(_engine(), expr)
        stream_first = min(stream_first, first_at)
        stream_total = min(stream_total, total)
        first_value_e, first_at, eager_count, total, eager_stats = \
            _measure_eager(_engine(), expr)
        eager_first = min(eager_first, first_at)
        eager_total = min(eager_total, total)

    assert first_value_s == first_value_e == 1000
    assert stream_count == eager_count == ELEMENTS

    speedup = eager_first / stream_first
    parity = abs(stream_total - eager_total) / eager_total
    rows = [
        ["eager compiled", f"{eager_first * 1000:.1f} ms",
         f"{eager_total * 1000:.1f} ms", eager_stats.peak_intermediate],
        ["streaming compiled", f"{stream_first * 1000:.1f} ms",
         f"{stream_total * 1000:.1f} ms", stream_stats.peak_intermediate],
        ["streaming vs eager", f"{speedup:.1f}x faster to first result",
         f"{parity * 100:.1f}% total-time difference", ""],
    ]
    report(f"E10: remote-scan chain, {ELEMENTS} elements at "
           f"{LATENCY * 1000:.1f} ms each", rows,
           ["backend", "first result", "full drain", "peak intermediate"])

    summary = {
        "elements": ELEMENTS,
        "element_latency_s": LATENCY,
        "time_to_first_eager_s": eager_first,
        "time_to_first_streaming_s": stream_first,
        "first_result_speedup": speedup,
        "total_eager_s": eager_total,
        "total_streaming_s": stream_total,
        "total_time_relative_difference": parity,
        "peak_intermediate_eager": eager_stats.peak_intermediate,
        "peak_intermediate_streaming": stream_stats.peak_intermediate,
    }
    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_streaming.json")
    with open(out_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    # Acceptance: first element after O(1) source elements, not O(n) …
    assert speedup >= MIN_SPEEDUP, summary
    # … at total-time parity (both backends pay the same per-element latency) …
    assert parity <= PARITY_TOLERANCE, summary
    # … with no intermediate buffering in the pipeline.
    assert eager_stats.peak_intermediate >= ELEMENTS
    assert stream_stats.peak_intermediate == 0


def test_first_result_consumes_o1_source_elements():
    """The pipelining claim stated without wall clocks: pulling the first
    element consumes O(1) elements from the source, independent of n."""

    class CountingDriver(Driver):
        def __init__(self):
            super().__init__("remote")
            self.produced = 0

        def _execute(self, request):
            def cursor():
                for i in range(10_000):
                    self.produced += 1
                    yield i

            return cursor()

    engine = KleisliEngine()
    driver = engine.register_driver(CountingDriver())
    stream = engine.stream(_chain(), optimize=False, mode="compiled")
    assert next(stream) == 1000
    assert driver.produced <= 3, \
        f"first result consumed {driver.produced} source elements"
    stream.close()
