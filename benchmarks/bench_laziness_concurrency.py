"""E8 — laziness (fast first response) and bounded concurrency for remote loops.

Paper claims (Section 4, "Laziness, Latency, and Concurrency"):

* lazy retrieval "generate[s] initial output quickly" — measured here as the
  time to the first result of a pipelined query against a lazy driver vs a
  fully materialising one;
* issuing remote requests concurrently, bounded by the server's capacity
  ("say five"), improves total time without exceeding the cap — measured with
  the simulated remote GenBank and the parallel-loop operator.
"""

import time

import pytest

from repro.bio.genbank import build_genbank
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CSet, Record
from repro.kleisli.drivers import EntrezDriver, RelationalDriver
from repro.kleisli.engine import KleisliEngine
from repro.bio.gdb import build_gdb
from repro.net.remote import RemoteSource

from conftest import report

LATENCY = 0.02
SERVER_CAP = 5
REQUESTS = 30


# --------------------------------------------------------------------------
# Laziness: time to first result
# --------------------------------------------------------------------------

def _streaming_engine(lazy: bool) -> KleisliEngine:
    engine = KleisliEngine()
    database = build_gdb(locus_count=3000)
    engine.register_driver(RelationalDriver("GDB", database, lazy=lazy))
    return engine

PROJECT_QUERY = A.Ext("x", A.Singleton(A.Project(A.Var("x"), "locus_symbol")),
                      A.Scan("GDB", {"table": "locus"}))


def _time_to_first_and_total(engine: KleisliEngine):
    started = time.perf_counter()
    iterator = engine.stream(PROJECT_QUERY, optimize=False)
    first = next(iterator)
    first_at = time.perf_counter() - started
    count = 1 + sum(1 for _ in iterator)
    total = time.perf_counter() - started
    return first_at, total, count


def test_lazy_stream_first_result(benchmark):
    engine = _streaming_engine(lazy=True)
    benchmark(lambda: next(engine.stream(PROJECT_QUERY, optimize=False)))


def test_e8a_laziness_report():
    lazy_first, lazy_total, lazy_count = _time_to_first_and_total(_streaming_engine(lazy=True))
    eager_first, eager_total, eager_count = _time_to_first_and_total(_streaming_engine(lazy=False))
    assert lazy_count == eager_count
    report("E8a: lazy token streams — time to first result vs total time (3000-row scan)",
           [["eager driver", f"{eager_first * 1000:.1f} ms", f"{eager_total * 1000:.1f} ms"],
            ["lazy driver", f"{lazy_first * 1000:.1f} ms", f"{lazy_total * 1000:.1f} ms"]],
           ["mode", "first result", "all results"])
    # The lazy stream should deliver its first element well before the eager
    # driver (which materialises the whole relation first).
    assert lazy_first < eager_first


# --------------------------------------------------------------------------
# Concurrency: parallel remote inner loop, bounded by the server cap
# --------------------------------------------------------------------------

def _remote_loop(max_workers: int):
    scan = A.Scan("REMOTE", {"db": "na"}, {"select": A.Project(A.Var("x"), "accession")})
    body = A.Singleton(A.RecordExpr({"accession": A.Project(A.Var("x"), "accession"),
                                     "ids": scan}))
    if max_workers <= 1:
        return A.Ext("x", body, A.Var("OUTER"))
    return ParallelExt("x", body, A.Var("OUTER"), max_workers=max_workers)


def _run_concurrency(max_workers: int):
    server = RemoteSource("REMOTE", lambda request: CSet([request["select"]]),
                          latency=LATENCY, max_concurrent_requests=SERVER_CAP)

    def executor(driver, request):
        return server.call(request)

    data = {"OUTER": CSet([Record({"accession": f"M{81000 + i}"}) for i in range(REQUESTS)])}
    context = EvalContext(driver_executor=executor)
    started = time.perf_counter()
    value = Evaluator(context).evaluate(_remote_loop(max_workers), Environment(data))
    elapsed = time.perf_counter() - started
    return elapsed, value, server


@pytest.mark.parametrize("workers", [1, 5])
def test_remote_loop_concurrency(benchmark, workers):
    benchmark(lambda: _run_concurrency(workers))


def test_e8b_concurrency_report():
    rows = []
    results = {}
    for workers in (1, 2, 5):
        elapsed, value, server = _run_concurrency(workers)
        results[workers] = value
        rows.append([workers, f"{elapsed * 1000:.0f} ms", server.request_count,
                     server.log.max_concurrency()])
    assert results[1] == results[5]
    report(f"E8b: {REQUESTS} remote requests ({LATENCY * 1000:.0f} ms latency), "
           f"server cap {SERVER_CAP}",
           rows, ["workers", "total time", "requests", "peak in-flight"])
    sequential = float(rows[0][1].split()[0])
    parallel = float(rows[-1][1].split()[0])
    assert parallel < sequential / 2          # concurrency pays off
    assert rows[-1][3] <= SERVER_CAP          # and never exceeds the cap
