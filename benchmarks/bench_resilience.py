"""E13 — the resilience layer's overhead and recovery-latency budget.

Two claims the fault-tolerance PR must hold numerically, not just
logically (``BENCH_resilience.json`` records both):

* **fault-free overhead** — installing a retry policy + circuit breaker on
  a driver must not tax the happy path: a streamed drain through the
  resilience-wrapped scan must keep >= ``BENCH_RESILIENCE_FACTOR`` of the
  bare engine's throughput (local bar 0.95 — the ISSUE's <= 5% overhead —
  relaxed via the env knob for shared-runner jitter);
* **bounded recovery latency** — under a 10%-transient fault schedule
  (every 10th driver request dies retryably), total wall time must stay
  within ``BENCH_RESILIENCE_RECOVERY`` x the fault-free run: recovery is a
  re-issue plus a seen-prefix skip, not a restart of the world.

Both sections interleave their engines and take min-of-N, the same noise
discipline as the planner benchmark.
"""

import os
import time

from repro.core.errors import TransientDriverError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.drivers.base import Driver
from repro.kleisli.resilience import CircuitBreakerPolicy, RetryPolicy

from conftest import report, update_summary

#: Resilient throughput must stay >= FACTOR x bare on the fault-free path.
RESILIENCE_FACTOR = float(os.environ.get("BENCH_RESILIENCE_FACTOR", "0.95"))
#: A 10%-transient run must finish within RECOVERY x the fault-free time.
RESILIENCE_RECOVERY = float(
    os.environ.get("BENCH_RESILIENCE_RECOVERY", "2.0"))

REPS = 7


def _update(section, data):
    update_summary("BENCH_resilience.json", section, data)


# ---------------------------------------------------------------------------
# Section 1: fault-free overhead of the installed layer
# ---------------------------------------------------------------------------

ROWS = 30_000


class RowsDriver(Driver):
    """A local table of ROWS integers — the pure happy-path workload."""

    def __init__(self, name="rows"):
        super().__init__(name)

    def collection_names(self):
        return ["rows"]

    def cardinality(self, collection):
        return ROWS if collection == "rows" else None

    def _execute(self, request):
        def cursor():
            for i in range(request.get("count", ROWS)):
                yield i

        return cursor()


def _shaping_chain(driver="rows", count=ROWS):
    scan = A.Scan(driver, {"table": "rows", "count": count}, kind="list")
    return B.ext("x", B.singleton(B.prim("add", B.prim("mul", B.var("x"),
                                                       B.const(3)),
                                         B.const(7)), "list"),
                 scan, kind="list")


def _drain(engine, expr):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(expr, optimize=False, chunked=True))
    return count, time.perf_counter() - started


def test_fault_free_overhead():
    expr = _shaping_chain()

    bare_engine = KleisliEngine()
    bare_engine.register_driver(RowsDriver())

    resilient_engine = KleisliEngine()
    resilient_engine.register_driver(RowsDriver())
    resilient_engine.configure_resilience(
        "rows",
        RetryPolicy(max_attempts=3, request_timeout=60.0),
        CircuitBreakerPolicy())

    bare_time = resilient_time = float("inf")
    bare_count = resilient_count = None
    for _ in range(REPS):
        count, elapsed = _drain(bare_engine, expr)
        bare_count = bare_count or count
        bare_time = min(bare_time, elapsed)
        count, elapsed = _drain(resilient_engine, expr)
        resilient_count = resilient_count or count
        resilient_time = min(resilient_time, elapsed)
    assert bare_count == resilient_count == ROWS

    # The layer did engage (policy lookups happened) but never retried.
    books = resilient_engine.health()["resilience"]["rows"]
    assert books["requests"] == REPS
    assert books["retries"] == books["failures"] == 0

    ratio = bare_time / resilient_time
    overhead_pct = (resilient_time / bare_time - 1.0) * 100.0
    _update("fault_free_overhead", {
        "rows": ROWS,
        "bare_s": bare_time,
        "resilient_s": resilient_time,
        "throughput_ratio": ratio,
        "overhead_pct": overhead_pct,
        "gate_factor": RESILIENCE_FACTOR,
    })
    report("E13a: fault-free overhead of the resilience layer",
           [["bare engine", f"{bare_time * 1000:.1f} ms", ""],
            ["retry+breaker installed", f"{resilient_time * 1000:.1f} ms",
             f"{overhead_pct:+.1f}%"]],
           ["configuration", "drain time", "overhead"])
    assert ratio >= RESILIENCE_FACTOR, (
        f"resilience layer overhead too high: {overhead_pct:.1f}% "
        f"(throughput ratio {ratio:.3f} < gate {RESILIENCE_FACTOR})")


# ---------------------------------------------------------------------------
# Section 2: recovery latency under a 10%-transient schedule
# ---------------------------------------------------------------------------

QUERIES = 120
QUERY_ROWS = 40


class FlakyRowsDriver(RowsDriver):
    """Every 10th request dies retryably before opening its cursor."""

    def __init__(self, name="rows", period=0):
        super().__init__(name)
        self.period = period
        self.requests_served = 0
        self.faults_raised = 0

    def _execute(self, request):
        self.requests_served += 1
        if self.period and self.requests_served % self.period == 0:
            self.faults_raised += 1
            raise TransientDriverError(
                f"{self.name}: injected transient "
                f"#{self.requests_served}")
        return super()._execute(request)


def _run_queries(engine, expr):
    started = time.perf_counter()
    total = 0
    for _ in range(QUERIES):
        total += sum(1 for _ in engine.stream(expr, optimize=False,
                                              chunked=True))
    return total, time.perf_counter() - started


def test_recovery_latency_under_transient_faults():
    expr = _shaping_chain(count=QUERY_ROWS)

    clean_time = faulty_time = float("inf")
    clean_total = faulty_total = None
    faulty_engine = None
    for _ in range(3):
        clean_engine = KleisliEngine()
        clean_engine.register_driver(FlakyRowsDriver(period=0))
        clean_engine.configure_resilience(
            "rows", RetryPolicy(max_attempts=3, backoff_base=0.0))
        total, elapsed = _run_queries(clean_engine, expr)
        clean_total = clean_total or total
        clean_time = min(clean_time, elapsed)

        faulty_engine = KleisliEngine()
        driver = faulty_engine.register_driver(FlakyRowsDriver(period=10))
        faulty_engine.configure_resilience(
            "rows", RetryPolicy(max_attempts=3, backoff_base=0.0))
        total, elapsed = _run_queries(faulty_engine, expr)
        faulty_total = faulty_total or total
        faulty_time = min(faulty_time, elapsed)
        assert driver.faults_raised > 0

    # Recovery is invisible in the values: identical row counts.
    assert clean_total == faulty_total == QUERIES * QUERY_ROWS

    books = faulty_engine.health()["resilience"]["rows"]
    slowdown = faulty_time / clean_time
    _update("recovery_latency", {
        "queries": QUERIES,
        "rows_per_query": QUERY_ROWS,
        "fault_period": 10,
        "clean_s": clean_time,
        "faulty_s": faulty_time,
        "slowdown": slowdown,
        "retries": books["retries"],
        "gate_factor": RESILIENCE_RECOVERY,
    })
    report("E13b: recovery latency, 10% transient faults",
           [["fault-free", f"{clean_time * 1000:.1f} ms", ""],
            ["10% transient", f"{faulty_time * 1000:.1f} ms",
             f"{slowdown:.2f}x"]],
           ["schedule", "total time", "slowdown"])
    assert slowdown <= RESILIENCE_RECOVERY, (
        f"recovery latency unbounded: {slowdown:.2f}x fault-free "
        f"(gate {RESILIENCE_RECOVERY}x)")
