"""E1 — homogeneity-aware Remy record projection (Section 4, "Optimizing Projections").

Paper claim: exploiting homogeneity (computing the field offset once for the
first record and reusing it) gives *greater than a two-fold improvement* over
plain Remy projection.

The benchmark projects two fields out of homogeneous record sets of increasing
size with both strategies and reports the speed-up factor.
"""

import time

import pytest

from repro.core.optimizer.projections import homogeneous_projection
from repro.core.records import ProjectionCursor, Record, cursor_project, plain_project

from conftest import report

SIZES = [10_000, 50_000, 200_000]


def _records(count: int):
    return [Record({"locus_symbol": f"D22S{i}", "chromosome": "22",
                    "band": f"q{i % 13}", "length": i})
            for i in range(count)]


def _time(function, *args) -> float:
    started = time.perf_counter()
    function(*args)
    return time.perf_counter() - started


@pytest.mark.parametrize("size", SIZES)
def test_plain_remy_projection(benchmark, size):
    records = _records(size)
    benchmark(plain_project, records, "locus_symbol")


@pytest.mark.parametrize("size", SIZES)
def test_homogeneous_cursor_projection(benchmark, size):
    records = _records(size)
    benchmark(cursor_project, records, "locus_symbol")


def test_e1_report_speedup_table():
    """Regenerates the E1 comparison: plain vs homogeneity-optimized projection."""
    rows = []
    for size in SIZES:
        records = _records(size)
        plain = min(_time(plain_project, records, "locus_symbol") for _ in range(3))
        optimized = min(_time(cursor_project, records, "locus_symbol") for _ in range(3))
        mapped = min(_time(homogeneous_projection, records, ["locus_symbol", "length"])
                     for _ in range(3))
        rows.append([size, f"{plain * 1000:.1f} ms", f"{optimized * 1000:.1f} ms",
                     f"{plain / optimized:.2f}x", f"{mapped * 1000:.1f} ms"])
    report("E1: Remy projection — plain vs homogeneous fast path",
           rows, ["records", "plain", "cursor", "speed-up", "2-field map"])
    # The paper reports >2x on their runtime; in Python the directory lookup
    # is a dict hit, and on some hosts the two wall clocks are within noise —
    # a zero-margin `optimized < plain` assert flaked at the seed (ROADMAP).
    # Assert the *mechanism* instead, counter-based: over a homogeneous
    # collection the cursor pays exactly one directory lookup and hits its
    # cached slot for every other record, which is the entire claimed
    # advantage over plain projection's per-record lookup.
    records = _records(SIZES[-1])
    cursor = ProjectionCursor("locus_symbol")
    projected = [cursor.project(record) for record in records]
    assert projected == plain_project(records, "locus_symbol")
    assert cursor.misses == 1, "homogeneous collection paid more than one lookup"
    assert cursor.hits == len(records) - 1
