"""E5 — path extraction at the ASN.1 driver vs retrieve-then-prune.

Paper claim (Section 3): "we are able to minimize the cost of parsing and
copying ASN.1 values by pruning at the level of the ASN.1 driver" with the
path-extraction syntax (e.g. ``Seq-entry.seq.id..giim``).

The benchmark retrieves batches of Seq-entries and extracts the giim ids
either (a) with the path applied during the parse (pruning) or (b) by parsing
the full entries and applying the same path afterwards, and reports the time
per batch.
"""

import time

import pytest

from repro.asn1.parser import parse_value, parse_value_with_path
from repro.asn1.path import parse_path
from repro.bio.genbank import build_genbank, seq_entry_schema

from conftest import report

SIZES = [100, 500, 2000]
PATH = parse_path("Seq-entry.seq.id..giim")


def _entry_texts(count: int):
    server = build_genbank(list(range(1, count // 3 + 2)), homologues_per_entry=2,
                           sequence_length=400, compute_links=False)
    division = server.division("na")
    texts = [entry.text for entry in division.entries.values()][:count]
    return texts, division.entry_type


def prune_during_parse(texts, entry_type):
    return [parse_value_with_path(text, entry_type, PATH) for text in texts]


def parse_then_prune(texts, entry_type):
    return [PATH.apply(parse_value(text, entry_type)) for text in texts]


@pytest.mark.parametrize("size", SIZES[:2])
def test_prune_during_parse(benchmark, size):
    texts, entry_type = _entry_texts(size)
    benchmark(prune_during_parse, texts, entry_type)


@pytest.mark.parametrize("size", SIZES[:2])
def test_parse_then_prune(benchmark, size):
    texts, entry_type = _entry_texts(size)
    benchmark(parse_then_prune, texts, entry_type)


def test_e5_report():
    rows = []
    for size in SIZES:
        texts, entry_type = _entry_texts(size)
        assert prune_during_parse(texts, entry_type) == parse_then_prune(texts, entry_type)
        pruned = min(_timed(prune_during_parse, texts, entry_type) for _ in range(3))
        full = min(_timed(parse_then_prune, texts, entry_type) for _ in range(3))
        rows.append([size, f"{full * 1000:.1f} ms", f"{pruned * 1000:.1f} ms",
                     f"{full / pruned:.2f}x"])
    report("E5: ASN.1 path extraction — prune during parse vs retrieve-then-prune",
           rows, ["entries", "full parse + prune", "prune at driver", "speed-up"])
    assert rows[-1][3].rstrip("x") > "1"


def _timed(function, *args) -> float:
    started = time.perf_counter()
    function(*args)
    return time.perf_counter() - started
