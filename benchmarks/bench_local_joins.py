"""E6 — local join operators: naive nested loop vs blocked vs indexed blocked nested loop.

Paper claim (Section 4): for joins that cannot be pushed to a server, Kleisli
adds a blocked nested-loop join and an indexed blocked nested-loop join (index
built on the fly), with a rule set that decides which to apply (the indexed
join needs an equality key).

The benchmark joins two in-memory collections of increasing size with the
un-rewritten nested loop, the blocked join and the indexed join, and reports
times and the crossover behaviour.
"""

import time

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.values import CSet, Record

from conftest import report

SIZES = [(200, 200), (1000, 1000), (3000, 3000)]


def _data(outer_size, inner_size):
    outer = CSet([Record({"id": i, "symbol": f"D22S{i}"}) for i in range(outer_size)])
    inner = CSet([Record({"ref": i % (outer_size // 2 or 1), "value": i})
                  for i in range(inner_size)])
    return {"OUTER": outer, "INNER": inner}


def _nested_loop_expr():
    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    head = B.record(symbol=B.project(B.var("o"), "symbol"),
                    value=B.project(B.var("i"), "value"))
    inner = B.ext("i", B.if_then_else(condition, B.singleton(head), B.empty()), B.var("INNER"))
    return B.ext("o", inner, B.var("OUTER"))


def _join_expr(method):
    expr = make_join_rule_set(minimum_inner_size=0).apply(_nested_loop_expr())
    assert isinstance(expr, A.Join)
    if method == "blocked":
        return A.Join("blocked", expr.outer_var, expr.outer, expr.inner_var, expr.inner,
                      B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref")),
                      expr.body, None, None, expr.kind, 256)
    return expr


def _evaluate(expr, data):
    return Evaluator(EvalContext()).evaluate(expr, Environment(dict(data)))


def _timed(expr, data):
    started = time.perf_counter()
    value = _evaluate(expr, data)
    return time.perf_counter() - started, value


@pytest.mark.parametrize("sizes", SIZES[:2], ids=lambda s: f"{s[0]}x{s[1]}")
def test_indexed_join(benchmark, sizes):
    data = _data(*sizes)
    expr = _join_expr("indexed")
    benchmark(_evaluate, expr, data)


@pytest.mark.parametrize("sizes", SIZES[:1], ids=lambda s: f"{s[0]}x{s[1]}")
def test_naive_nested_loop(benchmark, sizes):
    data = _data(*sizes)
    expr = _nested_loop_expr()
    benchmark(_evaluate, expr, data)


def test_e6_report():
    rows = []
    for outer_size, inner_size in SIZES:
        data = _data(outer_size, inner_size)
        naive_time, naive_value = _timed(_nested_loop_expr(), data)
        blocked_time, blocked_value = _timed(_join_expr("blocked"), data)
        indexed_time, indexed_value = _timed(_join_expr("indexed"), data)
        assert naive_value == blocked_value == indexed_value
        rows.append([f"{outer_size}x{inner_size}",
                     f"{naive_time * 1000:.0f} ms",
                     f"{blocked_time * 1000:.0f} ms",
                     f"{indexed_time * 1000:.0f} ms",
                     f"{naive_time / indexed_time:.1f}x"])
    report("E6: local joins — naive nested loop vs blocked vs indexed blocked nested loop",
           rows, ["outer x inner", "naive", "blocked", "indexed", "naive/indexed"])
    # The indexed join must win by a growing factor as inputs grow.
    assert float(rows[-1][4].rstrip("x")) > float(rows[0][4].rstrip("x"))
