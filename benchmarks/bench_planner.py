"""E11 — cost-based planner vs fixed physical knobs.

The planner subsystem replaces three kinds of hand-set constants with
per-query cost-model choices; this benchmark measures each against the
fixed-knob ablation (``OptimizerConfig(planning=False)`` — exactly the
pre-planner engine) on the workload it targets:

* **local** — a shaping chain over a registered local source: the planner
  sizes the chunk ramp to the estimated output (and arms the cost-adaptive
  ramp); the requirement here is parity — the planner must never lose;
* **fake_remote** — a scan-batched loop against a slow driver whose native
  ``execute_batch`` is one wire round-trip: the planner raises
  ``remote_max_chunk`` so round-trip count stops dominating (the fixed cap
  of 32 pays ~8x the round-trips);
* **skewed** — a blocked join with a large registered outer and a small,
  expensive-to-rescan inner: the planner's cost-gated block size amortizes
  the inner rescans the fixed 256-block pays eight times over.

``BENCH_planner.json`` records every section (planned/fixed times, the
chosen plans, speedups).  CI gates on ``BENCH_PLANNER_FACTOR`` (planned
must stay >= that fraction of fixed-knob throughput on EVERY section — the
planner never loses) and ``BENCH_PLANNER_WIN`` (the fake-remote and skewed
sections must beat fixed knobs by at least that factor).
"""

import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer import OptimizerConfig
from repro.core.values import CList, iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine

from conftest import report, update_summary

#: The planner must never lose: planned >= FACTOR x fixed on every section.
PLANNER_FACTOR = float(os.environ.get("BENCH_PLANNER_FACTOR", "0.9"))
#: And must win where it claims to: fake-remote and skewed sections.
PLANNER_WIN = float(os.environ.get("BENCH_PLANNER_WIN", "1.2"))

REPS = 3


def _update(section, data):
    update_summary("BENCH_planner.json", section, data)


def _fixed_config(**overrides):
    return OptimizerConfig(planning=False, **overrides)


def _drain_stream(engine, expr, bindings=None):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(expr, bindings, optimize=False,
                                         chunked=True))
    return count, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Section 1: local shaping chain (parity — the planner must never lose)
# ---------------------------------------------------------------------------

LOCAL_ROWS = 30_000


class LocalRowsDriver(Driver):
    """A local table of LOCAL_ROWS integers with a registered cardinality."""

    def __init__(self, name="localrows"):
        super().__init__(name)

    def collection_names(self):
        return ["rows"]

    def cardinality(self, collection):
        return LOCAL_ROWS if collection == "rows" else None

    def _execute(self, request):
        def cursor():
            for i in range(LOCAL_ROWS):
                yield i

        return cursor()


def _local_chain():
    scan = A.Scan("localrows", {"table": "rows"}, kind="list")
    filtered = B.ext("v", B.if_then_else(B.prim("ge", B.prim("mod", B.var("v"),
                                                             B.const(1000)),
                                                 B.const(10)),
                                         B.singleton(B.var("v"), "list"),
                                         B.empty("list")),
                     scan, kind="list")
    return B.ext("w", B.singleton(B.prim("add", B.var("w"), B.const(7)),
                                  "list"),
                 filtered, kind="list")


def test_local_section():
    expr = _local_chain()

    planned_engine = KleisliEngine()
    planned_engine.register_driver(LocalRowsDriver())
    fixed_engine = KleisliEngine(_fixed_config())
    fixed_engine.register_driver(LocalRowsDriver())

    # Interleave the two engines (and take min-of-7): this section is a
    # pure parity check and the drain is only ~30 ms, so uncorrelated
    # machine noise would otherwise dominate the ratio.
    planned_time = fixed_time = float("inf")
    planned_count = fixed_count = None
    for _ in range(7):
        count, elapsed = _drain_stream(planned_engine, expr)
        planned_count = count if planned_count is None else planned_count
        assert count == planned_count
        planned_time = min(planned_time, elapsed)
        count, elapsed = _drain_stream(fixed_engine, expr)
        fixed_count = count if fixed_count is None else fixed_count
        assert count == fixed_count
        fixed_time = min(fixed_time, elapsed)
    assert planned_count == fixed_count > 0

    plan = planned_engine.last_plan
    assert not plan.is_default  # the registered cardinality informed it
    assert fixed_engine.last_plan.is_default

    speedup = fixed_time / planned_time
    summary = {
        "rows": LOCAL_ROWS,
        "result_rows": planned_count,
        "planned_s": planned_time,
        "fixed_s": fixed_time,
        "planned_vs_fixed_speedup": speedup,
        "planned_plan": plan.describe(),
    }
    report("E11a: local shaping chain (parity requirement)",
           [["fixed knobs", f"{fixed_time * 1000:.1f} ms", ""],
            ["planned", f"{planned_time * 1000:.1f} ms",
             f"{speedup:.2f}x fixed"]],
           ["engine", "full drain", "notes"])
    _update("local", summary)

    # The never-lose gate: parity or better on the planner's home turf.
    assert speedup >= PLANNER_FACTOR, summary


# ---------------------------------------------------------------------------
# Section 2: fake-remote batched scans (round-trip count dominates)
# ---------------------------------------------------------------------------

REMOTE_IDS = 512
REMOTE_LATENCY = 0.01


class BatchRemoteDriver(Driver):
    """A slow remote lookup whose native batch is ONE wire round-trip."""

    batch_single_round_trip = True

    def __init__(self, name="remote", latency=REMOTE_LATENCY):
        super().__init__(name)
        self.latency = latency
        self.round_trips = 0

    def collection_names(self):
        return ["items"]

    def cardinality(self, collection):
        return 1 if collection == "items" else None

    def _lookup(self, request):
        return CList([int(request.get("key", 0)) * 10])

    def _execute(self, request):
        self.round_trips += 1
        time.sleep(self.latency)
        return self._lookup(request)

    def execute_batch(self, requests):
        self.round_trips += 1
        time.sleep(self.latency)  # one wire call for the whole batch
        return [self._lookup(dict(request)) for request in requests]


def _remote_loop():
    scan = A.Scan("remote", {"table": "items"},
                  args={"key": B.var("x")}, kind="list")
    return B.ext("x", scan, A.Const(CList(range(REMOTE_IDS))), kind="list")


def test_fake_remote_section():
    expr = _remote_loop()

    def run(engine_factory):
        times = []
        trips = None
        count = None
        for _ in range(REPS):
            engine, driver = engine_factory()
            this_count, elapsed = _drain_stream(engine, expr)
            count = this_count if count is None else count
            assert this_count == count
            times.append(elapsed)
            trips = driver.round_trips
        return count, min(times), trips

    def planned_factory():
        engine = KleisliEngine()
        driver = engine.register_driver(BatchRemoteDriver(),
                                        latency=REMOTE_LATENCY)
        return engine, driver

    def fixed_factory():
        engine = KleisliEngine(_fixed_config())
        driver = engine.register_driver(BatchRemoteDriver(),
                                        latency=REMOTE_LATENCY)
        return engine, driver

    planned_count, planned_time, planned_trips = run(planned_factory)
    fixed_count, fixed_time, fixed_trips = run(fixed_factory)
    assert planned_count == fixed_count == REMOTE_IDS

    # The acceptance claim: the planner picked DIFFERENT knobs here.
    probe_engine, _ = planned_factory()
    plan = probe_engine.plan_for(expr)
    assert not plan.is_default
    assert plan.remote_max_chunk > 32, plan.describe()
    assert planned_trips < fixed_trips

    speedup = fixed_time / planned_time
    summary = {
        "ids": REMOTE_IDS,
        "round_trip_latency_s": REMOTE_LATENCY,
        "planned_s": planned_time,
        "fixed_s": fixed_time,
        "planned_round_trips": planned_trips,
        "fixed_round_trips": fixed_trips,
        "planned_vs_fixed_speedup": speedup,
        "planned_plan": plan.describe(),
    }
    report(f"E11b: fake-remote batched scans, {REMOTE_IDS} lookups at "
           f"{REMOTE_LATENCY * 1000:.0f} ms/round-trip",
           [["fixed knobs (cap 32)", f"{fixed_time * 1000:.0f} ms",
             f"{fixed_trips} round-trips"],
            ["planned", f"{planned_time * 1000:.0f} ms",
             f"{planned_trips} round-trips, {speedup:.2f}x fixed"]],
           ["engine", "full drain", "notes"])
    _update("fake_remote", summary)

    assert speedup >= PLANNER_WIN, summary


# ---------------------------------------------------------------------------
# Section 3: skewed-cardinality blocked join (rescan amortization)
# ---------------------------------------------------------------------------

OUTER_ROWS = 2048
INNER_ROWS = 48
INNER_PULL_LATENCY = 0.0005


class OuterDriver(Driver):
    def __init__(self, name="outerdrv"):
        super().__init__(name)

    def collection_names(self):
        return ["o"]

    def cardinality(self, collection):
        return OUTER_ROWS if collection == "o" else None

    def _execute(self, request):
        def cursor():
            for i in range(OUTER_ROWS):
                yield i

        return cursor()


class SlowInnerDriver(Driver):
    """A small inner side whose every element costs a pull latency —
    exactly the source a blocked join's per-block rescans hammer."""

    def __init__(self, name="innerdrv"):
        super().__init__(name)
        self.rescans = 0

    def collection_names(self):
        return ["i"]

    def cardinality(self, collection):
        return INNER_ROWS if collection == "i" else None

    def _execute(self, request):
        self.rescans += 1

        def cursor():
            for i in range(INNER_ROWS):
                time.sleep(INNER_PULL_LATENCY)
                yield i

        return cursor()


def _nested_join_loop():
    condition = B.prim("lt", B.prim("mod", B.var("o"), B.const(97)),
                       B.prim("mod", B.var("i"), B.const(13)))
    head = B.prim("add", B.prim("mul", B.var("o"), B.const(100)), B.var("i"))
    return B.ext(
        "o",
        B.ext("i", B.if_then_else(condition, B.singleton(head), B.empty()),
              A.Scan("innerdrv", {"table": "i"}, kind="set")),
        A.Scan("outerdrv", {"table": "o"}, kind="set"))


def _join_engine(planning):
    # The subquery cache would hide the inner rescans this section studies
    # (both engines would pay them once); disable it so the block-size knob
    # is the only variable.
    config = OptimizerConfig(caching=False) if planning \
        else _fixed_config(caching=False)
    engine = KleisliEngine(config)
    engine.register_driver(OuterDriver())
    inner = engine.register_driver(SlowInnerDriver(),
                                   latency=INNER_PULL_LATENCY)
    return engine, inner


def test_skewed_section():
    nested = _nested_join_loop()

    planned_engine, _ = _join_engine(planning=True)
    fixed_engine, _ = _join_engine(planning=False)
    planned_join = planned_engine.compile(nested)
    fixed_join = fixed_engine.compile(nested)
    assert isinstance(planned_join, A.Join) and planned_join.method == "blocked"
    assert isinstance(fixed_join, A.Join) and fixed_join.method == "blocked"
    # The acceptance claim: a different knob, chosen from the cardinalities.
    assert fixed_join.block_size == 256
    assert planned_join.block_size > 256

    def run(engine_factory, expr):
        times = []
        rescans = None
        count = None
        for _ in range(REPS):
            engine, inner = engine_factory()
            started = time.perf_counter()
            result = engine.execute(expr, optimize=False)
            elapsed = time.perf_counter() - started
            this_count = len(list(iter_collection(result)))
            count = this_count if count is None else count
            assert this_count == count
            times.append(elapsed)
            rescans = inner.rescans
        return count, min(times), rescans

    planned_count, planned_time, planned_rescans = run(
        lambda: _join_engine(planning=True), planned_join)
    fixed_count, fixed_time, fixed_rescans = run(
        lambda: _join_engine(planning=False), fixed_join)
    assert planned_count == fixed_count > 0
    assert planned_rescans < fixed_rescans

    speedup = fixed_time / planned_time
    summary = {
        "outer_rows": OUTER_ROWS,
        "inner_rows": INNER_ROWS,
        "inner_pull_latency_s": INNER_PULL_LATENCY,
        "result_rows": planned_count,
        "planned_block_size": planned_join.block_size,
        "fixed_block_size": fixed_join.block_size,
        "planned_inner_rescans": planned_rescans,
        "fixed_inner_rescans": fixed_rescans,
        "planned_s": planned_time,
        "fixed_s": fixed_time,
        "planned_vs_fixed_speedup": speedup,
    }
    report(f"E11c: skewed blocked join, outer {OUTER_ROWS} x inner "
           f"{INNER_ROWS} at {INNER_PULL_LATENCY * 1000:.1f} ms/pull",
           [["fixed knobs (block 256)", f"{fixed_time * 1000:.0f} ms",
             f"{fixed_rescans} inner rescans"],
            [f"planned (block {planned_join.block_size})",
             f"{planned_time * 1000:.0f} ms",
             f"{planned_rescans} rescans, {speedup:.2f}x fixed"]],
           ["engine", "total", "notes"])
    _update("skewed", summary)

    assert speedup >= PLANNER_WIN, summary
