"""E14 — the persistent plan ledger's warm-start win and write-through cost.

Two claims the crash-safe persistence PR must hold numerically
(``BENCH_persistence.json`` records both):

* **warm start** — an engine attached to a store a previous process
  learned into must beat a cold engine on its *first* query: the restored
  observed-latency EMA promotes the slow undeclared driver to remote, so
  the very first plan prefetches in parallel instead of paying one serial
  round-trip per element.  The first-query speedup must be at least
  ``BENCH_PERSISTENCE_FACTOR`` (local bar 2.0 — measured ~4.7x at 60 ms
  latency x 24 lookups — relaxed via the env knob for shared runners);
* **write-through overhead** — the journal append riding on every
  recorded run must not tax the happy path: a local drain with the store
  attached is compared against a storeless drain, and an explicit
  ``flush()`` is timed.  This section reports (and sanity-checks the
  books of) the durability tax; the env-gated bar stays on the warm-start
  section so runner jitter on a ~30 ms workload cannot flake CI.

Both sections take min-of-REPS, the same noise discipline as the planner
benchmark.
"""

import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.planner import PlanStore
from repro.core.values import CList
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine

from conftest import report, update_summary

#: Warm first query must beat cold first query by at least this factor.
PERSISTENCE_FACTOR = float(os.environ.get("BENCH_PERSISTENCE_FACTOR", "2.0"))

REPS = 3


def _update(section, data):
    update_summary("BENCH_persistence.json", section, data)


def _store(path):
    return PlanStore(os.fspath(path), stats_interval=10_000.0,
                     compact_bytes=0)


# ---------------------------------------------------------------------------
# Section 1: warm start — the first query after a restart
# ---------------------------------------------------------------------------

LOOKUPS = 24
LATENCY = 0.06  # > REMOTE_LATENCY_THRESHOLD: observed EMA promotes remote


class SlowLookupDriver(Driver):
    """A slow per-key lookup that does NOT declare its latency: only a
    prior process's observations can tell a fresh engine it is remote."""

    def __init__(self, name="slowlook", latency=LATENCY):
        super().__init__(name)
        self.latency = latency

    def collection_names(self):
        return ["items"]

    def cardinality(self, collection):
        return 1 if collection == "items" else None

    def _execute(self, request):
        time.sleep(self.latency)
        return CList([int(request.get("key", 0)) * 10])


def _lookup_loop():
    scan = A.Scan("slowlook", {"table": "items"},
                  args={"key": B.var("x")}, kind="list")
    return B.ext("x", scan, A.Const(CList(range(LOOKUPS))), kind="list")


def _first_query(engine):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(_lookup_loop()))
    return count, time.perf_counter() - started


def test_warm_start_first_query(tmp_path):
    # Learning process: two runs (the first observes the latency, the
    # second records feedback under the promoted plan), then a durable
    # flush — everything a real process would leave behind at exit.
    learner = KleisliEngine(plan_store=_store(tmp_path / "plans"))
    learner.register_driver(SlowLookupDriver())
    for _ in range(2):
        count, _ = _first_query(learner)
        assert count == LOOKUPS
    learner.flush_plan_store()
    learner.plan_store.close()

    warm_time = cold_time = float("inf")
    warm_plan = None
    for _ in range(REPS):
        warm = KleisliEngine(plan_store=_store(tmp_path / "plans"))
        warm.register_driver(SlowLookupDriver())
        assert warm.statistics_registry.is_remote("slowlook")
        count, elapsed = _first_query(warm)
        assert count == LOOKUPS
        warm_time = min(warm_time, elapsed)
        warm_plan = warm.last_plan
        warm.plan_store.close()

        cold = KleisliEngine()
        cold.register_driver(SlowLookupDriver())
        assert not cold.statistics_registry.is_remote("slowlook")
        count, elapsed = _first_query(cold)
        assert count == LOOKUPS
        cold_time = min(cold_time, elapsed)

    # The win is structural, not just timed: the warm engine's first plan
    # prefetches (restored knowledge), the cold one pays serial latency.
    assert warm_plan.prefetch_window is not None

    speedup = cold_time / warm_time
    summary = {
        "lookups": LOOKUPS,
        "latency_s": LATENCY,
        "cold_first_query_s": cold_time,
        "warm_first_query_s": warm_time,
        "warm_vs_cold_speedup": speedup,
        "warm_plan": warm_plan.describe(),
    }
    report(f"E14a: first query after restart, {LOOKUPS} lookups at "
           f"{LATENCY * 1000:.0f} ms each",
           [["cold (no store)", f"{cold_time * 1000:.0f} ms", "serial loop"],
            ["warm (restored)", f"{warm_time * 1000:.0f} ms",
             f"prefetched, {speedup:.2f}x cold"]],
           ["engine", "first query", "notes"])
    _update("warm_start", summary)

    assert speedup >= PERSISTENCE_FACTOR, summary


# ---------------------------------------------------------------------------
# Section 2: write-through overhead on the happy path
# ---------------------------------------------------------------------------

LOCAL_ROWS = 20_000


class RowsDriver(Driver):
    """A local table of LOCAL_ROWS integers — the pure happy-path load."""

    def __init__(self, name="rows"):
        super().__init__(name)

    def collection_names(self):
        return ["rows"]

    def cardinality(self, collection):
        return LOCAL_ROWS if collection == "rows" else None

    def _execute(self, request):
        def cursor():
            for i in range(LOCAL_ROWS):
                yield i

        return cursor()


def _shaping_chain():
    scan = A.Scan("rows", {"table": "rows"}, kind="list")
    return B.ext("x", B.singleton(B.prim("add", B.prim("mul", B.var("x"),
                                                       B.const(3)),
                                         B.const(7)), "list"),
                 scan, kind="list")


def _drain(engine, expr):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(expr, optimize=False, chunked=True))
    return count, time.perf_counter() - started


def test_write_through_overhead(tmp_path):
    expr = _shaping_chain()

    bare = KleisliEngine()
    bare.register_driver(RowsDriver())
    attached = KleisliEngine(plan_store=_store(tmp_path / "plans"))
    attached.register_driver(RowsDriver())

    bare_time = attached_time = float("inf")
    for _ in range(max(REPS, 5)):
        count, elapsed = _drain(bare, expr)
        assert count == LOCAL_ROWS
        bare_time = min(bare_time, elapsed)
        count, elapsed = _drain(attached, expr)
        assert count == LOCAL_ROWS
        attached_time = min(attached_time, elapsed)

    started = time.perf_counter()
    attached.flush_plan_store()
    flush_time = time.perf_counter() - started

    # The durability books must balance: every recorded run appended,
    # nothing failed, nothing was silently unpersistable.
    books = attached.health()["persistence"]
    assert books["records_appended"] >= 1
    assert books["append_failures"] == 0
    assert books["unpersistable"] == 0
    assert books["flushes"] >= 1
    attached.plan_store.close()

    overhead_pct = (attached_time / bare_time - 1.0) * 100.0
    summary = {
        "rows": LOCAL_ROWS,
        "bare_s": bare_time,
        "attached_s": attached_time,
        "overhead_pct": overhead_pct,
        "flush_s": flush_time,
        "records_appended": books["records_appended"],
        "journal_bytes": books["journal_bytes"],
    }
    report(f"E14b: write-through overhead, {LOCAL_ROWS}-row local drain",
           [["storeless", f"{bare_time * 1000:.1f} ms", ""],
            ["store attached", f"{attached_time * 1000:.1f} ms",
             f"{overhead_pct:+.1f}% ({books['journal_bytes']} journal bytes)"],
            ["flush()", f"{flush_time * 1000:.2f} ms", "durable fsync"]],
           ["path", "time", "notes"])
    _update("write_through_overhead", summary)
