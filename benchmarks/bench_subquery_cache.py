"""E7 — caching the result of an outer-independent inner subquery.

Paper claim (Section 4): "To avoid recomputation, we have therefore introduced
an operator to cache the result of a subquery ... Rules to recognize when the
result of an inner subquery can be cached check that the subquery doesn't
depend on the outer relation."

The benchmark runs a nested query whose inner subquery fetches from a slow
(simulated-latency) remote source.  Without caching the inner fetch repeats
once per outer element; with caching it runs once.
"""

import time

import pytest

from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.nrc import ast as A
from repro.core.optimizer.caching import make_caching_rule_set
from repro.core.values import CSet, Record
from repro.net.remote import RemoteSource

from conftest import report

OUTER_SIZES = [10, 50, 200]
LATENCY = 0.002


def _expr():
    inner_scan = A.Scan("SLOW", {"table": "reference_set"})
    condition = B.eq(B.project(B.var("x"), "key"), B.project(B.var("y"), "key"))
    head = B.record(key=B.project(B.var("x"), "key"), hit=B.project(B.var("y"), "value"))
    inner = B.ext("y", B.if_then_else(condition, B.singleton(head), B.empty()), inner_scan)
    return B.ext("x", inner, B.var("OUTER"))


def _make_executor():
    inner_data = CSet([Record({"key": i % 10, "value": i}) for i in range(50)])
    source = RemoteSource("SLOW", lambda request: inner_data, latency=LATENCY,
                          max_concurrent_requests=100)

    def executor(driver, request):
        return source.call(request)

    return executor, source


def _run(expr, outer_size):
    executor, source = _make_executor()
    # ``id`` keeps the records distinct: a CSet of key-only records would
    # deduplicate down to 10 elements and undercount the uncached requests.
    data = {"OUTER": CSet([Record({"id": i, "key": i % 10}) for i in range(outer_size)])}
    context = EvalContext(driver_executor=executor)
    started = time.perf_counter()
    value = Evaluator(context).evaluate(expr, Environment(data))
    return time.perf_counter() - started, value, source.request_count


@pytest.mark.parametrize("outer_size", OUTER_SIZES[:2])
def test_cached_inner_subquery(benchmark, outer_size):
    expr = make_caching_rule_set().apply(_expr())
    benchmark(lambda: _run(expr, outer_size))


@pytest.mark.parametrize("outer_size", OUTER_SIZES[:1])
def test_uncached_inner_subquery(benchmark, outer_size):
    benchmark(lambda: _run(_expr(), outer_size))


def test_e7_report():
    rows = []
    for outer_size in OUTER_SIZES:
        plain_time, plain_value, plain_requests = _run(_expr(), outer_size)
        cached_expr = make_caching_rule_set().apply(_expr())
        cached_time, cached_value, cached_requests = _run(cached_expr, outer_size)
        assert plain_value == cached_value
        rows.append([outer_size, f"{plain_time * 1000:.0f} ms", f"{cached_time * 1000:.0f} ms",
                     plain_requests, cached_requests,
                     f"{plain_time / cached_time:.1f}x"])
    report("E7: inner-subquery caching against a slow remote source "
           f"(latency {LATENCY * 1000:.0f} ms per request)",
           rows, ["outer rows", "uncached", "cached", "requests (uncached)",
                  "requests (cached)", "speed-up"])
    assert rows[-1][4] == 1                 # cached: one driver round-trip
    assert rows[-1][3] == OUTER_SIZES[-1]   # uncached: one per outer element
