"""Query-service stress smoke: latency/throughput under concurrent sessions.

Three sections, written to ``BENCH_server.json``:

* **single_client** — one session issuing queries sequentially over the wire
  against a ~3ms-latency driver: per-query p50/p99 and throughput; this is
  the baseline the concurrency section must beat.
* **concurrent** — ``BENCH_SERVER_CLIENTS`` sessions (default 8) issuing the
  same workload at once through ONE shared engine: per-query p50/p99 and
  aggregate throughput.  The workload is I/O-bound (the driver sleeps, the
  GIL is released), so session multiplexing must overlap those waits —
  aggregate throughput is gated at ``BENCH_SERVER_FACTOR`` x the
  single-client baseline (default 2.0; the local margin is far larger).
* **admission** — a deliberately saturated 1-slot server under the reject
  policy: clients see typed rejections, nothing breaks, and the section
  records how many requests were shed vs served.
"""

import os
import threading
import time

from repro.kleisli.drivers.base import Driver, DriverFunction
from repro.kleisli.engine import KleisliEngine
from repro.core.errors import ServerOverloadedError
from repro.server import KleisliClient, KleisliServer

from conftest import report, update_summary

#: Aggregate concurrent throughput must be >= FACTOR x single-client.
SERVER_FACTOR = float(os.environ.get("BENCH_SERVER_FACTOR", "2.0"))
CLIENTS = int(os.environ.get("BENCH_SERVER_CLIENTS", "8"))
QUERIES = int(os.environ.get("BENCH_SERVER_QUERIES", "25"))

#: Simulated remote-source latency per request (seconds).
DRIVER_LATENCY = 0.003

QUERY = '{x + 1 | \\x <- Slow(6)}'


class SlowDriver(Driver):
    """A remote-ish source: every request sleeps ``DRIVER_LATENCY`` (releasing
    the GIL, like real network wait) then yields ``0..count-1``."""

    def _execute(self, request):
        time.sleep(DRIVER_LATENCY)
        return iter(range(request.get("count", 6)))

    def cpl_functions(self):
        return [DriverFunction(self.name, {"table": "t"},
                               argument_key="count")]


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]

def _latency_stats(samples):
    return {
        "queries": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000, 3),
    }


def _server():
    engine = KleisliEngine()
    engine.register_driver(SlowDriver("Slow"), latency=DRIVER_LATENCY)
    return KleisliServer(engine, max_sessions=CLIENTS + 2,
                         max_concurrent_queries=CLIENTS + 2)


def _client_workload(address, queries, latencies, errors):
    try:
        with KleisliClient(address) as client:
            expected = client.query(QUERY)  # warm this session's path
            for _ in range(queries):
                started = time.perf_counter()
                value = client.query(QUERY)
                latencies.append(time.perf_counter() - started)
                if value != expected:
                    errors.append(f"value drift: {value!r}")
    except Exception as error:  # noqa: BLE001 - surfaces in the assertion
        errors.append(f"{type(error).__name__}: {error}")


def test_concurrent_sessions_overlap_io(capsys):
    server = _server()
    with server:
        # -- single client baseline ----------------------------------------
        single_latencies, errors = [], []
        started = time.perf_counter()
        _client_workload(server.address, QUERIES, single_latencies, errors)
        single_elapsed = time.perf_counter() - started
        assert not errors, errors[:3]
        single = _latency_stats(single_latencies)
        single["throughput_qps"] = round(QUERIES / single_elapsed, 1)

        # -- concurrent sessions -------------------------------------------
        concurrent_latencies, errors = [], []
        threads = [threading.Thread(
            target=_client_workload,
            args=(server.address, QUERIES, concurrent_latencies, errors))
            for _ in range(CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_elapsed = time.perf_counter() - started
        assert not errors, errors[:3]
        total = CLIENTS * QUERIES
        concurrent = _latency_stats(concurrent_latencies)
        concurrent["clients"] = CLIENTS
        concurrent["throughput_qps"] = round(total / concurrent_elapsed, 1)

    # stop() has joined the serving threads: the books are final here.
    stats = server.stats.snapshot()
    scaling = concurrent["throughput_qps"] / single["throughput_qps"]
    update_summary("BENCH_server.json", "single_client", single)
    update_summary("BENCH_server.json", "concurrent", {
        **concurrent, "scaling_vs_single": round(scaling, 2),
        "required_factor": SERVER_FACTOR})
    with capsys.disabled():
        report("query service: single vs concurrent sessions", [
            ["single", 1, single["p50_ms"], single["p99_ms"],
             single["throughput_qps"]],
            ["concurrent", CLIENTS, concurrent["p50_ms"],
             concurrent["p99_ms"], concurrent["throughput_qps"]],
        ], ["workload", "sessions", "p50 ms", "p99 ms", "qps"])
        print(f"scaling: {scaling:.2f}x (gate: >= {SERVER_FACTOR}x)")

    assert stats["sessions_opened"] == stats["sessions_closed"] == CLIENTS + 1
    assert stats["failures"] == 0
    assert scaling >= SERVER_FACTOR, \
        (f"concurrent sessions only reached {scaling:.2f}x the single-client "
         f"throughput (gate {SERVER_FACTOR}x) — I/O waits are not overlapping")


def test_admission_sheds_load_without_breaking(capsys):
    engine = KleisliEngine()
    engine.register_driver(SlowDriver("Slow"), latency=DRIVER_LATENCY)
    counters = {"served": 0, "rejected": 0}
    lock = threading.Lock()
    errors = []

    with KleisliServer(engine, max_concurrent_queries=1,
                       admission="reject") as server:
        def hammer():
            try:
                with KleisliClient(server.address) as client:
                    for _ in range(QUERIES):
                        try:
                            client.query(QUERY)
                            with lock:
                                counters["served"] += 1
                        except ServerOverloadedError:
                            with lock:
                                counters["rejected"] += 1
            except Exception as error:  # noqa: BLE001
                errors.append(f"{type(error).__name__}: {error}")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[:3]
        # After the storm the server still answers correctly.
        with KleisliClient(server.address) as client:
            assert sorted(client.query(QUERY)) == [1, 2, 3, 4, 5, 6]
        rejections = server.stats.rejections

    update_summary("BENCH_server.json", "admission", {
        "policy": "reject", "slots": 1, "hammer_threads": 4,
        "served": counters["served"], "rejected": counters["rejected"],
        "server_rejections": rejections})
    with capsys.disabled():
        report("query service: 1-slot reject-policy saturation", [
            ["served", counters["served"]],
            ["rejected (typed)", counters["rejected"]],
        ], ["outcome", "requests"])

    assert counters["served"] >= 4, "saturated server served nothing"
    assert counters["rejected"] == rejections
    assert counters["served"] + counters["rejected"] == 4 * QUERIES
