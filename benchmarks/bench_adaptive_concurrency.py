"""E8c — adaptive concurrency ([43]): adjust the level to the server's capability.

Paper claim (Section 4, closing paragraph): a fixed level of concurrency must
be chosen against an unknown server capacity — too low wastes the latency
overlap, too high overwhelms the server; *"techniques to automatically adjust
the level of concurrency based on the capability of servers and on resource
availability are being developed"* [43].

This benchmark compares fixed worker counts against the
:class:`~repro.kleisli.scheduler.AdaptiveScheduler` on two simulated servers:

* a *capable* server (high concurrency cap) — the adaptive scheduler should
  ramp up and approach the best fixed setting;
* a *fragile* server (cap of 3) — fixed settings above the cap are rejected,
  while the adaptive scheduler backs off, settles at the cap, and completes
  every request.
"""

import os
import time

import pytest

from repro.core.errors import RemoteSourceError
from repro.kleisli.scheduler import AdaptiveScheduler, BoundedScheduler
from repro.net.remote import RemoteSource

from conftest import report

LATENCY = 0.01
REQUESTS = 40


def _server(cap: int) -> RemoteSource:
    return RemoteSource("GenBank", lambda x: x, latency=LATENCY,
                        max_concurrent_requests=cap)


def _run(scheduler, cap: int):
    server = _server(cap)
    started = time.perf_counter()
    try:
        scheduler.map(server.call, list(range(REQUESTS)))
        failed = False
    except RemoteSourceError:
        failed = True
    finally:
        # Pools are persistent per scheduler now; release the workers so one
        # section's idle threads cannot add noise to the next timed section.
        scheduler.close()
    elapsed = time.perf_counter() - started
    return elapsed, server, failed


# --------------------------------------------------------------------------
# pytest-benchmark timings
# --------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["fixed-1", "fixed-5", "adaptive"])
def test_adaptive_against_capable_server(benchmark, mode):
    def once():
        if mode == "adaptive":
            scheduler = AdaptiveScheduler(max_workers=8)
        else:
            scheduler = BoundedScheduler(max_workers=int(mode.split("-")[1]))
        return _run(scheduler, cap=16)

    benchmark(once)


# --------------------------------------------------------------------------
# Paper-style comparison tables
# --------------------------------------------------------------------------

def test_e8c_capable_server_report():
    rows = []
    timings = {}
    for label, scheduler in [
        ("fixed 1 worker", BoundedScheduler(max_workers=1)),
        ("fixed 5 workers", BoundedScheduler(max_workers=5)),
        ("fixed 8 workers", BoundedScheduler(max_workers=8)),
        ("adaptive (cap 8)", AdaptiveScheduler(max_workers=8)),
    ]:
        elapsed, server, failed = _run(scheduler, cap=16)
        assert not failed
        timings[label] = elapsed
        level = getattr(scheduler, "level_history", None)
        rows.append([label, f"{elapsed * 1000:.0f} ms", server.log.max_concurrency(),
                     (level[-1] if level else "-")])
    report(f"E8c: {REQUESTS} requests to a capable server ({LATENCY * 1000:.0f} ms latency, cap 16)",
           rows, ["scheduler", "total time", "peak in-flight", "final level"])
    # The adaptive scheduler beats the sequential baseline clearly and lands
    # within a small factor of the best fixed setting.
    assert timings["adaptive (cap 8)"] < timings["fixed 1 worker"] / 1.5
    assert timings["adaptive (cap 8)"] < timings["fixed 5 workers"] * 3


def test_e8c_fragile_server_report():
    cap = 3
    rows = []
    outcomes = {}
    for label, factory in [
        ("fixed 8 workers", lambda: BoundedScheduler(max_workers=8)),
        ("fixed 3 workers", lambda: BoundedScheduler(max_workers=3)),
        ("adaptive (start 8)", lambda: AdaptiveScheduler(max_workers=10, initial_workers=8)),
    ]:
        elapsed, server, failed = _run(factory(), cap=cap)
        outcomes[label] = failed
        rows.append([label,
                     "rejected" if failed else f"{elapsed * 1000:.0f} ms",
                     server.log.max_concurrency(),
                     len(server.log)])
    report(f"E8c: {REQUESTS} requests to a fragile server (cap {cap})",
           rows, ["scheduler", "outcome", "peak in-flight", "requests served"])
    # A fixed level above the cap overwhelms the server; the adaptive scheduler
    # backs off and completes the workload.
    assert outcomes["fixed 8 workers"] is True
    assert outcomes["adaptive (start 8)"] is False


def test_e8d_executor_reuse_report():
    """Pool churn: schedulers now keep one lazily-created executor.

    Earlier versions built a fresh ThreadPoolExecutor per ``map`` call
    (bounded) or per *batch* (adaptive); on short latency-free batches the
    thread create/join dominated.  Constructing a fresh scheduler per call
    reproduces the old per-call cost; reusing one scheduler shows the
    saving.
    """
    calls, items = 40, 8

    def work(x):
        return x * x

    started = time.perf_counter()
    for _ in range(calls):
        scheduler = BoundedScheduler(max_workers=4)
        try:
            scheduler.map(work, range(items))
        finally:
            scheduler.close()
    churn = time.perf_counter() - started

    started = time.perf_counter()
    with BoundedScheduler(max_workers=4) as scheduler:
        for _ in range(calls):
            scheduler.map(work, range(items))
    reuse = time.perf_counter() - started

    started = time.perf_counter()
    with AdaptiveScheduler(max_workers=4) as adaptive:
        adaptive.map(work, list(range(calls * items)))
    adaptive_reuse = time.perf_counter() - started

    report(f"E8d: {calls} map calls of {items} items (no server latency)",
           [["fresh scheduler per call (old cost)", f"{churn * 1000:.1f} ms"],
            ["one scheduler, pooled executor", f"{reuse * 1000:.1f} ms",],
            [f"adaptive, {adaptive.batches} batches on one pool",
             f"{adaptive_reuse * 1000:.1f} ms"]],
           ["configuration", "total time"])
    # Reuse must at least not lose to per-call pool construction; the margin
    # (locally ~3x in reuse's favor) absorbs shared-runner wall-clock noise
    # rather than asserting a bare `<` that can flip within jitter.
    max_ratio = float(os.environ.get("BENCH_REUSE_MAX_RATIO", "1.25"))
    assert reuse < churn * max_ratio, (reuse, churn)


def test_e8c_adaptive_settles_at_the_server_capability():
    scheduler = AdaptiveScheduler(max_workers=10, initial_workers=8)
    _, server, failed = _run(scheduler, cap=3)
    assert not failed
    report("E8c: adaptive level trajectory against a cap-3 server",
           [[", ".join(str(level) for level in scheduler.level_history)]],
           ["levels used per batch"])
    assert scheduler.overload_events >= 1
    assert scheduler.level_history[-1] <= 3
    assert server.log.max_concurrency() <= 3
