"""E14 — query governance overhead and the spill-vs-in-memory trade.

Two claims the governance PR must hold numerically
(``BENCH_governance.json`` records both):

* **fault-free overhead** — a run carrying a live (never cancelled)
  cancellation token and a generous memory budget must keep >=
  ``BENCH_GOVERNANCE_FACTOR`` of the ungoverned engine's throughput: the
  checkpoints are cheap flag reads and the budget charges are batched per
  chunk, so governance must be invisible on the happy path (the
  zero-governance contract already pins the *values* bit-for-bit; this
  pins the *time*);
* **spill degradation is bounded** — the same dedup workload with its
  seen-set forced to the hash-partitioned disk backend must complete
  within ``BENCH_GOVERNANCE_SPILL_FACTOR`` x the in-memory run, with
  identical element counts: over-budget queries degrade to
  slower-but-correct, not to failure — and not to pathological.

Both sections interleave their engines and take min-of-N, the same noise
discipline as the resilience benchmark.
"""

import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.governance import CancellationToken

from conftest import report, update_summary

#: Governed throughput must stay >= FACTOR x ungoverned on the happy path.
GOVERNANCE_FACTOR = float(os.environ.get("BENCH_GOVERNANCE_FACTOR", "0.80"))
#: A spilled dedup must finish within SPILL_FACTOR x the in-memory run.
GOVERNANCE_SPILL_FACTOR = float(
    os.environ.get("BENCH_GOVERNANCE_SPILL_FACTOR", "60.0"))

REPS = 7
ROWS = 30_000


def _update(section, data):
    update_summary("BENCH_governance.json", section, data)


class RowsDriver(Driver):
    """A local table of ROWS integers, scanned lazily."""

    def __init__(self, name="rows"):
        super().__init__(name)

    def collection_names(self):
        return ["rows"]

    def cardinality(self, collection):
        return ROWS if collection == "rows" else None

    def _execute(self, request):
        def cursor():
            for i in range(request.get("count", ROWS)):
                yield i

        return cursor()


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RowsDriver())
    return engine


def _shaping_chain(count=ROWS):
    scan = A.Scan("rows", {"table": "rows", "count": count}, kind="list")
    return B.ext("x", B.singleton(B.prim("add", B.prim("mul", B.var("x"),
                                                       B.const(3)),
                                         B.const(7)), "list"),
                 scan, kind="list")


def _dedup_chain(count=ROWS, distinct=None):
    """Set-kind comprehension: every element goes through the seen-set."""
    distinct = distinct if distinct is not None else count
    scan = A.Scan("rows", {"table": "rows", "count": count}, kind="list")
    return B.ext("x", B.singleton(B.prim("mod", B.var("x"),
                                         B.const(distinct)), "set"),
                 scan, kind="set")


def _drain(engine, expr, **kwargs):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(expr, optimize=False, chunked=True,
                                         **kwargs))
    return count, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Section 1: fault-free overhead of full governance
# ---------------------------------------------------------------------------

def test_fault_free_governance_overhead():
    expr = _shaping_chain()
    bare_engine = _engine()
    governed_engine = _engine()
    budget = 1 << 30  # generous: charged, never rejecting

    bare_time = governed_time = float("inf")
    bare_count = governed_count = None
    for _ in range(REPS):
        count, elapsed = _drain(bare_engine, expr)
        bare_count = bare_count or count
        bare_time = min(bare_time, elapsed)
        count, elapsed = _drain(governed_engine, expr,
                                cancellation=CancellationToken(),
                                memory_budget=budget)
        governed_count = governed_count or count
        governed_time = min(governed_time, elapsed)
    assert bare_count == governed_count == ROWS

    books = governed_engine.governor.snapshot()
    assert books["cancellations"] == books["budget_rejections"] == 0
    assert books["spills"] == 0

    ratio = bare_time / governed_time
    overhead_pct = (governed_time / bare_time - 1.0) * 100.0
    _update("fault_free_overhead", {
        "rows": ROWS,
        "bare_s": bare_time,
        "governed_s": governed_time,
        "throughput_ratio": ratio,
        "overhead_pct": overhead_pct,
        "gate_factor": GOVERNANCE_FACTOR,
    })
    report("E14a: fault-free overhead of full governance",
           [["ungoverned", f"{bare_time * 1000:.1f} ms", ""],
            ["token + budget installed", f"{governed_time * 1000:.1f} ms",
             f"{overhead_pct:+.1f}%"]],
           ["configuration", "drain time", "overhead"])
    assert ratio >= GOVERNANCE_FACTOR, (
        f"governance overhead too high: {overhead_pct:.1f}% "
        f"(throughput ratio {ratio:.3f} < gate {GOVERNANCE_FACTOR})")


# ---------------------------------------------------------------------------
# Section 2: spill-vs-in-memory throughput on a dedup-heavy workload
# ---------------------------------------------------------------------------

DEDUP_ROWS = 10_200
DISTINCT = 10_000  # >> the spill threshold: the seen-set really hits disk.
# ~2% duplicates: the hash-absent fast path (no disk touch) carries the
# distinct majority; each true duplicate costs one partition load — the
# backend's design point (probe locality, not probe-per-element disk).


def test_spill_vs_in_memory_throughput():
    expr = _dedup_chain(count=DEDUP_ROWS, distinct=DISTINCT)

    memory_time = spill_time = float("inf")
    memory_count = spill_count = None
    spill_engine = None
    for _ in range(3):
        engine = _engine()
        count, elapsed = _drain(engine, expr)
        memory_count = memory_count or count
        memory_time = min(memory_time, elapsed)

        spill_engine = _engine()
        count, elapsed = _drain(spill_engine, expr, spill=True)
        spill_count = spill_count or count
        spill_time = min(spill_time, elapsed)

    # Degradation is invisible in the values: identical distinct counts.
    assert memory_count == spill_count == DISTINCT

    books = spill_engine.governor.snapshot()
    assert books["spills"] > 0 and books["bytes_spilled"] > 0

    slowdown = spill_time / memory_time
    _update("spill_vs_in_memory", {
        "rows": DEDUP_ROWS,
        "distinct": DISTINCT,
        "in_memory_s": memory_time,
        "spilled_s": spill_time,
        "slowdown": slowdown,
        "bytes_spilled": books["bytes_spilled"],
        "gate_factor": GOVERNANCE_SPILL_FACTOR,
    })
    report("E14b: spill-to-disk vs in-memory dedup",
           [["in-memory seen-set", f"{memory_time * 1000:.1f} ms", ""],
            ["hash-partitioned spill", f"{spill_time * 1000:.1f} ms",
             f"{slowdown:.2f}x"]],
           ["backend", "drain time", "slowdown"])
    assert slowdown <= GOVERNANCE_SPILL_FACTOR, (
        f"spill degradation pathological: {slowdown:.2f}x in-memory "
        f"(gate {GOVERNANCE_SPILL_FACTOR}x)")
