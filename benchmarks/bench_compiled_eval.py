"""E9 — compile-to-closures backend vs the tree-walking interpreter.

The paper's Kleisli compiles CPL/NRC to an executable form; this benchmark
measures what that buys over node-by-node interpretation on the two
interpreter-bound workloads from the earlier experiments:

* **local joins** (E6's data): the un-rewritten nested-loop comprehension and
  the indexed blocked nested-loop ``Join`` the rule set introduces;
* **rewrite-heavy queries** (E2's data): the producer/consumer query raw and
  after monadic fusion.

Each workload is evaluated with the same optimized NRC term under both
execution modes (best of three runs), values are asserted equal, and the
report prints the speed-up.  The acceptance bar is >= 2x on both headline
workloads.

A ``BENCH_compiled.json`` summary is written next to this file in the same
sectioned format as ``BENCH_streaming.json``; CI uploads both as workflow
artifacts so speed-ups can be diffed across runs.
"""

import os
import time

from repro.bio.publications import build_publications
from repro.core.cpl.desugar import desugar_expression
from repro.core.cpl.parser import parse_expression
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.compile import compile_term
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.nrc.rules_monadic import monadic_rule_set
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.values import CSet, Record

from conftest import report, update_summary

PRODUCER_CONSUMER = (
    r"{x.title | \x <- {[title = p.title, authors = p.authors, abstract = p.abstract,"
    r" keywords = p.keywd] | \p <- DB}}")

REPS = 3

#: The asserted floor for the headline speed-ups.  Locally the observed
#: margin is ~2.6-8x; CI sets this lower so a noisy shared runner cannot
#: fail an unrelated PR on wall-clock variance.
MIN_SPEEDUP = float(os.environ.get("BENCH_COMPILED_MIN_SPEEDUP", "2.0"))


def _timed_pair(expr, bindings, reps=REPS):
    """Best-of-``reps`` evaluation time under each mode; values must agree."""
    environment = Environment(dict(bindings))
    compiled = compile_term(expr)
    assert compiled.fully_compiled, compiled.fallback_nodes
    interp_time = compiled_time = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        interp_value = Evaluator(EvalContext()).evaluate(expr, environment)
        interp_time = min(interp_time, time.perf_counter() - started)
        started = time.perf_counter()
        compiled_value = compiled(environment, EvalContext())
        compiled_time = min(compiled_time, time.perf_counter() - started)
        assert interp_value == compiled_value
    return interp_time, compiled_time


def _join_workloads(outer_size, inner_size):
    outer = CSet([Record({"id": i, "symbol": f"D22S{i}"}) for i in range(outer_size)])
    inner = CSet([Record({"ref": i % (outer_size // 2 or 1), "value": i})
                  for i in range(inner_size)])
    bindings = {"OUTER": outer, "INNER": inner}
    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    head = B.record(symbol=B.project(B.var("o"), "symbol"),
                    value=B.project(B.var("i"), "value"))
    nested = B.ext("o", B.ext("i", B.if_then_else(condition, B.singleton(head),
                                                  B.empty()), B.var("INNER")),
                   B.var("OUTER"))
    indexed = make_join_rule_set(minimum_inner_size=0).apply(nested)
    assert isinstance(indexed, A.Join)
    return bindings, nested, indexed


def test_e9_report():
    rows = []
    speedups = {}
    timings = {}

    # Workload 1: local joins (interpreter-bound inner loops).
    bindings, nested, indexed = _join_workloads(600, 600)
    for label, expr in [("nested-loop join 600x600", nested),
                        ("indexed join 600x600", indexed)]:
        interp_time, compiled_time = _timed_pair(expr, bindings)
        speedups[label] = interp_time / compiled_time
        timings[label] = (interp_time, compiled_time)
        rows.append([label, f"{interp_time * 1000:.1f} ms",
                     f"{compiled_time * 1000:.1f} ms",
                     f"{speedups[label]:.2f}x"])

    # Workload 2: rewrite-heavy query over publications.
    db = build_publications(4000)
    raw = desugar_expression(parse_expression(PRODUCER_CONSUMER))
    fused = monadic_rule_set().apply(raw)
    for label, expr in [("producer/consumer raw", raw),
                        ("producer/consumer fused", fused)]:
        interp_time, compiled_time = _timed_pair(expr, {"DB": db})
        speedups[label] = interp_time / compiled_time
        timings[label] = (interp_time, compiled_time)
        rows.append([label, f"{interp_time * 1000:.1f} ms",
                     f"{compiled_time * 1000:.1f} ms",
                     f"{speedups[label]:.2f}x"])

    report("E9: closure compiler vs interpreter (same optimized NRC term)",
           rows, ["workload", "interpreted", "compiled", "speed-up"])

    def section(*labels):
        return {
            label: {
                "interpreted_s": timings[label][0],
                "compiled_s": timings[label][1],
                "speedup": speedups[label],
            } for label in labels
        }

    update_summary("BENCH_compiled.json", "local_joins",
                   section("nested-loop join 600x600", "indexed join 600x600"))
    update_summary("BENCH_compiled.json", "producer_consumer",
                   section("producer/consumer raw", "producer/consumer fused"))

    # Acceptance: >= 2x (locally) on both interpreter-bound workload families.
    assert speedups["nested-loop join 600x600"] >= MIN_SPEEDUP, speedups
    assert speedups["producer/consumer fused"] >= MIN_SPEEDUP, speedups


def test_compile_time_is_amortised():
    """Compilation is a one-off cost well under a single interpreted run."""
    db = build_publications(2000)
    expr = monadic_rule_set().apply(
        desugar_expression(parse_expression(PRODUCER_CONSUMER)))
    environment = Environment({"DB": db})
    started = time.perf_counter()
    compiled = compile_term(expr)
    compile_time = time.perf_counter() - started
    started = time.perf_counter()
    Evaluator(EvalContext()).evaluate(expr, environment)
    interp_time = time.perf_counter() - started
    compiled(environment, EvalContext())
    update_summary("BENCH_compiled.json", "compile_amortisation", {
        "compile_time_s": compile_time,
        "one_interpreted_run_s": interp_time,
        "amortised_after_runs": compile_time / interp_time
        if interp_time > 0 else 0.0,
    })
    assert compile_time < interp_time, (compile_time, interp_time)
