"""E2 / E3 — the monadic rewrite rules (vertical/horizontal fusion, filter promotion, R4).

Paper claims (Section 4): R1 removes intermediate collections; R2 replaces two
traversals of the same set by one; R3 hoists loop-invariant filters; R4 prunes
columns in intermediate data.  The benchmark measures evaluation time and the
evaluator's intermediate-data statistics for each query with the optimization
on and off, over Publication sets of increasing size.

Ablation: each case uses ``monadic_rule_set(include_*=False)`` as the baseline,
so the effect of every individual rule is isolated (the ``--no-nrc`` design
question from DESIGN.md: fusion is applied on NRC, the baseline skips it).
"""

import time

import pytest

from repro.bio.publications import build_publications
from repro.core.cpl.desugar import desugar_expression
from repro.core.cpl.parser import parse_expression
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.nrc.rules_monadic import monadic_rule_set
from repro.core.values import CSet

from conftest import report

SIZES = [200, 1000, 4000]

# A producer/consumer query: the producer builds wide intermediate records, the
# consumer keeps one field.  R1+R4 fuse the loops and drop the extra columns.
PRODUCER_CONSUMER = (
    r"{x.title | \x <- {[title = p.title, authors = p.authors, abstract = p.abstract,"
    r" keywords = p.keywd] | \p <- DB}}")

# Two independent loops over the same set (R2), and a loop with an invariant filter (R3).
HORIZONTAL = None  # built as NRC below (union of two comprehensions)
FILTERED = r"{p.title | \p <- DB, threshold > 1988, p.year >= threshold}"


def _evaluate(expr, bindings):
    context = EvalContext()
    Evaluator(context).evaluate(expr, Environment(dict(bindings)))
    return context


def _timed(expr, bindings):
    started = time.perf_counter()
    context = _evaluate(expr, bindings)
    return time.perf_counter() - started, context


def _horizontal_expr():
    left = B.ext("x", B.singleton(B.project(B.var("x"), "title")), B.var("DB"))
    right = B.ext("x", B.singleton(B.project(B.var("x"), "abstract")), B.var("DB"))
    return B.union(left, right)


@pytest.mark.parametrize("size", SIZES)
def test_vertical_fusion_optimized(benchmark, size):
    db = build_publications(size)
    expr = monadic_rule_set().apply(desugar_expression(parse_expression(PRODUCER_CONSUMER)))
    benchmark(_evaluate, expr, {"DB": db})


@pytest.mark.parametrize("size", SIZES)
def test_vertical_fusion_baseline(benchmark, size):
    db = build_publications(size)
    expr = desugar_expression(parse_expression(PRODUCER_CONSUMER))
    benchmark(_evaluate, expr, {"DB": db})


def test_e2_e3_report():
    """Regenerates the E2/E3 comparison tables."""
    rows = []
    for size in SIZES:
        db = build_publications(size)
        raw = desugar_expression(parse_expression(PRODUCER_CONSUMER))
        fused = monadic_rule_set().apply(raw)
        baseline_time, baseline_ctx = _timed(raw, {"DB": db})
        fused_time, fused_ctx = _timed(fused, {"DB": db})
        rows.append([size, f"{baseline_time * 1000:.1f} ms", f"{fused_time * 1000:.1f} ms",
                     f"{baseline_time / fused_time:.2f}x",
                     baseline_ctx.statistics.ext_iterations,
                     fused_ctx.statistics.ext_iterations])
    report("E2: R1 vertical fusion + R4 projection reduction (producer/consumer query)",
           rows, ["publications", "unfused", "fused", "speed-up",
                  "iterations (unfused)", "iterations (fused)"])
    assert rows[-1][4] > rows[-1][5]  # fusion removes the intermediate loop

    rows = []
    for size in SIZES:
        db = build_publications(size)
        expr = _horizontal_expr()
        fused = monadic_rule_set().apply(expr)
        two_pass, two_ctx = _timed(expr, {"DB": db})
        one_pass, one_ctx = _timed(fused, {"DB": db})
        rows.append([size, f"{two_pass * 1000:.1f} ms", f"{one_pass * 1000:.1f} ms",
                     two_ctx.statistics.ext_iterations, one_ctx.statistics.ext_iterations])
    report("E3a: R2 horizontal fusion (two loops over the same set)",
           rows, ["publications", "two traversals", "one traversal",
                  "iterations (before)", "iterations (after)"])
    assert rows[-1][3] == 2 * rows[-1][4]

    rows = []
    for size in SIZES:
        db = build_publications(size)
        raw = desugar_expression(parse_expression(FILTERED))
        promoted = monadic_rule_set().apply(raw)
        bindings = {"DB": db, "threshold": 1900}   # filter false: promoted version skips the loop
        raw_time, _ = _timed(raw, bindings)
        promoted_time, promoted_ctx = _timed(promoted, bindings)
        rows.append([size, f"{raw_time * 1000:.2f} ms", f"{promoted_time * 1000:.2f} ms",
                     promoted_ctx.statistics.ext_iterations])
    report("E3b: R3 filter promotion (loop-invariant test hoisted out)",
           rows, ["publications", "filter inside", "filter hoisted", "iterations when false"])
    assert rows[-1][3] == 0
