"""E9 — per-stage optimizer ablation over the DOE query.

The paper describes its optimizer as a set of independently specified rule
sets (monadic normalisation, pushdown to the servers, local join operators,
inner-subquery caching, bounded parallelism).  DESIGN.md lists these stages as
ablation candidates; this benchmark turns each stage off in isolation and
re-runs the end-to-end DOE chromosome-22 query, reporting how the run time and
the work crossing the driver boundary change — i.e. which of the paper's
optimizations carries how much of the win.

Every configuration must return exactly the same answer as the fully
optimized pipeline (rewrites never change meaning).
"""

import time

import pytest

from repro.bio.chromosome22 import build_chromosome22
from repro.core.optimizer import OptimizerConfig
from repro.kleisli.drivers import EntrezDriver, RelationalDriver
from repro.kleisli.session import Session

from conftest import report

LOCUS_COUNT = 80

LOCI22 = '''
define Loci22 == {[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''

ASN_IDS = '''
define ASN-IDs == \\accession =>
  GenBank([db = "na", select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])
'''

DOE = ('{[locus = locus, homologs = NA-Links(uid)] |'
       ' \\locus <- Loci22, \\uid <- ASN-IDs(locus.genbank-ref)}')

CONFIGURATIONS = [
    ("full optimizer", OptimizerConfig()),
    ("no monadic rules (R1-R4)", OptimizerConfig(monadic=False)),
    ("no SQL pushdown", OptimizerConfig(sql_pushdown=False)),
    ("no path pushdown", OptimizerConfig(path_pushdown=False)),
    ("no local join operators", OptimizerConfig(local_joins=False)),
    ("no subquery caching", OptimizerConfig(caching=False)),
    ("no parallel remote loops", OptimizerConfig(parallelism=False)),
    ("everything off", OptimizerConfig.disabled()),
]


def _session(dataset, config: OptimizerConfig) -> Session:
    session = Session(optimizer_config=config)
    session.register_driver(RelationalDriver("GDB", dataset.gdb))
    session.register_driver(EntrezDriver("GenBank", dataset.genbank))
    session.run(LOCI22)
    session.run(ASN_IDS)
    return session


@pytest.fixture(scope="module")
def dataset():
    return build_chromosome22(locus_count=LOCUS_COUNT, seed=22)


def _run_once(dataset, config: OptimizerConfig):
    session = _session(dataset, config)
    started = time.perf_counter()
    value = session.run(DOE)
    elapsed = time.perf_counter() - started
    statistics = session.engine.last_eval_statistics
    return value, elapsed, statistics


@pytest.mark.parametrize("label,config", CONFIGURATIONS[:1] + CONFIGURATIONS[-1:])
def test_doe_query_under_configuration(benchmark, dataset, label, config):
    session = _session(dataset, config)
    benchmark(session.run, DOE)


def test_e9_ablation_report(dataset):
    reference, _, _ = _run_once(dataset, OptimizerConfig())
    rows = []
    timings = {}
    for label, config in CONFIGURATIONS:
        value, elapsed, statistics = _run_once(dataset, config)
        assert value == reference, f"{label} changed the query's answer"
        timings[label] = elapsed
        rows.append([label, f"{elapsed * 1000:.0f} ms",
                     statistics.scan_requests, statistics.scan_elements,
                     statistics.ext_iterations])
    report(f"E9: DOE query over {LOCUS_COUNT} loci — one optimizer stage disabled at a time",
           rows, ["configuration", "time", "driver requests",
                  "rows crossing driver", "loop iterations"])
    # The fully optimized pipeline beats the fully disabled one, and disabling
    # the SQL pushdown (the biggest single win on this query) costs measurably.
    assert timings["full optimizer"] < timings["everything off"]
    assert timings["full optimizer"] <= timings["no SQL pushdown"]


def test_e9_adaptive_concurrency_configuration(dataset):
    """The adaptive-concurrency switch composes with the rest of the pipeline
    and does not change the answer."""
    reference, _, _ = _run_once(dataset, OptimizerConfig())
    adaptive_value, elapsed, _ = _run_once(
        dataset, OptimizerConfig(adaptive_concurrency=True))
    assert adaptive_value == reference
    report("E9: adaptive concurrency switch over the same query",
           [["adaptive scheduler", f"{elapsed * 1000:.0f} ms"]],
           ["configuration", "time"])
