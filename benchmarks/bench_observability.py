"""E15 — observability overhead: the hub, and EXPLAIN ANALYZE itself.

Two claims the observability PR must hold numerically
(``BENCH_observability.json`` records both):

* **hub overhead is bounded** — a run with a live :class:`Observability`
  hub attached (tracer + metrics + slow-query log all recording) must keep
  >= ``BENCH_OBSERVABILITY_FACTOR`` of the bare engine's streaming
  throughput: every hook is a ``None``-guarded attribute read on the bare
  path and a counter bump / span append on the observed path, so watching
  a query must never meaningfully slow it (the zero-recorder contract
  already pins the *values* bit-for-bit; this pins the *time*).  The
  design target is <= 5% overhead — quiet machines measure ~2-3% — and
  the recorded ``overhead_pct`` tracks it; the pass/fail gate leaves the
  same noise headroom as the governance bench;
* **EXPLAIN ANALYZE is affordable** — the same workload profiled
  (``profile=True``: per-stage probe tee, span tree, cardinality
  bookkeeping) must keep >= ``BENCH_OBSERVABILITY_PROFILE_FACTOR`` of
  bare throughput: profiling one query must be a tool an operator can
  reach for on production traffic, not a lab-only mode.

Both sections interleave their engines and take min-of-N, the same noise
discipline as the governance benchmark.
"""

import os
import time

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.obs import Observability

from conftest import report, update_summary

#: Observed throughput must stay >= FACTOR x bare with a hub attached.
OBSERVABILITY_FACTOR = float(
    os.environ.get("BENCH_OBSERVABILITY_FACTOR", "0.80"))
#: A profiled (EXPLAIN ANALYZE) run must stay >= PROFILE_FACTOR x bare.
OBSERVABILITY_PROFILE_FACTOR = float(
    os.environ.get("BENCH_OBSERVABILITY_PROFILE_FACTOR", "0.80"))

REPS = 9
ROWS = 80_000


def _update(section, data):
    update_summary("BENCH_observability.json", section, data)


class RowsDriver(Driver):
    """A local table of ROWS integers, scanned lazily."""

    def __init__(self, name="rows"):
        super().__init__(name)

    def collection_names(self):
        return ["rows"]

    def cardinality(self, collection):
        return ROWS if collection == "rows" else None

    def _execute(self, request):
        def cursor():
            for i in range(request.get("count", ROWS)):
                yield i

        return cursor()


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RowsDriver())
    return engine


def _shaping_chain(count=ROWS):
    scan = A.Scan("rows", {"table": "rows", "count": count}, kind="list")
    return B.ext("x", B.singleton(B.prim("add", B.prim("mul", B.var("x"),
                                                       B.const(3)),
                                         B.const(7)), "list"),
                 scan, kind="list")


def _drain(engine, expr, **kwargs):
    started = time.perf_counter()
    count = sum(1 for _ in engine.stream(expr, optimize=False, chunked=True,
                                         **kwargs))
    return count, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Section 1: overhead of an attached hub on the streaming happy path
# ---------------------------------------------------------------------------

def test_attached_hub_overhead():
    expr = _shaping_chain()
    bare_engine = _engine()
    observed_engine = _engine()
    hub = observed_engine.attach_observability(Observability())

    _drain(bare_engine, expr)       # untimed warmup: JIT caches, allocator
    _drain(observed_engine, expr)
    bare_time = observed_time = float("inf")
    bare_count = observed_count = None
    for _ in range(REPS):
        count, elapsed = _drain(bare_engine, expr)
        bare_count = bare_count or count
        bare_time = min(bare_time, elapsed)
        count, elapsed = _drain(observed_engine, expr)
        observed_count = observed_count or count
        observed_time = min(observed_time, elapsed)
    assert bare_count == observed_count == ROWS

    # the hub really was watching every rep (plus the warmup)
    assert hub.queries.value == REPS + 1
    assert hub.tracer.snapshot()["finished"] == REPS + 1
    assert bare_engine.observability is None

    ratio = bare_time / observed_time
    overhead_pct = (observed_time / bare_time - 1.0) * 100.0
    _update("attached_hub_overhead", {
        "rows": ROWS,
        "bare_s": bare_time,
        "observed_s": observed_time,
        "throughput_ratio": ratio,
        "overhead_pct": overhead_pct,
        "gate_factor": OBSERVABILITY_FACTOR,
    })
    report("E15a: streaming overhead with the observability hub attached",
           [["bare engine", f"{bare_time * 1000:.1f} ms", ""],
            ["hub attached", f"{observed_time * 1000:.1f} ms",
             f"{overhead_pct:+.1f}%"]],
           ["configuration", "drain time", "overhead"])
    assert ratio >= OBSERVABILITY_FACTOR, (
        f"observability overhead too high: {overhead_pct:.1f}% "
        f"(throughput ratio {ratio:.3f} < gate {OBSERVABILITY_FACTOR})")


# ---------------------------------------------------------------------------
# Section 2: the cost of EXPLAIN ANALYZE itself
# ---------------------------------------------------------------------------

def test_explain_analyze_overhead():
    expr = _shaping_chain()
    bare_engine = _engine()
    profiled_engine = _engine()

    _drain(bare_engine, expr)       # untimed warmup, as in section 1
    _drain(profiled_engine, expr, profile=True)
    bare_time = profiled_time = float("inf")
    bare_count = profiled_count = None
    for _ in range(REPS):
        count, elapsed = _drain(bare_engine, expr)
        bare_count = bare_count or count
        bare_time = min(bare_time, elapsed)
        count, elapsed = _drain(profiled_engine, expr, profile=True)
        profiled_count = profiled_count or count
        profiled_time = min(profiled_time, elapsed)
    assert bare_count == profiled_count == ROWS

    profile = profiled_engine.last_profile
    assert profile is not None and profile.status == "ok"
    assert profile.actual_rows == float(ROWS)
    assert profile.stages["pipeline"]["rows"] == ROWS

    ratio = bare_time / profiled_time
    overhead_pct = (profiled_time / bare_time - 1.0) * 100.0
    _update("explain_analyze_overhead", {
        "rows": ROWS,
        "bare_s": bare_time,
        "profiled_s": profiled_time,
        "throughput_ratio": ratio,
        "overhead_pct": overhead_pct,
        "gate_factor": OBSERVABILITY_PROFILE_FACTOR,
    })
    report("E15b: EXPLAIN ANALYZE overhead on the same workload",
           [["bare engine", f"{bare_time * 1000:.1f} ms", ""],
            ["profile=True", f"{profiled_time * 1000:.1f} ms",
             f"{overhead_pct:+.1f}%"]],
           ["configuration", "drain time", "overhead"])
    assert ratio >= OBSERVABILITY_PROFILE_FACTOR, (
        f"EXPLAIN ANALYZE overhead too high: {overhead_pct:.1f}% "
        f"(throughput ratio {ratio:.3f} < gate "
        f"{OBSERVABILITY_PROFILE_FACTOR})")
