"""F1 — the end-to-end DOE chromosome-22 query (Figure 1 / Section 3).

Measures the full multi-source pipeline — the pushed-down GDB join, per-locus
Entrez lookups with path pruning, and NA-Links retrieval — with the optimizer
on and off, over datasets of increasing size, and checks that both agree.
"""

import time

import pytest

from repro.bio.chromosome22 import build_chromosome22
from repro.core.optimizer import OptimizerConfig
from repro.kleisli.drivers import EntrezDriver, RelationalDriver
from repro.kleisli.session import Session

from conftest import report

SIZES = [60, 150]

LOCI22 = '''
define Loci22 == {[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''

ASN_IDS = '''
define ASN-IDs == \\accession =>
  GenBank([db = "na", select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])
'''

DOE = ('{[locus = locus, homologs = NA-Links(uid)] |'
       ' \\locus <- Loci22, \\uid <- ASN-IDs(locus.genbank-ref)}')


def _session(dataset, optimized: bool) -> Session:
    config = None if optimized else OptimizerConfig.disabled()
    session = Session(optimizer_config=config)
    session.register_driver(RelationalDriver("GDB", dataset.gdb))
    session.register_driver(EntrezDriver("GenBank", dataset.genbank))
    session.run(LOCI22)
    session.run(ASN_IDS)
    return session


@pytest.mark.parametrize("size", SIZES[:1])
def test_doe_query_optimized(benchmark, size):
    dataset = build_chromosome22(locus_count=size)
    session = _session(dataset, optimized=True)
    benchmark(session.run, DOE)


def test_f1_report():
    rows = []
    for size in SIZES:
        dataset = build_chromosome22(locus_count=size)
        optimized_session = _session(dataset, optimized=True)
        baseline_session = _session(dataset, optimized=False)

        started = time.perf_counter()
        optimized_value = optimized_session.run(DOE)
        optimized_time = time.perf_counter() - started

        started = time.perf_counter()
        baseline_value = baseline_session.run(DOE)
        baseline_time = time.perf_counter() - started

        assert optimized_value == baseline_value
        with_homologs = sum(1 for row in optimized_value if len(row.project("homologs")))
        rows.append([size, len(optimized_value), with_homologs,
                     f"{baseline_time * 1000:.0f} ms", f"{optimized_time * 1000:.0f} ms"])
    report("F1: the DOE chromosome-22 query, unoptimized vs optimized pipeline",
           rows, ["loci generated", "answer rows", "rows with homologs",
                  "unoptimized", "optimized"])
    assert rows[-1][1] > 0
    assert rows[-1][2] > 0
