"""E4 — pushdown of selections, projections and joins into the relational driver.

Paper claim (Section 3): the CPL-only Loci22 query "appears to send three
queries to the Sybase server and perform the join within CPL", but the
optimizer reconstructs it "resulting in a single SQL query being shipped",
where the server can use its indexes and statistics.

The benchmark runs the Loci22 query with the optimizer on and off against
GDB-shaped databases of increasing size and reports time, the number of driver
requests, and the number of rows crossing the driver boundary.
"""

import time

import pytest

from repro.bio.gdb import build_gdb
from repro.core.optimizer import OptimizerConfig
from repro.kleisli.drivers import RelationalDriver
from repro.kleisli.session import Session

from conftest import report

SIZES = [500, 2000, 8000]

LOCI22 = '''
{[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''


def _session(size: int, optimized: bool) -> Session:
    config = None if optimized else OptimizerConfig.disabled()
    session = Session(optimizer_config=config)
    session.register_driver(RelationalDriver("GDB", build_gdb(locus_count=size)))
    return session


def _run(session: Session):
    started = time.perf_counter()
    value = session.run(LOCI22)
    elapsed = time.perf_counter() - started
    stats = session.engine.last_eval_statistics
    return elapsed, value, stats


@pytest.mark.parametrize("size", SIZES[:2])
def test_loci22_pushed_down(benchmark, size):
    session = _session(size, optimized=True)
    benchmark(session.run, LOCI22)


@pytest.mark.parametrize("size", SIZES[:2])
def test_loci22_local_join_baseline(benchmark, size):
    session = _session(size, optimized=False)
    benchmark(session.run, LOCI22)


def test_e4_report():
    rows = []
    for size in SIZES:
        pushed_session = _session(size, optimized=True)
        local_session = _session(size, optimized=False)
        pushed_time, pushed_value, pushed_stats = _run(pushed_session)
        local_time, local_value, local_stats = _run(local_session)
        assert pushed_value == local_value
        rows.append([size,
                     f"{local_time * 1000:.0f} ms", f"{pushed_time * 1000:.0f} ms",
                     f"{local_time / pushed_time:.1f}x",
                     local_stats.scan_requests, pushed_stats.scan_requests,
                     local_stats.scan_elements, pushed_stats.scan_elements])
    report("E4: Loci22 — local evaluation vs single pushed-down SQL query",
           rows, ["loci", "local", "pushed", "speed-up",
                  "requests (local)", "requests (pushed)",
                  "rows fetched (local)", "rows fetched (pushed)"])
    # Shape of the paper's claim: one shipped query, far less data crossing the driver.
    assert rows[-1][5] == 1
    assert rows[-1][7] < rows[-1][6]
