"""Populating object-oriented databases from CPL: bulk load and generated loaders.

Section 2, "Object Identity": *"some systems such as ACEDB have a text format
for describing a whole database in which the object identifiers are explicit
values.  We can generate such files with the existing machinery of CPL ...
For object-oriented databases that do not have this 'bulk load' ability, it is
usually an easy matter to make CPL generate the text of a program in native
OODB code that calls the appropriate constructors to populate the database."*

This example runs both routes over the same CPL transformation:

1. query GenBank (ASN.1) for the chromosome-22 sequence entries,
2. transform them in CPL into ``class``/``name`` records with cross-references
   from each Locus object to its Sequence object,
3. emit the ``.ace`` bulk-load text,
4. emit a *native OODB loader program* (Python constructor-call dialect),
   execute it, and check it builds the same database, and
5. show the C++-flavoured dialect of the same loader.

Run with::

    python examples/oodb_export.py [--loci 60] [--save DIR]
"""

import argparse
import pathlib

from repro import Ref, Session
from repro.ace import AceDatabase, dump_ace, execute_oodb_program, generate_oodb_program, parse_ace
from repro.bio.chromosome22 import build_chromosome22
from repro.kleisli.drivers import EntrezDriver, RelationalDriver


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loci", type=int, default=60, help="number of GDB loci to generate")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="write the .ace file and the loader programs to DIR")
    arguments = parser.parse_args()

    data = build_chromosome22(locus_count=arguments.loci)
    session = Session()
    session.register_driver(RelationalDriver("GDB", data.gdb))
    session.register_driver(EntrezDriver("GenBank", data.genbank))

    print("== 1-2. CPL transformation: ASN.1 entries -> Sequence and Locus objects ==")
    sequences = session.run('''
        {[class = "Sequence", name = e.accession, Organism = e.organism,
          Length = e.seq.length, Title = e.title] |
          \\e <- GenBank([db = "na", select = "chromosome 22"])}
    ''')
    loci = session.run('''
        {[class = "Locus", name = x, GenBank = y] |
          [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
          [genbank_ref = \\y, object_id = a, object_class_key = 1, ...]
              <- GDB-Tab("object_genbank_eref"),
          [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...]
              <- GDB-Tab("locus_cyto_location")}
    ''')
    # Turn the GenBank accession carried by each locus into an object
    # reference, so the Locus objects point at the Sequence objects.
    loci_with_refs = [
        locus.with_fields(GenBank=Ref("Sequence", locus.project("GenBank")))
        for locus in loci
    ]
    objects = list(sequences) + list(loci_with_refs)
    print(f"  {len(sequences)} Sequence objects, {len(loci_with_refs)} Locus objects")

    print("\n== 3. the ACEDB route: .ace bulk-load text ==")
    ace_text = dump_ace(objects)
    print("\n".join(ace_text.splitlines()[:8]))
    print(f"  ... {len(ace_text.splitlines())} lines of .ace text")
    acedb = AceDatabase("chr22")
    acedb.load(parse_ace(ace_text))
    print(f"  bulk-loaded into classes {acedb.class_names()} ({len(acedb)} objects)")

    print("\n== 4. the no-bulk-load route: a generated native loader program ==")
    loader = generate_oodb_program(objects, database_name="chr22")
    print("\n".join(loader.splitlines()[:8]))
    print(f"  ... {len(loader.splitlines())} lines of loader code")
    loaded = execute_oodb_program(loader)
    print(f"  executing the loader builds classes {loaded.class_names()} ({len(loaded)} objects)")
    print(f"  same contents as the bulk load: "
          f"{ {c: len(loaded.ace_class(c)) for c in loaded.class_names()} == {c: len(acedb.ace_class(c)) for c in acedb.class_names()} }")

    print("\n== 5. the same loader in the C++ dialect ==")
    cxx = generate_oodb_program(objects[:2], dialect="cxx", database_name="chr22")
    print(cxx)

    if arguments.save:
        directory = pathlib.Path(arguments.save)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "chr22.ace").write_text(ace_text)
        (directory / "load_chr22.py").write_text(loader)
        (directory / "load_chr22.cxx").write_text(
            generate_oodb_program(objects, dialect="cxx", database_name="chr22"))
        print(f"\nFiles written to {directory}/")


if __name__ == "__main__":
    main()
