"""Quickstart: CPL over the paper's Publication data.

Run with::

    python examples/quickstart.py

Walks through the queries of Section 2 of the paper — projection, pattern
matching with open records, restructuring (flattening and keyword inversion),
variant pattern matching, and a multi-clause function (``jname``) — over a
synthetic GenBank-publication set whose first element is the paper's own
perforin example.
"""

from repro import Session
from repro.bio.publications import PUBLICATION_TYPE, build_publications


def main() -> None:
    session = Session()
    session.bind("DB", build_publications(120), cpl_type=PUBLICATION_TYPE)

    print("== titles and authors (the paper's first example query) ==")
    result = session.run(r"{[title = p.title, authors = p.authors] | \p <- DB, p.year = 1989}")
    print(session.print_value(result, width=90)[:600], "...\n")

    print("== publications from 1988, written with a pattern instead of a filter ==")
    result = session.run(
        r"{[title = t] | [title = \t, year = 1988, ...] <- DB}")
    print(f"{len(result)} publications from 1988\n")

    print("== flattening the nested keyword set ==")
    flat = session.run(
        r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}")
    print(f"{len(flat)} (title, keyword) pairs\n")

    print("== restructuring: a database of keywords with their titles ==")
    inverted = session.run(
        r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |"
        r" \y <- DB, \k <- y.keywd}")
    for row in sorted(inverted, key=lambda r: r.project("keyword"))[:5]:
        print(f"  {row.project('keyword')}: {len(row.project('titles'))} titles")
    print()

    print("== variant pattern matching: uncontrolled journals only ==")
    uncontrolled = session.run(
        r"{[name = n, title = t] |"
        r" [title = \t, journal = <uncontrolled = \n>, ...] <- DB}")
    print(f"{len(uncontrolled)} publications in uncontrolled journals\n")

    print("== the paper's jname function (pattern alternatives over a variant) ==")
    session.run('''
        define jname ==
           <uncontrolled = \\s> => s
         | <controlled = <medline-jta = \\s>> => s
         | <controlled = <iso-jta = \\s>> => s
         | <controlled = <journal-title = \\s>> => s
         | <controlled = <issn = \\s>> => s
    ''')
    journals = session.run(
        r'{[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB, '
        r'string_contains(t, "perforin")}')
    print(session.print_tabular(journals))

    print("== output formats: tab-delimited and HTML ==")
    relation = session.run(r"{[title = p.title, year = p.year] | \p <- DB, p.year >= 1994}")
    print(session.print_tabular(relation)[:300])
    html = session.print_html(relation, title="Publications since 1994")
    print(f"(HTML output: {len(html)} characters)")


if __name__ == "__main__":
    main()
