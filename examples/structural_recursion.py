"""Structural recursion: aggregates, transitive closure and restructuring.

Section 2 of the paper: comprehension syntax *"is derived from a more powerful
programming paradigm on collection types, that of structural recursion.  This
more general form of computation on collections allows the expression of
aggregate functions such as summation, as well as functions such as transitive
closure, that cannot be expressed through comprehensions alone."*

This example exercises that layer of the reproduction on the chromosome-22
scenario:

1. ``fold`` from CPL — aggregates written as structural recursion;
2. well-definedness spot checks for folds over sets and bags;
3. ``tclosure`` — homology links chased transitively into similarity families;
4. ``nest`` / ``unnest`` — the keyword-inversion restructuring as value-level
   operators, cross-checked against the comprehension that does the same.

Run with::

    python examples/structural_recursion.py [--loci 60]
"""

import argparse

from repro import Session
from repro.bio.chromosome22 import build_chromosome22
from repro.bio.publications import build_publications
from repro.core.nrc.structural import check_fold_well_defined, nest, transitive_closure, unnest
from repro.core.values import CBag, CSet
from repro.kleisli.drivers import EntrezDriver, RelationalDriver


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loci", type=int, default=60, help="number of GDB loci to generate")
    arguments = parser.parse_args()

    data = build_chromosome22(locus_count=arguments.loci)
    session = Session()
    session.register_driver(RelationalDriver("GDB", data.gdb))
    session.register_driver(EntrezDriver("GenBank", data.genbank))
    session.bind("Publications", build_publications(80))

    print("== 1. aggregates as folds ==")
    total = session.run(r"fold(\a => \p => a + count(p.keywd), 0, Publications)")
    longest = session.run(r"fold(\a => \p => if a >= p.year then a else p.year, 0, Publications)")
    print(f"  keywords attached across all publications: {total}")
    print(f"  most recent publication year (fold with max): {longest}")

    print("\n== 2. well-definedness of folds over sets and bags ==")
    add = lambda accumulator, element: accumulator + element  # noqa: E731 - tiny demo combiner
    sample_set = CSet([1, 2, 3])
    sample_bag = CBag([1, 2, 3])
    print(f"  sum over a bag: issues = {check_fold_well_defined(add, 0, sample_bag)!r}")
    print(f"  sum over a set: issues = {check_fold_well_defined(add, 0, sample_set)!r}")
    print(f"  max over a set: issues = {check_fold_well_defined(max, 0, sample_set)!r}")

    print("\n== 3. transitive closure over the map containment hierarchy ==")
    # GDB's cytogenetic map is a containment chain: chromosome contains band,
    # band contains locus.  The direct edges are two comprehensions; the
    # transitive closure (not expressible as a comprehension) adds the derived
    # chromosome -> locus edges.
    direct = session.run('''
        {[contains = "chr" ^ c.loc_cyto_chrom_num, part = c.loc_cyto_band_start] |
          \\c <- GDB-Tab("locus_cyto_location")}
    ''').union(session.run('''
        {[contains = c.loc_cyto_band_start, part = l.locus_symbol] |
          \\l <- GDB-Tab("locus"), \\c <- GDB-Tab("locus_cyto_location"),
          c.locus_cyto_location_id = l.locus_id}
    '''))
    session.bind("Containment", direct)
    closure = session.run("tclosure(Containment)")
    assert closure == transitive_closure(direct)
    chr22_loci = {edge.project("part") for edge in closure
                  if edge.project("contains") == "chr22"}
    print(f"  direct containment edges: {len(direct)}; after closure: {len(closure)}")
    print(f"  chr22 transitively contains {len(chr22_loci)} named map objects "
          f"(bands and loci)")

    print("\n== 4. nest / unnest vs the keyword-inversion comprehension ==")
    flat = session.run(
        r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- Publications, \k <- kk}")
    nested = nest(flat, "titles", "keyword")
    inverted = session.run(
        r"{[keyword = k, titles = {x.title | \x <- Publications, k <- x.keywd}] |"
        r" \y <- Publications, \k <- y.keywd}")
    by_nest = {row.project("keyword"): CSet(t.project("title") for t in row.project("titles"))
               for row in nested}
    by_comprehension = {row.project("keyword"): row.project("titles") for row in inverted}
    print(f"  keywords: {len(by_nest)}; nest() agrees with the comprehension: "
          f"{by_nest == by_comprehension}")
    print(f"  unnest(nest(flat)) == flat: {unnest(nested, 'titles') == flat}")


if __name__ == "__main__":
    main()
