"""Data transformation between formats: ASN.1 → relational / tab-delimited / ACE / FASTA.

Section 1 of the paper: "Effective query mechanisms for such data ... must not
only be able to extract data, but transform data from one format to another
... for storage in archival databases, ... for structuring data so that it can
be used by other software ..., and for data integration."

This example uses one CPL session over four source kinds (relational GDB,
ASN.1 GenBank, ACE, BLAST-style similarity search) and shows the standard
transformations:

1. ASN.1 Seq-entries flattened into a relational shape and exported as a
   tab-delimited file (readable by perl/awk-era tooling);
2. the same entries emitted as ``.ace`` bulk-load text for ACEDB;
3. GDB + ACE + GenBank joined into one integrated report;
4. a BLAST-style search driven from CPL, its hits re-ranked and reformatted.

Run with::

    python examples/data_integration.py
"""

from repro import Session
from repro.ace import dump_ace, parse_ace
from repro.bio.chromosome22 import build_chromosome22
from repro.formats.fasta import write_fasta
from repro.kleisli.drivers import AceDriver, BlastDriver, EntrezDriver, RelationalDriver


def main() -> None:
    data = build_chromosome22(locus_count=80)
    session = Session()
    session.register_driver(RelationalDriver("GDB", data.gdb))
    session.register_driver(EntrezDriver("GenBank", data.genbank))
    session.register_driver(AceDriver("ACE22", data.acedb))
    library = {record.identifier: record.sequence for record in data.fasta_library}
    session.register_driver(BlastDriver("BLAST", library))

    print("== 1. ASN.1 -> relational shape -> tab-delimited export ==")
    flat = session.run('''
        {[accession = e.accession, organism = e.organism, length = e.seq.length,
          title = e.title] |
          \\e <- GenBank([db = "na", select = "chromosome 22"])}
    ''')
    tabular = session.print_tabular(flat)
    print(tabular.splitlines()[0])
    print("\n".join(tabular.splitlines()[1:4]))
    print(f"... {len(flat)} rows exported\n")

    print("== 2. ASN.1 -> ACE bulk-load text ==")
    ace_records = session.run('''
        {[class = "Sequence", name = e.accession, Organism = e.organism,
          Length = e.seq.length, Title = e.title] |
          \\e <- GenBank([db = "na", select = "chromosome 22"])}
    ''')
    ace_text = dump_ace(ace_records)
    print("\n".join(ace_text.splitlines()[:6]))
    print(f"... {len(parse_ace(ace_text))} ACE objects generated\n")

    print("== 3. integrated report across GDB, ACE and GenBank ==")
    report = session.run('''
        {[locus = l.locus_symbol,
          contig = (!(a.Contig)).name,
          clones = {c.name | \\c <- ACE22-Class("Clone"),
                             c.Locus = [class = "Locus", name = l.locus_symbol]},
          sequences = {[acc = e.accession, len = e.seq.length] |
                       \\e <- GenBank([db = "na", select = "chromosome 22"]),
                       e.accession = "M" ^ string_of_int(81000 + l.locus_id)}] |
          [locus_symbol = \\s, locus_id = \\i, chromosome = "22", ...] <- GDB-Tab("locus"),
          \\l <- {[locus_symbol = s, locus_id = i]},
          \\a <- ACE22-Class("Locus"), a.name = s}
    ''')
    rows = sorted(report, key=lambda row: row.project("locus"))
    for row in rows[:5]:
        print(f"  {row.project('locus'):>10}  contig={row.project('contig')}  "
              f"clones={len(row.project('clones'))}  sequences={len(row.project('sequences'))}")
    print(f"  ... {len(rows)} integrated locus reports\n")

    print("== 4. BLAST-style similarity search driven from CPL ==")
    query_record = data.fasta_library[0]
    hits = session.run(f'''
        {{[subject = h.subject, score = h.score, identity = h.identity] |
          \\h <- BLAST([query = "{query_record.sequence}", min_score = 40]),
          h.subject <> "{query_record.identifier}"}}
    ''')
    print(f"query {query_record.identifier}: {len(hits)} non-self hits")
    print(session.print_tabular(hits).splitlines()[0])
    for line in session.print_tabular(hits).splitlines()[1:4]:
        print(line)

    print("\n== FASTA export of the chromosome-22 human entries ==")
    fasta_rows = session.run('''
        {[identifier = e.accession, description = e.title, sequence = e.seq.data] |
          \\e <- GenBank([db = "na", select = "chromosome 22"])}
    ''')
    fasta_text = write_fasta(sorted(fasta_rows, key=lambda r: r.project("identifier")))
    print("\n".join(fasta_text.splitlines()[:3]))
    print(f"... {len(fasta_rows)} FASTA records written")


if __name__ == "__main__":
    main()
