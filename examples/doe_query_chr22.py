"""The "impossible" DOE query (Section 3 of the paper / Figure 1).

*Find information on the known DNA sequences on human chromosome 22, as well
as information on homologous sequences from other organisms.*

The script builds the Center-for-Chromosome-22 scenario (a GDB-shaped
relational database, a GenBank-shaped Entrez server with precomputed
similarity links, an ACE database, a FASTA library), registers the drivers
with a CPL session, and then runs the paper's three definitions:

* ``Loci22``   — accession numbers of known chromosome-22 DNA sequences (GDB);
* ``ASN-IDs``  — Entrez sequence ids for an accession number (GenBank + path);
* the DOE query itself, whose answer is a *nested relation* pairing each locus
  with its non-human homologues (via NA-Links).

It also shows the optimizer at work: the three-generator Loci22 comprehension
is shipped to the relational driver as a single SQL query.

Run with::

    python examples/doe_query_chr22.py [--loci 120] [--band 22q11.2]
"""

import argparse

from repro import Session
from repro.bio.chromosome22 import build_chromosome22
from repro.kleisli.drivers import EntrezDriver, RelationalDriver

LOCI22 = '''
define Loci22 == {[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''

ASN_IDS = '''
define ASN-IDs == \\accession =>
  GenBank([db = "na", select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])
'''

DOE_QUERY = ('{[locus = locus, homologs = NA-Links(uid)] |'
             ' \\locus <- Loci22, \\uid <- ASN-IDs(locus.genbank-ref)}')

BAND_VIEW = '''
define loci-in-band == \\band =>
  {[locus-symbol = x, band = b, genbank-ref = y] |
    [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
    [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
    [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, loc_cyto_band_start = \\b, ...]
        <- GDB-Tab("locus_cyto_location"),
    b = band}
'''


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loci", type=int, default=120,
                        help="number of GDB loci to generate")
    parser.add_argument("--band", default="22q11.2",
                        help="cytogenetic band for the parameterised Figure-1 view")
    arguments = parser.parse_args()

    print(f"Building the chromosome-22 scenario ({arguments.loci} loci)...")
    data = build_chromosome22(locus_count=arguments.loci)

    session = Session()
    session.register_driver(RelationalDriver("GDB", data.gdb))
    session.register_driver(EntrezDriver("GenBank", data.genbank))
    session.run(LOCI22)
    session.run(ASN_IDS)
    session.run(BAND_VIEW)

    print("\n== Loci22: known DNA sequences on chromosome 22 (from GDB) ==")
    loci22 = session.query("Loci22")
    print(f"{len(loci22.value)} loci with GenBank references")
    print("Pushed-down plan:", loci22.optimized.pretty()[:200], "...")
    print("Scan requests issued:", session.engine.last_eval_statistics.scan_requests)

    print("\n== The DOE query: loci with their non-human homologues ==")
    answer = session.run(DOE_QUERY)
    rows = sorted(answer, key=lambda row: row.project("locus").project("locus-symbol"))
    for row in rows[:8]:
        locus = row.project("locus")
        homologs = row.project("homologs")
        organisms = sorted({link.project("organism") for link in homologs})
        print(f"  {locus.project('locus-symbol'):>10}  {locus.project('genbank-ref')}: "
              f"{len(homologs)} homologs  {organisms}")
    print(f"  ... {len(rows)} loci in total")

    band = arguments.band
    band_rows = session.run(f'loci-in-band("{band}")')
    if not len(band_rows):
        # Pick a band that actually has loci in this synthetic dataset.
        bands = session.run('{c.loc_cyto_band_start | \\c <- GDB-Tab("locus_cyto_location"),'
                            ' c.loc_cyto_chrom_num = "22"}')
        band = sorted(bands)[0]
        band_rows = session.run(f'loci-in-band("{band}")')
    print(f"\n== Figure-1 style parameterised view: loci in band {band} ==")
    print(session.print_tabular(band_rows) or "(no loci in that band)")

    html = session.print_html(answer, title="Chromosome 22 sequences and homologs")
    print(f"\nHTML rendering of the nested answer: {len(html)} characters "
          "(session.print_html gives the Mosaic-era view)")


if __name__ == "__main__":
    main()
