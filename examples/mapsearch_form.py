"""The Figure-1 map-search view: a parameterised multidatabase user view.

The paper's footnote points at a Mosaic form
(``http://agave.humgen.upenn.edu/cgi-bin/cpl/mapsearch1.html``) that lets a
biologist pick a chromosome and a cytogenetic band ("valid bands are listed")
and get back the DOE query's nested answer.  This example rebuilds that
screen with the :mod:`repro.views` layer:

1. wire a session with the GDB and GenBank drivers (the synthetic
   chromosome-22 scenario),
2. register the ``mapsearch1`` view with the CGI-style gateway,
3. render the HTML form (Figure 1),
4. submit the form for the whole chromosome and for one band, and
5. show how validation errors are routed back to the form.

Run with::

    python examples/mapsearch_form.py [--loci 80] [--save-html DIR]
"""

import argparse
import pathlib

from repro.views import ViewGateway, ViewRegistry, build_mapsearch_view, mapsearch_session


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loci", type=int, default=80,
                        help="number of GDB loci to generate")
    parser.add_argument("--save-html", metavar="DIR", default=None,
                        help="write the form and result pages to DIR as .html files")
    arguments = parser.parse_args()

    print(f"Building the chromosome-22 scenario ({arguments.loci} loci)...")
    session, _ = mapsearch_session(locus_count=arguments.loci)
    registry = ViewRegistry()
    registry.register(build_mapsearch_view())
    gateway = ViewGateway(session, registry)

    print("\n== the view index (what the genome centre's site would list) ==")
    index = gateway.index()
    print(f"status {index.status}, {len(index.body)} characters of HTML")

    print("\n== the Figure-1 form ==")
    form = gateway.handle("mapsearch1.html")
    for line in form.body.splitlines():
        if "<select" in line or "Cytogenetic" in line or "Chromosome" in line:
            print(" ", line.strip()[:100])

    print("\n== submitting: chromosome 22, any band ==")
    answer = gateway.submit("mapsearch1", {"chromosome": "22", "band": "any"})
    rows = sorted(answer.value, key=lambda row: row.project("locus-symbol"))
    print(f"status {answer.status}: {len(rows)} loci with GenBank references")
    for row in rows[:6]:
        homologs = row.project("homologs")
        print(f"  {row.project('locus-symbol'):>10}  band {row.project('band'):<9} "
              f"{row.project('genbank-ref')}  {len(homologs)} homologs")

    bands = sorted({row.project("band") for row in rows})
    band = bands[0] if bands else "22q11.2"
    print(f"\n== submitting: chromosome 22, band {band} only ==")
    restricted = gateway.submit("mapsearch1", {"chromosome": "22", "band": band})
    print(f"status {restricted.status}: {len(restricted.value)} loci in {band}")

    print("\n== submitting an invalid chromosome (validation re-renders the form) ==")
    rejected = gateway.submit("mapsearch1", {"chromosome": "99"})
    print(f"status {rejected.status}; the form carries the error message: "
          f"{'must be one of the listed values' in rejected.body}")

    if arguments.save_html:
        directory = pathlib.Path(arguments.save_html)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "index.html").write_text(index.body)
        (directory / "mapsearch1_form.html").write_text(form.body)
        (directory / "mapsearch1_result.html").write_text(answer.body)
        print(f"\nHTML pages written to {directory}/")


if __name__ == "__main__":
    main()
