"""The Kleisli optimizer: the paper's rule sets wired into one pipeline.

Stages (Section 4), in the order the pipeline applies them:

1. **Driver introduction** — applications of registered driver functions become
   :class:`~repro.core.nrc.ast.Scan` nodes the later stages can rewrite.
2. **Monadic normalisation** — R1 vertical fusion, R2 horizontal fusion,
   R3 filter promotion, R4 projection reduction, plus the monad laws.
3. **Pushdown** — selections, projections and joins migrate into SQL for
   drivers that speak SQL; projections and variant selections migrate into
   path expressions for the ASN.1 driver.
4. **Local joins** — remaining cross-source nested loops become blocked or
   indexed blocked nested-loop joins, guided by statistics.
5. **Caching** — outer-independent inner subqueries are wrapped in ``Cached``.
6. **Parallelism** — inner loops that issue remote requests become bounded
   parallel loops.
"""

from .pipeline import OptimizerPipeline, OptimizerConfig
from .introduction import ScanSpec, make_introduction_rule_set
from .pushdown_sql import make_sql_pushdown_rule_set
from .pushdown_path import make_path_pushdown_rule_set
from .joins import make_join_rule_set
from .caching import make_caching_rule_set
from .parallel import ParallelExt, make_parallel_rule_set
from .projections import count_projection_sites, homogeneous_projection

__all__ = [
    "OptimizerPipeline", "OptimizerConfig",
    "ScanSpec", "make_introduction_rule_set",
    "make_sql_pushdown_rule_set", "make_path_pushdown_rule_set",
    "make_join_rule_set", "make_caching_rule_set",
    "ParallelExt", "make_parallel_rule_set",
    "count_projection_sites", "homogeneous_projection",
]
