"""The homogeneous-projection optimization (Remy records).

"If the set we are mapping over is homogeneous, then all its records share the
same Remy directory.  Therefore, we can compute the offset only for the first
record and this offset can be reused for the remaining records."

The machinery itself lives in :mod:`repro.core.records`
(:class:`~repro.core.records.ProjectionCursor`); this module contributes the
pieces the optimizer and the benchmarks need:

* :func:`count_projection_sites` — static analysis of how many field
  projections a loop body performs on its loop variable, which is what decides
  whether the fast path is worth engaging;
* :func:`homogeneous_projection` — execute a mapping over a record collection
  using one cursor per projected field (the optimized loop the paper compares
  against plain Remy projection in experiment E1);
* :func:`is_homogeneous` — runtime check that a collection of records shares a
  single directory (the condition the fast path relies on; relational and
  ASN.1 driver results always satisfy it).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from ..records import ProjectionCursor, Record
from ..values import CSet, iter_collection, make_collection
from ..nrc import ast as A

__all__ = ["count_projection_sites", "homogeneous_projection", "is_homogeneous"]


def count_projection_sites(body: A.Expr, var: str) -> Dict[str, int]:
    """Count, per field label, the projections ``var.label`` occurring in ``body``."""
    counts: Dict[str, int] = {}
    _count(body, var, counts)
    return counts


def _count(expr: A.Expr, var: str, counts: Dict[str, int]) -> None:
    if (isinstance(expr, A.Project) and isinstance(expr.expr, A.Var)
            and expr.expr.name == var):
        counts[expr.label] = counts.get(expr.label, 0) + 1
    if isinstance(expr, A.Ext) and expr.var == var:
        _count(expr.source, var, counts)
        return
    if isinstance(expr, A.Lam) and expr.param == var:
        return
    for child in expr.children():
        _count(child, var, counts)


def is_homogeneous(records: Iterable[Record]) -> bool:
    """True when every record shares the same (interned) directory."""
    directory = None
    for record in records:
        if not isinstance(record, Record):
            return False
        if directory is None:
            directory = record.directory
        elif record.directory is not directory:
            return False
    return True


def homogeneous_projection(records: Sequence[Record], labels: Sequence[str],
                           combine: Callable[..., object] = None,
                           kind: str = "set"):
    """Project ``labels`` from every record using shared cursors.

    ``combine`` receives the projected field values of one record and builds
    the output element; by default a record with the same labels is built.
    This is the loop the optimized system runs for a homogeneous input — the
    cursors amortise the directory lookups across the whole collection.
    """
    cursors = [ProjectionCursor(label) for label in labels]
    if combine is None:
        def combine(*values):
            return Record(dict(zip(labels, values)))
    elements: List[object] = []
    for record in records:
        elements.append(combine(*(cursor.project(record) for cursor in cursors)))
    return make_collection(kind, elements)
