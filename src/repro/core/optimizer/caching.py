"""Caching of inner subqueries.

"As the system is fully compositional, the inner relation in a join can
sometimes be a subquery.  To avoid recomputation, we have therefore introduced
an operator to cache the result of a subquery ... Rules to recognize when the
result of an inner subquery can be cached check that the subquery doesn't
depend on the outer relation."

The rule looks for loop sources (``Ext`` sources and ``Join`` inners) that

* do not mention **any** loop variable bound around them (independence check —
  dependence on any enclosing binder, not just the immediately enclosing one,
  would freeze the first value and silently change results),
* are not already cached, not trivially cheap, and
* actually cost something to recompute — they contain a :class:`Scan` (a
  driver round-trip) or a join,

and wraps them in :class:`~repro.core.nrc.ast.Cached`.

Because the independence check needs to know every binder in scope, this rule
set does not use the generic node-at-a-time traversal (a rule firing at an
inner node cannot see the binders above it); it overrides the rule-set pass
with a single scope-tracking walk from the root.
"""

from __future__ import annotations

from typing import Tuple

from ..nrc import ast as A
from ..nrc.rewrite import RewriteStats, Rule, RuleSet

__all__ = ["make_caching_rule_set", "is_expensive"]

_RULE_NAME = "cache-inner-subquery"


def is_expensive(expr: A.Expr) -> bool:
    """Does evaluating ``expr`` involve a driver round-trip or a join?"""
    if isinstance(expr, (A.Scan, A.Join)):
        return True
    return any(is_expensive(child) for child in expr.children())


def _cacheable(expr: A.Expr, scope: frozenset) -> bool:
    return (not isinstance(expr, (A.Cached, A.Var, A.Const))
            and not (A.free_variables(expr) & scope)
            and is_expensive(expr))


class _ScopedCachingRuleSet(RuleSet):
    """A rule set whose single pass tracks the binders in scope.

    The generic traversal applies rules node by node without knowing which
    loop variables are bound around the node, which is exactly the information
    the independence check needs; overriding ``_one_pass`` keeps the engine
    interface (and the stats/explain machinery) while making the walk sound.
    """

    def _one_pass(self, expr: A.Expr, stats: RewriteStats) -> Tuple[A.Expr, bool]:
        changed = False

        def note() -> None:
            nonlocal changed
            changed = True
            stats.note(_RULE_NAME)

        def walk(node: A.Expr, scope: frozenset, in_loop: bool) -> A.Expr:
            if isinstance(node, A.Ext):
                source = node.source
                # Caching only pays when the source can be evaluated more than
                # once, i.e. when this loop itself sits inside another loop.
                if in_loop and _cacheable(source, scope):
                    note()
                    source = A.Cached(source)
                else:
                    source = walk(source, scope, in_loop)
                body = walk(node.body, scope | {node.var}, True)
                return A.Ext(node.var, body, source, node.kind)
            if isinstance(node, A.Join):
                return _walk_join(node, scope, in_loop)
            if isinstance(node, A.Lam):
                # A function body may be invoked many times (e.g. mapped over a
                # collection), so anything inside it counts as "in a loop".
                return A.Lam(node.param, walk(node.body, scope | {node.param}, True))
            if isinstance(node, A.Let):
                return A.Let(node.var, walk(node.value, scope, in_loop),
                             walk(node.body, scope | {node.var}, in_loop))
            if isinstance(node, A.Case):
                branches = [A.CaseBranch(branch.tag, branch.var,
                                         walk(branch.body, scope | {branch.var}, in_loop))
                            for branch in node.branches]
                default = node.default
                if default is not None:
                    default = (default[0], walk(default[1], scope | {default[0]}, in_loop))
                return A.Case(walk(node.subject, scope, in_loop), branches, default)
            children = node.children()
            if not children:
                return node
            new_children = [walk(child, scope, in_loop) for child in children]
            if all(new is old for new, old in zip(new_children, children)):
                return node
            return node.rebuild(new_children)

        def _walk_join(node: A.Join, scope: frozenset, in_loop: bool) -> A.Expr:
            binders = {node.outer_var, node.inner_var}
            inner = node.inner
            # A blocked join re-evaluates its inner once per outer block even at
            # the top level, so caching applies regardless of ``in_loop`` — but
            # the inner must not depend on either join variable nor on any
            # enclosing loop variable.
            if _cacheable(inner, scope | binders):
                note()
                inner = A.Cached(inner)
            else:
                inner = walk(inner, scope | {node.outer_var}, True)
            outer = walk(node.outer, scope, in_loop)
            condition = None if node.condition is None else walk(node.condition,
                                                                 scope | binders, True)
            body = walk(node.body, scope | binders, True)
            outer_key = None if node.outer_key is None else walk(node.outer_key,
                                                                 scope | {node.outer_var}, True)
            inner_key = None if node.inner_key is None else walk(node.inner_key,
                                                                 scope | {node.inner_var}, True)
            return A.Join(node.method, node.outer_var, outer, node.inner_var, inner,
                          condition, body, outer_key, inner_key, node.kind, node.block_size)

        result = walk(expr, frozenset(), False)
        return result, changed


def make_caching_rule_set() -> RuleSet:
    """Build the subquery caching rule set (scope-aware; see module docstring)."""
    # The Rule object documents the rewrite for explain output; the subclass's
    # scope-tracking pass is what actually applies it.
    rule = Rule(_RULE_NAME, lambda expr: None,
                "cache inner subqueries that do not depend on any enclosing loop variable")
    return _ScopedCachingRuleSet("caching", [rule], direction="top-down", max_iterations=3)
