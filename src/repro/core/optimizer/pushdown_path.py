"""Pushdown of projections and variant selections into ASN.1 path expressions.

The Entrez driver cannot evaluate queries, but it *can* apply a path expression
while it parses an entry, pruning everything off the path.  The paper notes
that "general rewrite rules for the translation of CPL queries to path
expressions are not available" — their system migrates the simple cases, and
so does this rule set:

* ``U{ {x.label} | \\x <- Scan(entrez, select=...) }`` — a comprehension that
  only projects a field from each retrieved entry — extends the scan's path
  with ``.label`` and disappears;
* chains of projections (``x.seq.id``) extend the path with several steps;
* a trailing variant selection written as a ``case`` with a single branch and
  an empty default extends it with ``..tag``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Mapping, Optional, Tuple

from ..nrc import ast as A
from ..nrc.rewrite import Rule, RuleSet

__all__ = ["make_path_pushdown_rule_set"]

_DEFAULT_ROOT = "Entry"


def make_path_pushdown_rule_set(capabilities: Mapping[str, FrozenSet[str]]) -> RuleSet:
    """Build the path pushdown rule set for drivers whose capabilities include 'path'."""

    def path_capable(driver: str) -> bool:
        return "path" in capabilities.get(driver, frozenset())

    def push_path(expr: A.Expr) -> Optional[A.Expr]:
        if not isinstance(expr, A.Ext) or expr.kind != "set":
            return None
        source = expr.source
        if not isinstance(source, A.Scan) or not path_capable(source.driver):
            return None
        if "select" not in source.request and "select" not in source.args:
            return None
        steps = _extract_steps(expr.body, expr.var)
        if not steps:
            return None
        existing = str(source.request.get("path", "")) or _DEFAULT_ROOT
        new_path = existing + "".join(steps)
        request = dict(source.request)
        request["path"] = new_path
        return source.with_request(request)

    rule = Rule("asn1-path-pushdown", push_path,
                "migrate projections / variant selections into the driver's path expression")
    return RuleSet("path-pushdown", [rule], direction="top-down", max_iterations=3)


def _extract_steps(body: A.Expr, var: str) -> Optional[List[str]]:
    """Return path steps when the body only projects/extracts from the loop variable.

    Recognised shapes (after monadic normalisation):

    * ``Singleton(projection-chain over Var(var))`` → ``.a.b...``
    * ``Singleton(case of projection-chain with a single branch whose body is
      the branch variable and whose default is ignored)`` — not produced by the
      current desugarer, so variant pushdown is driven by the case-in-body form
      below;
    * ``Case(projection-chain, [tag -> Singleton(Var payload)], default Empty)``
      → ``.a.b..tag``.
    """
    if isinstance(body, A.Singleton) and body.kind == "set":
        chain = _projection_chain(body.expr, var)
        if chain is not None:
            return [f".{label}" for label in chain]
        return None
    if isinstance(body, A.Case):
        chain = _projection_chain(body.subject, var)
        if chain is None or len(body.branches) != 1:
            return None
        branch = body.branches[0]
        if body.default is None or not isinstance(body.default[1], A.Empty):
            return None
        if not (isinstance(branch.body, A.Singleton)
                and isinstance(branch.body.expr, A.Var)
                and branch.body.expr.name == branch.var):
            return None
        return [f".{label}" for label in chain] + [f"..{branch.tag}"]
    return None


def _projection_chain(expr: A.Expr, var: str) -> Optional[List[str]]:
    """``x.a.b.c`` → ["a", "b", "c"]; None when the expression is anything else."""
    labels: List[str] = []
    current = expr
    while isinstance(current, A.Project):
        labels.append(current.label)
        current = current.expr
    if isinstance(current, A.Var) and current.name == var and labels:
        return list(reversed(labels))
    return None
