"""Driver introduction: turn driver-function applications into Scan nodes.

When a session registers a driver, each of the driver's CPL functions (``GDB``,
``GDB-Tab``, ``GenBank``, ``NA-Links``, ...) is described by a
:class:`ScanSpec`.  The introduction rule set rewrites::

    Apply(Var("GDB-Tab"), Const("locus"))
        -->  Scan("GDB", {"table": "locus"})

    Apply(Var("GenBank"), RecordExpr{db = "na", select = e, path = "..."})
        -->  Scan("GenBank", {"db": "na", "path": "..."}, args={"select": e})

Constant argument parts move into the Scan's request (visible to the pushdown
rules); computed parts stay as ``args`` expressions evaluated at run time.
Applications whose shape the rule does not recognise are left alone — the
session also binds the driver functions as ordinary callables, so such calls
still evaluate, they just are not optimizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..nrc import ast as A
from ..nrc.rewrite import Rule, RuleSet

__all__ = ["ScanSpec", "make_introduction_rule_set"]


@dataclass
class ScanSpec:
    """Compile-time description of one driver function."""

    driver: str
    request_template: Dict[str, object] = field(default_factory=dict)
    argument_key: Optional[str] = None
    argument_is_record: bool = False
    result_kind: str = "set"


def make_introduction_rule_set(registry: Mapping[str, ScanSpec]) -> RuleSet:
    """Build the introduction rule set for the given function registry."""

    def introduce(expr: A.Expr) -> Optional[A.Expr]:
        if not isinstance(expr, A.Apply):
            return None
        func = expr.func
        if not isinstance(func, A.Var) or func.name not in registry:
            return None
        spec = registry[func.name]
        request = dict(spec.request_template)
        args: Dict[str, A.Expr] = {}
        argument = expr.arg

        if spec.argument_is_record:
            if not isinstance(argument, A.RecordExpr):
                return None
            for label, value in argument.fields.items():
                if isinstance(value, A.Const):
                    request[label] = value.value
                else:
                    args[label] = value
        elif spec.argument_key is not None:
            if isinstance(argument, A.Const):
                request[spec.argument_key] = argument.value
            else:
                args[spec.argument_key] = argument
        return A.Scan(spec.driver, request, args, spec.result_kind)

    rule = Rule("driver-introduction", introduce,
                "replace applications of registered driver functions with Scan nodes")
    return RuleSet("introduction", [rule], direction="bottom-up", max_iterations=5)
