"""Pushdown of selections, projections and joins into SQL-capable drivers.

This is the optimization behind the paper's Loci22 example: a CPL query written
as three generators over ``GDB-Tab`` table scans joined by equality conditions
"appears to send three queries to the Sybase server and perform the join
within CPL", but the optimizer "would reconstruct it ... resulting in a single
SQL query being shipped".

Two rules implement it:

* **sql-join-pushdown** — when a whole comprehension block (generators over
  table scans of one SQL driver, conjunctive comparison filters, a record or
  single-variable head) is recognised, the block collapses into one
  ``Scan({"query": "select ..."})``.
* **sql-select-pushdown** — otherwise, per-generator constant comparisons move
  into the scan's ``where`` list and the columns actually used move into its
  ``columns`` list, so at least selections and projections run on the server.

The paper (and [42]) prove any subquery not involving nested relations or
powerful operators can be pushed; these rules cover the conjunctive core of
that class, which is what the paper's examples exercise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..nrc import ast as A
from ..nrc.rewrite import Rule, RuleSet

__all__ = ["make_sql_pushdown_rule_set", "generate_sql"]

_COMPARISON_PRIMS = {"eq": "=", "neq": "<>", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def make_sql_pushdown_rule_set(capabilities: Mapping[str, FrozenSet[str]]) -> RuleSet:
    """Build the SQL pushdown rule set for drivers whose capabilities include 'sql'."""

    def sql_capable(driver: str) -> bool:
        return "sql" in capabilities.get(driver, frozenset())

    def join_pushdown(expr: A.Expr) -> Optional[A.Expr]:
        return _try_full_pushdown(expr, sql_capable)

    def select_pushdown(expr: A.Expr) -> Optional[A.Expr]:
        return _try_per_scan_pushdown(expr, sql_capable)

    rules = [
        Rule("sql-join-pushdown", join_pushdown,
             "collapse a conjunctive comprehension over one SQL driver into a single query"),
        Rule("sql-select-pushdown", select_pushdown,
             "move per-table selections and projections into the driver request"),
    ]
    return RuleSet("sql-pushdown", rules, direction="top-down", max_iterations=4)


# ---------------------------------------------------------------------------
# Decomposition of a normalised comprehension block
# ---------------------------------------------------------------------------

def _decompose(expr: A.Expr):
    """Split a normalised comprehension into (generators, filters, head).

    Returns ``None`` when the expression does not have the canonical
    Ext / If / Singleton shape produced by desugaring + monadic normalisation.
    """
    generators: List[Tuple[str, A.Expr]] = []
    filters: List[A.Expr] = []
    current = expr
    while True:
        if isinstance(current, A.Ext) and current.kind == "set":
            generators.append((current.var, current.source))
            current = current.body
            continue
        if (isinstance(current, A.IfThenElse) and isinstance(current.else_branch, A.Empty)):
            filters.append(current.cond)
            current = current.then_branch
            continue
        if isinstance(current, A.Singleton) and current.kind == "set":
            return generators, filters, current.expr
        return None


def _try_full_pushdown(expr: A.Expr, sql_capable) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext) or expr.kind != "set":
        return None
    decomposed = _decompose(expr)
    if decomposed is None:
        return None
    generators, filters, head = decomposed
    if len(generators) < 1:
        return None

    driver: Optional[str] = None
    tables: Dict[str, Tuple[str, str]] = {}  # var -> (table, alias)
    for index, (var, source) in enumerate(generators):
        if not isinstance(source, A.Scan) or source.args:
            return None
        if "table" not in source.request or "query" in source.request:
            return None
        if source.request.get("where") or source.request.get("columns"):
            return None
        if not sql_capable(source.driver):
            return None
        if driver is None:
            driver = source.driver
        elif driver != source.driver:
            return None
        tables[var] = (str(source.request["table"]), f"t{index}")

    conditions: List[str] = []
    for condition in filters:
        rendered = _render_condition(condition, tables)
        if rendered is None:
            return None
        conditions.append(rendered)

    select_list = _render_head(head, tables)
    if select_list is None:
        return None

    sql = generate_sql(select_list, tables, conditions)
    return A.Scan(driver, {"query": sql}, kind="set")


def generate_sql(select_list: str, tables: Mapping[str, Tuple[str, str]],
                 conditions: Sequence[str]) -> str:
    """Assemble the final SELECT statement text."""
    from_clause = ", ".join(f"{table} {alias}" for table, alias in tables.values())
    sql = f"select {select_list} from {from_clause}"
    if conditions:
        sql += " where " + " and ".join(conditions)
    return sql


def _render_head(head: A.Expr, tables: Mapping[str, Tuple[str, str]]) -> Optional[str]:
    if isinstance(head, A.Var) and head.name in tables:
        _, alias = tables[head.name]
        return f"{alias}.*"
    if isinstance(head, A.RecordExpr):
        items = []
        for label, value in head.fields.items():
            column = _render_column(value, tables)
            if column is None:
                return None
            items.append(f"{column} {label}" if column.split(".")[-1] != label else column)
        return ", ".join(items)
    return None


def _render_column(expr: A.Expr, tables: Mapping[str, Tuple[str, str]]) -> Optional[str]:
    if (isinstance(expr, A.Project) and isinstance(expr.expr, A.Var)
            and expr.expr.name in tables):
        _, alias = tables[expr.expr.name]
        return f"{alias}.{expr.label}"
    return None


def _render_condition(condition: A.Expr, tables: Mapping[str, Tuple[str, str]]) -> Optional[str]:
    if not isinstance(condition, A.PrimCall) or condition.name not in _COMPARISON_PRIMS:
        return None
    if len(condition.args) != 2:
        return None
    left = _render_operand(condition.args[0], tables)
    right = _render_operand(condition.args[1], tables)
    if left is None or right is None:
        return None
    return f"{left} {_COMPARISON_PRIMS[condition.name]} {right}"


def _render_operand(expr: A.Expr, tables: Mapping[str, Tuple[str, str]]) -> Optional[str]:
    column = _render_column(expr, tables)
    if column is not None:
        return column
    if isinstance(expr, A.Const):
        return _render_literal(expr.value)
    return None


def _render_literal(value: object) -> Optional[str]:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return repr(value)
    return None


# ---------------------------------------------------------------------------
# Per-scan (partial) pushdown
# ---------------------------------------------------------------------------

def _try_per_scan_pushdown(expr: A.Expr, sql_capable) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext) or expr.kind != "set":
        return None
    source = expr.source
    if not isinstance(source, A.Scan) or source.args or not sql_capable(source.driver):
        return None
    if "table" not in source.request or "query" in source.request:
        return None
    if "where" in source.request or "columns" in source.request:
        return None

    var = expr.var
    body = expr.body

    # (a) selection pushdown: constant comparisons on the loop variable in the
    # immediate filter chain under this generator.
    pushable: List[Dict[str, object]] = []
    def strip_filters(node: A.Expr) -> A.Expr:
        if (isinstance(node, A.IfThenElse) and isinstance(node.else_branch, A.Empty)
                and node.else_branch.kind == expr.kind):
            condition = _constant_comparison(node.cond, var)
            if condition is not None:
                pushable.append(condition)
                return strip_filters(node.then_branch)
            return A.IfThenElse(node.cond, strip_filters(node.then_branch), node.else_branch)
        return node

    new_body = strip_filters(body)

    # (b) projection pushdown: when every use of the variable is a field
    # projection, ask the server for just those columns.
    columns = _used_columns(new_body, var)

    if not pushable and columns is None:
        return None
    request = dict(source.request)
    if pushable:
        request["where"] = pushable
    if columns:
        request["columns"] = sorted(columns)
    return A.Ext(var, new_body, source.with_request(request), expr.kind)


def _constant_comparison(condition: A.Expr, var: str) -> Optional[Dict[str, object]]:
    if not isinstance(condition, A.PrimCall) or condition.name not in _COMPARISON_PRIMS:
        return None
    if len(condition.args) != 2:
        return None
    left, right = condition.args
    for column_side, const_side, flip in ((left, right, False), (right, left, True)):
        if (isinstance(column_side, A.Project) and isinstance(column_side.expr, A.Var)
                and column_side.expr.name == var and isinstance(const_side, A.Const)
                and isinstance(const_side.value, (str, int, float))
                and not isinstance(const_side.value, bool)):
            op = _COMPARISON_PRIMS[condition.name]
            if flip:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return {"column": column_side.label, "op": op, "value": const_side.value}
    return None


def _used_columns(expr: A.Expr, var: str) -> Optional[set]:
    """Columns of ``var`` used in ``expr``; None when ``var`` is used whole."""
    columns: set = set()
    ok = _collect_columns(expr, var, columns)
    if not ok:
        return None
    return columns if columns else None


def _collect_columns(expr: A.Expr, var: str, columns: set) -> bool:
    if isinstance(expr, A.Project) and isinstance(expr.expr, A.Var) and expr.expr.name == var:
        columns.add(expr.label)
        return True
    if isinstance(expr, A.Var) and expr.name == var:
        return False
    if isinstance(expr, (A.Lam, A.Ext, A.Let)) :
        # Respect shadowing of the variable by inner binders.
        if isinstance(expr, A.Lam) and expr.param == var:
            return True
        if isinstance(expr, A.Ext) and expr.var == var:
            return _collect_columns(expr.source, var, columns)
        if isinstance(expr, A.Let) and expr.var == var:
            return _collect_columns(expr.value, var, columns)
    for child in expr.children():
        if not _collect_columns(child, var, columns):
            return False
    return True
