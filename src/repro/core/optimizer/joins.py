"""Local join operators and the rule set that introduces them.

"The most important of these [non-monadic optimizations] are dedicated to
improving the performance of joins across data sources, that is, joins that
cannot be moved to database servers and must be performed locally.  To do
this, two join operators have been added as additional primitives ...: the
blocked nested-loop join, and the indexed blocked-nested-loop join where
indices are built on-the-fly ... The join rule-set is dedicated to recognizing
under what conditions to apply which join operator."

The rule matches the canonical two-generator nested loop

    U{ ... U{ if cond then {head} else {} | \\y <- inner } ... | \\x <- outer }

where ``inner`` does not depend on ``x``.  If one conjunct of ``cond`` is an
equality whose sides depend on ``x`` only and ``y`` only, the indexed join is
chosen (the equality becomes the hash key); otherwise the blocked nested-loop
join is used.  Statistics gate the rewrite: tiny inners are left alone.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..nrc import ast as A
from ..nrc.rewrite import Rule, RuleSet

__all__ = ["make_join_rule_set"]


def make_join_rule_set(cardinality_of: Optional[Callable[[A.Expr], int]] = None,
                       minimum_inner_size: int = 8,
                       block_size: int = 256,
                       streaming: bool = False,
                       block_size_for: Optional[
                           Callable[[A.Expr, A.Expr], Optional[int]]] = None
                       ) -> RuleSet:
    """Build the join rule set.

    ``cardinality_of`` maps a source expression to an estimated size (the
    engine wires this to the statically registered statistics); when it is
    missing every candidate is rewritten.

    ``streaming`` is the pipelined-execution hint: blocked joins are emitted
    with a block size of 1, so the streamed lowering materializes the inner
    side once and probes (and yields) per outer *element* instead of per
    block — the indexed join already probes per element, so under the hint
    every join shape keeps time-to-first-result at one outer element plus
    the build side.  Eager execution is indifferent to the choice (the
    per-element probe evaluates the inner side once, never more than the
    per-block rescan does).

    ``block_size_for`` makes the blocked block size *cost-gated* instead of
    constant: called with the (outer, inner) source expressions, it returns
    a block size chosen from registered cardinalities and latencies (the
    planner's :meth:`~repro.core.planner.plan.QueryPlanner.join_block_size`)
    or ``None`` to keep ``block_size``.  The ``streaming`` hint *overrides*
    it — a pipelined plan needs per-element probing whatever the cost model
    says about rescans, so streamed joins stay at block 1.
    """
    blocked_block_size = 1 if streaming else block_size

    def choose_block(outer: A.Expr, inner: A.Expr) -> int:
        if streaming or block_size_for is None:
            return blocked_block_size
        chosen = block_size_for(outer, inner)
        return blocked_block_size if chosen is None else max(1, chosen)

    def estimate(source: A.Expr) -> int:
        if cardinality_of is None:
            return minimum_inner_size
        return cardinality_of(source)

    def introduce_join(expr: A.Expr) -> Optional[A.Expr]:
        if not isinstance(expr, A.Ext) or expr.kind != "set":
            return None
        inner_ext, prefix_filters = _find_inner_loop(expr.body)
        if inner_ext is None:
            return None
        if expr.var in A.free_variables(inner_ext.source):
            return None  # correlated inner loops stay nested (caching handles them)
        if estimate(inner_ext.source) < minimum_inner_size:
            return None
        conditions, head = _collect_conditions(inner_ext.body)
        if head is None:
            return None
        key_pair, residual = _split_equality(conditions, expr.var, inner_ext.var)
        residual_condition = _conjunction(residual)
        body = A.Singleton(head, expr.kind)
        # Re-apply any filters that sat between the two generators (they only
        # involve the outer variable, so they become part of the condition).
        if prefix_filters:
            outer_only = _conjunction(prefix_filters)
            residual_condition = (outer_only if residual_condition is None
                                  else A.PrimCall("and", [outer_only, residual_condition]))
        if key_pair is not None:
            outer_key, inner_key = key_pair
            return A.Join("indexed", expr.var, expr.source, inner_ext.var, inner_ext.source,
                          residual_condition, body, outer_key, inner_key, expr.kind,
                          block_size)
        return A.Join("blocked", expr.var, expr.source, inner_ext.var, inner_ext.source,
                      residual_condition, body, None, None, expr.kind,
                      choose_block(expr.source, inner_ext.source))

    rule = Rule("local-join", introduce_join,
                "replace an uncorrelated nested loop with a blocked or indexed join operator")
    return RuleSet("joins", [rule], direction="top-down", max_iterations=3)


def _find_inner_loop(body: A.Expr) -> Tuple[Optional[A.Ext], List[A.Expr]]:
    """Walk the filter chain under the outer generator looking for the inner Ext."""
    filters: List[A.Expr] = []
    current = body
    while isinstance(current, A.IfThenElse) and isinstance(current.else_branch, A.Empty):
        filters.append(current.cond)
        current = current.then_branch
    if isinstance(current, A.Ext) and current.kind == "set":
        return current, filters
    return None, filters


def _collect_conditions(body: A.Expr) -> Tuple[List[A.Expr], Optional[A.Expr]]:
    """Collect the filter chain and final singleton head under the inner generator."""
    conditions: List[A.Expr] = []
    current = body
    while isinstance(current, A.IfThenElse) and isinstance(current.else_branch, A.Empty):
        conditions.append(current.cond)
        current = current.then_branch
    if isinstance(current, A.Singleton) and current.kind == "set":
        return conditions, current.expr
    return conditions, None


def _split_equality(conditions: List[A.Expr], outer_var: str, inner_var: str):
    """Find one equality usable as a hash key; return ((outer_key, inner_key), residual)."""
    key_pair = None
    residual: List[A.Expr] = []
    for condition in conditions:
        if key_pair is None and isinstance(condition, A.PrimCall) and condition.name == "eq" \
                and len(condition.args) == 2:
            left, right = condition.args
            left_free = A.free_variables(left)
            right_free = A.free_variables(right)
            if outer_var in left_free and inner_var not in left_free \
                    and inner_var in right_free and outer_var not in right_free:
                key_pair = (left, right)
                continue
            if inner_var in left_free and outer_var not in left_free \
                    and outer_var in right_free and inner_var not in right_free:
                key_pair = (right, left)
                continue
        residual.append(condition)
    return key_pair, residual


def _conjunction(conditions: List[A.Expr]) -> Optional[A.Expr]:
    if not conditions:
        return None
    result = conditions[0]
    for condition in conditions[1:]:
        result = A.PrimCall("and", [result, condition])
    return result
