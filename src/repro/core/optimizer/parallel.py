"""Laziness and bounded concurrency for remote inner loops.

"Rather than sequentially sending values of x to S, we should be able to
exploit the fact that many data servers can handle several requests
simultaneously ... We have therefore introduced a primitive that retrieves
elements from a collection in parallel and returns the union of the results
... Again, rules are introduced to recognize when a function accessing a
remote database appears in an inner loop.  In introducing such parallelism, we
must be careful ... the server S may only be able to handle a limited number
of requests at a time, say five."

* :class:`ParallelExt` is that primitive: an ``Ext`` whose body is evaluated
  for several source elements at once, bounded by ``max_workers`` (batching
  also bounds unconsumed replies, the second concern the paper raises).
* :func:`make_parallel_rule_set` recognises loops whose body issues a request
  to a *remote* driver with arguments depending on the loop variable and
  rewrites them into :class:`ParallelExt`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..nrc import ast as A
from ..nrc.eval import Environment, Evaluator
from ..nrc.eval import iterate_source as iter_source
from ..nrc.eval import materialise
from ..nrc.rewrite import Rule, RuleSet
from ..nrc.structural import register_kind_prover
from ..values import iter_collection, make_collection

__all__ = ["ParallelExt", "make_parallel_rule_set"]


class ParallelExt(A.Ext):
    """An ``Ext`` evaluated with bounded parallelism over the source elements.

    With ``adaptive`` set, the level of concurrency is not fixed at
    ``max_workers`` but adjusted to the server's observed capability by an
    :class:`~repro.kleisli.scheduler.AdaptiveScheduler` (the paper's [43]
    extension); ``max_workers`` then acts as the upper bound of the probe.
    """

    __slots__ = ("max_workers", "adaptive")

    def __init__(self, var: str, body: A.Expr, source: A.Expr, kind: str = "set",
                 max_workers: int = 5, adaptive: bool = False):
        super().__init__(var, body, source, kind)
        self.max_workers = max_workers
        self.adaptive = adaptive

    def rebuild(self, children):
        return ParallelExt(self.var, children[0], children[1], self.kind,
                           self.max_workers, self.adaptive)

    def _key(self):
        return super()._key() + (self.max_workers, self.adaptive)

    def fingerprint_extras(self):
        """Parameters the compiled loop bakes in beyond the Ext structure
        (consulted by :func:`repro.core.nrc.compile.term_fingerprint`)."""
        return (self.max_workers, self.adaptive)


# The kind proof dispatches on exact type, so ParallelExt must register its
# own prover (both its lowerings build the result with the declared kind,
# exactly like Ext) — without this, a Union over a parallelised operand
# would lose its streaming lowering.
register_kind_prover(ParallelExt)(lambda expr: expr.kind)


def _make_scheduler(max_workers: int, adaptive: bool,
                    initial_window: Optional[int] = None):
    from ...kleisli.scheduler import AdaptiveScheduler, BoundedScheduler  # avoids a cycle

    if adaptive:
        scheduler = AdaptiveScheduler(max_workers=max_workers)
        if initial_window is not None:
            # The planner's prefetch-window hint: start the adaptive window
            # at the plan's level (a known-slow server's bandwidth-delay
            # product) instead of probing up from one worker.
            scheduler.apply_plan_hint(initial_window)
        return scheduler
    return BoundedScheduler(max_workers=max_workers)


def _plan_window(context) -> Optional[int]:
    """The prefetch-window hint of the run's physical plan, if any."""
    plan = getattr(context, "physical_plan", None)
    return None if plan is None else plan.prefetch_window


def _run_parallel_loop(items: List[object], run_body, kind: str,
                       max_workers: int, adaptive: bool, statistics):
    """Shared ParallelExt execution: scheduler selection, fan-out, statistics.

    Both execution modes route through here (the interpreter dispatch and the
    compiled closure differ only in ``run_body``), so scheduler or accounting
    changes cannot diverge the modes.
    """
    scheduler = _make_scheduler(max_workers, adaptive)

    def run_one(item):
        return list(iter_collection(materialise(run_body(item))))

    try:
        results = scheduler.map(run_one, items)
    finally:
        # The scheduler's worker pool persists across batches within this
        # loop; release it (joining its threads) when the loop completes.
        scheduler.close()
    elements: List[object] = []
    for chunk in results:
        elements.extend(chunk)
    statistics.ext_iterations += len(items)
    statistics.note_intermediate(len(elements))
    return make_collection(kind, elements)


def _evaluate_parallel_ext(evaluator: Evaluator, expr: ParallelExt, env: Environment):
    """Evaluate the body for batches of source elements concurrently."""
    source = evaluator._eval(expr.source, env)
    items = list(iter_source(source))

    def run_body(item):
        return evaluator._eval(expr.body, env.child(expr.var, item))

    return _run_parallel_loop(items, run_body, expr.kind, expr.max_workers,
                              expr.adaptive, evaluator.context.statistics)


# Register the node with the evaluator's dispatch table.
Evaluator._DISPATCH[ParallelExt] = _evaluate_parallel_ext


# -- closure-compiler support -------------------------------------------------
#
# The compiler dispatches on exact node type, so without this registration a
# ParallelExt would fall back to the interpreter (correct but slower).  The
# compiled form keeps the scheduler semantics: bounded (or adaptive) workers,
# one frame copy per in-flight element so concurrent bodies never share
# mutable slots.

from ..nrc import compile as C  # noqa: E402  (needs ParallelExt defined above)


@C.register_compiler(ParallelExt)
def _compile_parallel_ext(expr: ParallelExt, scope, state):
    source_fn = C._compile(expr.source, scope, state)
    body_fn = C._compile(expr.body, scope + (expr.var,), state)
    kind = expr.kind
    max_workers = expr.max_workers
    adaptive = expr.adaptive

    def run(frame, context):
        source = source_fn(frame, context)
        items = list(iter_source(source))

        def run_body(item):
            # One frame copy per in-flight element: concurrent bodies never
            # share mutable slots.
            item_frame = list(frame)
            item_frame.append(item)
            return body_fn(item_frame, context)

        return _run_parallel_loop(items, run_body, kind, max_workers,
                                  adaptive, context.statistics)

    return run


@C.register_stream_compiler(ParallelExt)
def _stream_parallel_ext(expr: ParallelExt, scope, state):
    """Pull-based ParallelExt: a bounded prefetcher over the source stream.

    A sliding window of at most ``max_workers`` body evaluations is in
    flight while downstream consumes earlier results (order preserved), so
    remote latency overlaps consumption end-to-end — not just within one
    batch as in the eager lowering.  The source itself is pulled lazily,
    only one window ahead of the consumer, which bounds unconsumed replies
    exactly as the paper requires.
    """
    source_fn = C._compile_stream(expr.source, scope, state)
    body_fn = C._compile(expr.body, scope + (expr.var,), state)
    return _parallel_element_lowering(expr, source_fn, body_fn)


def _parallel_element_lowering(expr: ParallelExt, source_fn, body_fn):
    """The element-granular prefetch stage, from already-compiled pieces.

    Factored out so the chunked lowering can reuse ONE compiled body (and
    this exact prefetch discipline) instead of recompiling the body under a
    second registrant.
    """
    kind = expr.kind
    max_workers = expr.max_workers
    adaptive = expr.adaptive

    def stream(frame, context):
        scheduler = _make_scheduler(max_workers, adaptive,
                                    _plan_window(context))
        scope_obj = context.scope
        if scope_obj is not None:
            # Backstop: if this generator is abandoned without close()
            # reaching its finally (e.g. dropped without GC running), the
            # pipeline's evaluation scope still joins the worker pool.
            scope_obj.register(scheduler)
        stats = context.statistics

        def run_body(item):
            # One frame copy per in-flight element: concurrent bodies never
            # share mutable slots.
            item_frame = list(frame)
            item_frame.append(item)
            return list(iter_collection(materialise(body_fn(item_frame, context))))

        try:
            for chunk in scheduler.prefetch(run_body, source_fn(frame, context)):
                stats.ext_iterations += 1
                yield from chunk
        finally:
            # Always close on section exit: a ParallelExt in the body of an
            # outer loop runs once per outer element — deferring the close
            # to stream end would accumulate one live pool per iteration.
            # Unregistering keeps the scope from pinning one dead scheduler
            # per iteration for the life of the stream.
            scheduler.close()
            if scope_obj is not None:
                scope_obj.unregister(scheduler)

    if kind == "set":
        # Set semantics: suppress repeats incrementally (first-occurrence
        # order), matching the eagerly built CSet element-for-element.
        return C._dedup_set_stream(stream)
    return stream


@C.register_chunk_compiler(ParallelExt)
def _chunk_parallel_ext(expr: ParallelExt, scope, state):
    """Chunked ParallelExt: prefetch granularity follows the ChunkPolicy.

    With ``parallel_chunk == 1`` (the default) the prefetcher stays
    element-granular — one in-flight body evaluation per source element,
    exactly the per-element lowering's bounding behavior, which is the
    right shape for overlapping *remote* latency — and the results are
    re-chunked for the downstream (chunk-consuming) stages.  A larger
    ``parallel_chunk`` switches to the scheduler's chunk-granular prefetch:
    one task per ``parallel_chunk`` source elements, windows counted in
    chunks, the window controller sampling per-chunk latency — amortizing
    task and ordering overhead when the body is cheap.
    """
    body_fn = C._compile(expr.body, scope + (expr.var,), state)
    # The source is compiled under BOTH registries (the policy picks a path
    # at run time), but the body — the expensive half — is compiled once
    # and shared by the element and chunk-granular paths.
    element_fn = _parallel_element_lowering(
        expr, C._compile_stream(expr.source, scope, state), body_fn)
    # The outer set-dedup wrapper below provides all dedup the chunked form
    # needs; use the raw element stage so one seen-set serves the pipeline.
    element_raw = getattr(element_fn, "undeduped", element_fn)
    source_chunk_fn = C._compile_chunk(expr.source, scope, state)
    # A ParallelExt typically exists BECAUSE its body scans a remote driver:
    # the re-chunk of its output must respect that driver's buffering bound
    # (one chunk never accumulates more than remote_max_chunk completed
    # remote replies), like every other re-chunk point.
    scan_driver_names = C._scan_drivers(expr)
    kind = expr.kind
    max_workers = expr.max_workers
    adaptive = expr.adaptive

    def chunks(frame, context):
        policy = C._active_policy(context)
        parallel_chunk = policy.parallel_chunk
        if parallel_chunk <= 1:
            initial, maximum = C._subtree_sizes(policy, scan_driver_names)
            yield from C._ramped_chunks(element_raw(frame, context),
                                        initial, maximum,
                                        policy.adaptive_ramp)
            return
        scheduler = _make_scheduler(max_workers, adaptive,
                                    _plan_window(context))
        scope_obj = context.scope
        if scope_obj is not None:
            scope_obj.register(scheduler)
        stats = context.statistics

        def run_chunk(chunk):
            out = []
            for item in chunk:
                item_frame = list(frame)
                item_frame.append(item)
                out.extend(iter_collection(materialise(body_fn(item_frame,
                                                               context))))
            return len(chunk), out

        def rechunked_source():
            # Re-cut whatever the source's own chunking produced into
            # fixed parallel_chunk task payloads.
            for chunk in source_chunk_fn(frame, context):
                for start in range(0, len(chunk), parallel_chunk):
                    yield chunk[start:start + parallel_chunk]

        try:
            for consumed, out in scheduler.prefetch(run_chunk,
                                                    rechunked_source(),
                                                    chunked=True):
                stats.ext_iterations += consumed
                if out:
                    yield out
        finally:
            scheduler.close()
            if scope_obj is not None:
                scope_obj.unregister(scheduler)

    if kind == "set":
        return C._dedup_set_chunks(chunks)
    return chunks


def make_parallel_rule_set(is_remote_driver: Callable[[str], bool],
                           max_workers: int = 5, adaptive: bool = False,
                           workers_for: Optional[
                               Callable[[A.Expr], Optional[int]]] = None
                           ) -> RuleSet:
    """Build the rule set that parallelises remote inner loops.

    ``adaptive`` selects the self-adjusting scheduler instead of the fixed
    worker count (see :class:`ParallelExt`).

    ``workers_for`` makes the introduction *cost-gated* instead of purely
    pattern-gated: called with the candidate ``Ext``, it returns ``0`` to
    veto the rewrite (a source known to be too small to benefit from
    request overlap), a positive worker count to size the loop, or ``None``
    to keep ``max_workers`` — the planner's
    :meth:`~repro.core.planner.plan.QueryPlanner.parallel_workers` is the
    intended callback, and returns ``None`` whenever it has no statistics,
    so the uninformed behaviour is unchanged.
    """

    def parallelise(expr: A.Expr) -> Optional[A.Expr]:
        if type(expr) is not A.Ext or expr.kind not in ("set", "bag", "list"):
            return None
        if not _body_calls_remote(expr.body, expr.var, is_remote_driver):
            return None
        workers = max_workers
        if workers_for is not None:
            chosen = workers_for(expr)
            if chosen is not None:
                if chosen < 1:
                    return None  # cost gate: overlap cannot pay here
                workers = chosen
        return ParallelExt(expr.var, expr.body, expr.source, expr.kind, workers, adaptive)

    rule = Rule("parallel-remote-loop", parallelise,
                "issue remote requests of an inner loop concurrently, bounded by the server cap")
    return RuleSet("parallel", [rule], direction="top-down", max_iterations=2)


def _body_calls_remote(body: A.Expr, var: str, is_remote_driver: Callable[[str], bool]) -> bool:
    """Does ``body`` contain a Scan of a remote driver whose request depends on ``var``?"""
    if isinstance(body, A.Scan) and is_remote_driver(body.driver):
        for arg in body.args.values():
            if var in A.free_variables(arg):
                return True
    return any(_body_calls_remote(child, var, is_remote_driver) for child in body.children())
