"""The optimizer pipeline: the paper's rule sets in their configured order.

"Optimization of queries is done entirely at compile time using rewrite
rules ... new rules can be specified by the designer of the system and grouped
into rule sets along with an indication of how they are to be applied."

:class:`OptimizerPipeline` assembles a :class:`~repro.core.nrc.rewrite.RewriteEngine`
from the stage rule sets; :class:`OptimizerConfig` exposes one switch per stage
so the ablation benchmarks can turn individual optimizations off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from ..nrc import ast as A
from ..nrc.compile import CompiledQuery, compile_term
from ..nrc.rewrite import RewriteEngine, RewriteStats, RuleSet
from ..nrc.rules_monadic import monadic_rule_set
from .caching import make_caching_rule_set
from .introduction import ScanSpec, make_introduction_rule_set
from .joins import make_join_rule_set
from .parallel import make_parallel_rule_set
from .pushdown_path import make_path_pushdown_rule_set
from .pushdown_sql import make_sql_pushdown_rule_set

__all__ = ["OptimizerConfig", "OptimizerPipeline"]


@dataclass
class OptimizerConfig:
    """Per-stage switches (all on by default, as in the paper's system)."""

    monadic: bool = True
    sql_pushdown: bool = True
    path_pushdown: bool = True
    local_joins: bool = True
    caching: bool = True
    parallelism: bool = True
    parallel_max_workers: int = 5
    #: Use the self-adjusting scheduler ([43]) instead of a fixed worker count.
    adaptive_concurrency: bool = False
    join_minimum_inner_size: int = 8
    join_block_size: int = 256
    #: Plan for pipelined (``stream``) execution: blocked joins are emitted
    #: with block size 1 so the streamed probe side yields per outer element
    #: (see :func:`~repro.core.optimizer.joins.make_join_rule_set`).
    streaming: bool = False
    #: Consult the cost-based planner (when one is wired) for physical
    #: knobs — join block sizes, parallel introduction, chunk policy.  Off,
    #: every knob is the fixed historical constant (the ablation baseline).
    #: Note the planner is *conservative by construction*: with zero
    #: registered/observed statistics it reproduces the constants exactly,
    #: so this switch only matters for informed workloads.
    planning: bool = True

    @classmethod
    def disabled(cls) -> "OptimizerConfig":
        """A configuration with every optimization off (the unoptimized baseline)."""
        return cls(monadic=False, sql_pushdown=False, path_pushdown=False,
                   local_joins=False, caching=False, parallelism=False)

    def for_streaming(self) -> "OptimizerConfig":
        """A copy of this configuration with the streaming hint set."""
        return replace(self, streaming=True)


class OptimizerPipeline:
    """Builds and runs the staged rewrite engine."""

    def __init__(self,
                 function_registry: Optional[Mapping[str, ScanSpec]] = None,
                 capabilities: Optional[Mapping[str, FrozenSet[str]]] = None,
                 cardinality_of: Optional[Callable[[A.Expr], int]] = None,
                 is_remote_driver: Optional[Callable[[str], bool]] = None,
                 config: Optional[OptimizerConfig] = None,
                 extra_rule_sets: Tuple[RuleSet, ...] = (),
                 planner=None):
        self.function_registry = dict(function_registry or {})
        self.capabilities = dict(capabilities or {})
        self.cardinality_of = cardinality_of
        self.is_remote_driver = is_remote_driver or (lambda driver: False)
        self.config = config or OptimizerConfig()
        self.extra_rule_sets = tuple(extra_rule_sets)
        #: The cost-based planner whose compile-time hooks gate the join
        #: block size and the parallel introduction (duck-typed: anything
        #: with ``join_block_size(outer, inner)`` and
        #: ``parallel_workers(expr)``).  ``None`` keeps every knob constant.
        self.planner = planner if self.config.planning else None
        self.engine = self._build_engine()

    def _build_engine(self) -> RewriteEngine:
        config = self.config
        rule_sets = []
        if self.function_registry:
            rule_sets.append(make_introduction_rule_set(self.function_registry))
        if config.monadic:
            rule_sets.append(monadic_rule_set())
        if config.sql_pushdown and self.capabilities:
            rule_sets.append(make_sql_pushdown_rule_set(self.capabilities))
        if config.path_pushdown and self.capabilities:
            rule_sets.append(make_path_pushdown_rule_set(self.capabilities))
        planner = self.planner
        if config.local_joins:
            rule_sets.append(make_join_rule_set(
                self.cardinality_of,
                config.join_minimum_inner_size,
                config.join_block_size,
                streaming=config.streaming,
                block_size_for=None if planner is None
                else planner.join_block_size))
        if config.caching:
            rule_sets.append(make_caching_rule_set())
        if config.parallelism:
            rule_sets.append(make_parallel_rule_set(
                self.is_remote_driver,
                config.parallel_max_workers,
                config.adaptive_concurrency,
                workers_for=None if planner is None
                else planner.parallel_workers))
        rule_sets.extend(self.extra_rule_sets)
        return RewriteEngine(rule_sets)

    def rebuild(self) -> None:
        """Re-assemble the engine (after registering more drivers or rules)."""
        self.engine = self._build_engine()

    def optimize(self, expr: A.Expr,
                 stats: Optional[RewriteStats] = None) -> A.Expr:
        """Apply every configured stage to ``expr``."""
        return self.engine.rewrite(expr, stats)

    def prepare(self, expr: A.Expr, stats: Optional[RewriteStats] = None,
                lower: Optional[Callable[[A.Expr], CompiledQuery]] = None,
                ) -> Tuple[A.Expr, CompiledQuery]:
        """The full compile-time path: rewrite, then lower to closures.

        The closure compiler runs strictly *after* every rewrite stage, so it
        sees the Scan/Join/Cached/ParallelExt nodes the rule sets introduced
        and lowers them natively instead of the surface forms.  ``lower``
        lets a caller substitute a memoizing lowering step (the Kleisli
        engine passes its fingerprint-keyed cache); the default compiles
        fresh.
        """
        optimized = self.optimize(expr, stats)
        return optimized, (lower or compile_term)(optimized)

    def explain(self, expr: A.Expr):
        """Optimize and also return per-stage before/after traces."""
        return self.engine.explain(expr)
