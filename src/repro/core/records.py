"""Remy-style record representation.

Section 4 of the paper ("Optimizing Projections") describes the problem: CPL
queries are compiled knowing only that a record *has* some fields, not the
record's full layout, so field offsets cannot be fixed at compile time.  The
solution, due to Remy, represents a record as a pair of

* a pointer to a shared **directory** mapping field names to array slots, and
* an **array** holding the field values in directory order.

All records with the same field set share one directory, so a projection is a
directory lookup (to get the slot) followed by an array index.  When a
collection is *homogeneous* (all records share a directory — always true of
data coming from a relational source) the directory lookup can be done once
for the whole collection and the slot reused; the paper reports a greater than
two-fold speed-up from this fast path.

This module provides:

``RecordDirectory``
    The shared field-name → slot map, interned so identical field sets share
    one object.

``Record``
    The immutable record value used throughout the evaluator.

``ProjectionCursor``
    The homogeneity fast path: resolves a field to a slot against the first
    record it sees and reuses the slot while the directory stays the same.

``plain_project`` / ``cursor_project``
    The two projection strategies benchmarked in experiment E1.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .errors import EvaluationError

__all__ = [
    "RecordDirectory",
    "Record",
    "ProjectionCursor",
    "plain_project",
    "cursor_project",
    "directory_for",
]


class RecordDirectory:
    """A shared, interned mapping from field labels to array slots.

    Directories are interned by field set: requesting a directory for the same
    labels (in any order) returns the same object, which is what lets the
    homogeneity fast path recognise that two records have the same layout by a
    single identity comparison.
    """

    _intern_lock = threading.Lock()
    _interned: Dict[Tuple[str, ...], "RecordDirectory"] = {}

    __slots__ = ("labels", "slots", "magic")

    def __init__(self, labels: Tuple[str, ...], magic: int):
        self.labels = labels
        self.slots = {label: index for index, label in enumerate(labels)}
        # The "magic number" of the paper: a per-directory token mixed into
        # offset computation.  Here it doubles as a stable identity for caches.
        self.magic = magic

    @classmethod
    def for_labels(cls, labels: Iterable[str]) -> "RecordDirectory":
        """Return the interned directory for ``labels`` (order-insensitive)."""
        key = tuple(sorted(labels))
        directory = cls._interned.get(key)
        if directory is not None:
            return directory
        with cls._intern_lock:
            directory = cls._interned.get(key)
            if directory is None:
                directory = cls(key, magic=len(cls._interned) + 1)
                cls._interned[key] = directory
            return directory

    def slot_of(self, label: str) -> int:
        """Return the array slot for ``label``.

        This is the *slow* step that the homogeneity optimization amortises.
        """
        try:
            return self.slots[label]
        except KeyError:
            raise EvaluationError(
                f"record has no field {label!r} (fields: {', '.join(self.labels)})"
            )

    def __contains__(self, label: str) -> bool:
        return label in self.slots

    def __len__(self) -> int:
        return len(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RecordDirectory({', '.join(self.labels)})"


def directory_for(labels: Iterable[str]) -> RecordDirectory:
    """Module-level alias for :meth:`RecordDirectory.for_labels`."""
    return RecordDirectory.for_labels(labels)


class Record:
    """An immutable record value: a shared directory plus a value array.

    Records are hashable when their field values are hashable, compare by
    field content, and can be used as set elements (CPL sets of records are
    the common case).
    """

    __slots__ = ("directory", "values", "_hash")

    def __init__(self, fields: Mapping[str, object] = None, _directory: RecordDirectory = None,
                 _values: Tuple[object, ...] = None):
        if _directory is not None:
            self.directory = _directory
            self.values = _values
        else:
            fields = fields or {}
            self.directory = RecordDirectory.for_labels(fields.keys())
            self.values = tuple(fields[label] for label in self.directory.labels)
        self._hash = None

    @classmethod
    def from_directory(cls, directory: RecordDirectory, values: Sequence[object]) -> "Record":
        """Build a record directly on an existing directory (fast path for drivers)."""
        values = tuple(values)
        if len(values) != len(directory):
            raise EvaluationError(
                f"directory has {len(directory)} slots but {len(values)} values supplied"
            )
        return cls(_directory=directory, _values=values)

    # -- access ------------------------------------------------------------

    def project(self, label: str) -> object:
        """Plain Remy projection: directory lookup then array index."""
        return self.values[self.directory.slot_of(label)]

    __getitem__ = project

    def get(self, label: str, default: object = None) -> object:
        slot = self.directory.slots.get(label)
        if slot is None:
            return default
        return self.values[slot]

    def has_field(self, label: str) -> bool:
        return label in self.directory

    @property
    def labels(self) -> Tuple[str, ...]:
        return self.directory.labels

    def items(self) -> Iterator[Tuple[str, object]]:
        return zip(self.directory.labels, self.values)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.items())

    # -- construction of derived records ------------------------------------

    def with_fields(self, **updates: object) -> "Record":
        """Return a record with ``updates`` added or replaced."""
        fields = self.to_dict()
        fields.update(updates)
        return Record(fields)

    def without_fields(self, *labels: str) -> "Record":
        """Return a record with the given labels removed."""
        fields = {k: v for k, v in self.items() if k not in labels}
        return Record(fields)

    def restrict(self, labels: Iterable[str]) -> "Record":
        """Return a record keeping only ``labels`` (projection onto several fields)."""
        return Record({label: self.project(label) for label in labels})

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        if self.directory is other.directory:
            return self.values == other.values
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.directory.labels, self.values))
        return self._hash

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{label}={value!r}" for label, value in self.items())
        return f"[{inner}]"


class ProjectionCursor:
    """The homogeneity fast path for record projection.

    A cursor is created per (mapped collection, field) pair.  The first record
    it sees pays the directory lookup; subsequent records that share the same
    directory reuse the cached slot and skip the lookup entirely.  If a record
    with a *different* directory shows up (a heterogeneous collection), the
    cursor transparently falls back to the plain lookup, so correctness never
    depends on the homogeneity hint.
    """

    __slots__ = ("label", "_directory", "_slot", "hits", "misses")

    def __init__(self, label: str):
        self.label = label
        self._directory: Optional[RecordDirectory] = None
        self._slot: Optional[int] = None
        self.hits = 0
        self.misses = 0

    def project(self, record: Record) -> object:
        directory = record.directory
        if directory is self._directory:
            self.hits += 1
            return record.values[self._slot]
        self.misses += 1
        self._directory = directory
        self._slot = directory.slot_of(self.label)
        return record.values[self._slot]

    __call__ = project


def plain_project(records: Iterable[Record], label: str) -> List[object]:
    """Project ``label`` from every record using plain Remy projection."""
    return [record.values[record.directory.slot_of(label)] for record in records]


def cursor_project(records: Iterable[Record], label: str) -> List[object]:
    """Project ``label`` using the homogeneity-aware cursor (experiment E1)."""
    cursor = ProjectionCursor(label)
    return [cursor.project(record) for record in records]
