"""Exception hierarchy for the CPL/Kleisli reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with one clause.  The sub-classes mirror the stages
of the system: lexing/parsing of CPL, type inference, NRC rewriting and
evaluation, driver interaction, and the external-format substrates.

Fault taxonomy (driver faults, as the resilience layer classifies them)
-----------------------------------------------------------------------

The paper's headline scenario federates flaky wide-area sources ("the server S
may only be able to handle a limited number of requests at a time"), so the
engine's resilience layer (:mod:`repro.kleisli.resilience`) needs a principled
split between faults worth retrying and faults that can only get worse:

========================== ============ ==============================================
error                      class        why
========================== ============ ==============================================
``RemoteSourceError``      retryable    cap rejection / transient server overload —
                                        the paper's "limited number of requests";
                                        backing off and retrying is the fix
``TransientDriverError``   retryable    a driver explicitly marking a fault as
                                        transient (connection reset, injected chaos)
``DriverTimeoutError``     retryable    a request exceeded its per-request budget;
                                        the server may simply have been slow once
``ConnectionError``/       retryable    the wire flaked, not the request
``TimeoutError`` (stdlib)
``DriverNotRegisteredError`` terminal   no retry conjures up a missing driver
``DeadlineExceededError``  terminal     the *query's* time budget is spent; retrying
                                        any single request cannot un-spend it
``CircuitOpenError``       terminal*    the breaker already proved the source down;
                                        fail fast (``*`` degradable: a federated
                                        union may drop the source instead, see
                                        :class:`SourceDegradedWarning`)
``DriverError`` (other)    terminal     malformed request / semantic failure — the
                                        same request will fail the same way again
========================== ============ ==============================================

:func:`is_retryable_fault` implements the table; anything not listed (type
errors, evaluation errors, arbitrary exceptions) is terminal.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CPLSyntaxError(ReproError):
    """Raised when CPL source text cannot be tokenised or parsed.

    Carries the offending line and column so sessions can point at the
    position in the query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.line:
            return f"{self.message} (line {self.line}, column {self.column})"
        return self.message


class CPLTypeError(ReproError):
    """Raised by the type checker when a CPL expression is ill-typed."""


class PatternError(ReproError):
    """Raised when a CPL pattern is malformed or cannot match its subject type."""


class NRCError(ReproError):
    """Raised for malformed NRC terms or illegal rewrite-engine configuration."""


class EvaluationError(ReproError):
    """Raised when evaluation of a well-formed NRC term fails at run time."""


class UnboundVariableError(EvaluationError):
    """Raised when evaluation encounters a variable with no binding."""

    def __init__(self, name: str):
        super().__init__(f"unbound variable: {name}")
        self.name = name


class DriverError(ReproError):
    """Raised when a Kleisli driver cannot satisfy a request."""


class DriverNotRegisteredError(DriverError):
    """Raised when a query refers to a driver that has not been registered."""

    def __init__(self, name: str):
        super().__init__(f"no driver registered under the name {name!r}")
        self.name = name


class RemoteSourceError(DriverError):
    """Raised when a (simulated) remote source rejects or drops a request.

    Classified **retryable**: the paper's cap rejection ("may only be able to
    handle a limited number of requests at a time") is exactly the fault
    backoff-and-retry exists for.
    """


class TransientDriverError(DriverError):
    """A driver fault explicitly marked transient (retryable).

    Drivers raise this — instead of the terminal :class:`DriverError` — for
    faults where re-issuing the same request can plausibly succeed: dropped
    connections, mid-transfer resets, injected chaos faults.
    """


class DriverTimeoutError(TransientDriverError):
    """A driver request exceeded its per-request time budget.

    Raised by the resilience layer (not by drivers) when a request's
    round-trip overran :attr:`~repro.kleisli.resilience.RetryPolicy.request_timeout`;
    retryable — one slow answer does not prove the source down.
    """

    def __init__(self, driver: str, elapsed: float, budget: float):
        super().__init__(
            f"driver {driver!r} request took {elapsed:.3f}s "
            f"(budget {budget:.3f}s)")
        self.driver = driver
        self.elapsed = elapsed
        self.budget = budget


class DeadlineExceededError(DriverError):
    """The *query-level* deadline budget is spent (terminal).

    Unlike a per-request timeout, a deadline bounds the whole evaluation:
    once it passes, no retry of any individual request can bring the query
    home in time, so the resilience layer stops retrying and surfaces this.
    """

    def __init__(self, driver: str, overrun: float = 0.0):
        super().__init__(
            f"query deadline exceeded while requesting from driver {driver!r}")
        self.driver = driver
        self.overrun = overrun


class CircuitOpenError(DriverError):
    """The driver's circuit breaker is open: the source is presumed down.

    Terminal for the individual call — the breaker exists precisely to stop
    hammering a failing source — but *degradable*: under
    ``on_source_failure="degrade"`` a federated union drops the source's
    contribution and records a :class:`SourceDegradedWarning` instead of
    failing the query.
    """

    def __init__(self, driver: str, retry_after: float = 0.0):
        super().__init__(
            f"circuit breaker for driver {driver!r} is open"
            + (f"; next probe in ~{retry_after:.2f}s" if retry_after > 0 else ""))
        self.driver = driver
        self.retry_after = retry_after


class QueryGovernanceError(ReproError):
    """Base class for the query-lifecycle governance faults.

    Governance faults are *verdicts about the query*, not about any one
    driver request: retrying a request cannot un-cancel a query or un-spend
    its memory budget, so both subclasses are terminal for the resilience
    layer (listed in :data:`TERMINAL_FAULTS`).
    """


class QueryCancelledError(QueryGovernanceError):
    """The query's :class:`~repro.kleisli.governance.CancellationToken` was
    cancelled; raised at the next cooperative checkpoint (chunk boundary,
    per-element pull, eager loop head, pre-driver-dispatch).

    The raising checkpoint always sits inside the run's
    :class:`~repro.core.nrc.eval.EvalScope`, so propagation releases every
    cursor the run opened — a cancelled query leaks nothing.
    """

    def __init__(self, reason: str = "query cancelled"):
        super().__init__(reason)
        self.reason = reason


class MemoryBudgetExceededError(QueryGovernanceError):
    """A materialization point asked for more than the query's
    :class:`~repro.kleisli.governance.MemoryBudget` (or one of its
    session/engine ancestors) allows, and no spill backend was attached.

    Terminal: the query's memory appetite does not shrink on retry.  With a
    spill backend attached (plan-gated up front), the same query degrades to
    slower-but-correct disk-backed execution instead of raising this.
    """

    def __init__(self, label: str, requested: int, limit: int, used: int):
        super().__init__(
            f"memory budget {label!r} exceeded: {requested} bytes requested, "
            f"{used} of {limit} in use")
        self.label = label
        self.requested = requested
        self.limit = limit
        self.used = used


#: Exception classes the resilience layer may retry with backoff.
RETRYABLE_FAULTS = (RemoteSourceError, TransientDriverError,
                    ConnectionError, TimeoutError)
#: Exception classes that are never retried, even though they subclass a
#: retryable base (checked first).
TERMINAL_FAULTS = (DriverNotRegisteredError, DeadlineExceededError,
                   CircuitOpenError, QueryCancelledError,
                   MemoryBudgetExceededError)


def is_retryable_fault(error: BaseException) -> bool:
    """The one classification every resilience decision routes through.

    Implements the fault-taxonomy table in the module docstring: cap
    rejections, explicitly-transient driver faults, per-request timeouts and
    stdlib connection/timeout errors are retryable; missing drivers, spent
    deadlines, open breakers, and every other fault are terminal.
    """
    if isinstance(error, TERMINAL_FAULTS):
        return False
    return isinstance(error, RETRYABLE_FAULTS)


class SourceDegradedWarning:
    """A typed record of one source dropped from a degraded federated run.

    NOT an exception: degradation is the *absence* of a failure.  When a
    query runs with ``on_source_failure="degrade"`` and a source stays down
    after retries (or its breaker is open), the run completes with partial
    results and one of these per dropped source in
    ``EvalStatistics.warnings`` — and, over the query service's wire
    protocol, in the response's ``warnings`` field — so partial results are
    always *announced*, never silent truncation.
    """

    __slots__ = ("driver", "error_type", "reason", "requests_dropped")

    def __init__(self, driver: str, error: BaseException,
                 requests_dropped: int = 1):
        self.driver = driver
        self.error_type = type(error).__name__
        self.reason = str(error)
        self.requests_dropped = requests_dropped

    def as_dict(self) -> dict:
        return {"driver": self.driver, "error_type": self.error_type,
                "reason": self.reason,
                "requests_dropped": self.requests_dropped}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SourceDegradedWarning(driver={self.driver!r}, "
                f"error_type={self.error_type!r})")


class QueryServiceError(ReproError):
    """Base error for the multi-session query service (:mod:`repro.server`)."""


class ServerOverloadedError(QueryServiceError):
    """Raised when admission control rejects a request: the server is at its
    bounded in-flight query capacity and the admission policy chose (or was
    forced, after a queue timeout) to reject rather than queue.  The client
    may retry; the server remains fully operational."""


class RemoteQueryError(QueryServiceError):
    """A query failed on the *server* side; raised by the client.

    Carries the server-reported error class name so callers can distinguish
    a CPL syntax error from a driver failure without the server shipping
    exception objects over the wire.
    """

    def __init__(self, message: str, error_type: str = "ReproError"):
        super().__init__(message)
        self.error_type = error_type


class WireProtocolError(QueryServiceError):
    """Raised when a wire frame is malformed, oversized, or truncated."""


class PlanStoreError(ReproError):
    """Raised for plan-store *caller* misuse (unencodable values, bad
    configuration).  Never raised for corrupt or unreadable on-disk state:
    recovery is paranoid by design — bad storage degrades to skipped
    records and book entries, not exceptions."""


class SQLSyntaxError(ReproError):
    """Raised by the relational substrate when SQL text cannot be parsed."""


class SQLExecutionError(ReproError):
    """Raised when a parsed SQL statement cannot be executed against a database."""


class SchemaError(ReproError):
    """Raised for schema violations in the relational substrate."""


class ASN1Error(ReproError):
    """Base error for the ASN.1 substrate."""


class ASN1ParseError(ASN1Error):
    """Raised when ASN.1 text (type or value syntax) cannot be parsed."""


class PathSyntaxError(ASN1Error):
    """Raised when an Entrez path-extraction expression is malformed."""


class PathApplicationError(ASN1Error):
    """Raised when a path expression does not apply to the value it is run on."""


class ACEError(ReproError):
    """Base error for the ACE substrate."""


class ACEParseError(ACEError):
    """Raised when .ace text cannot be parsed."""


class FormatError(ReproError):
    """Raised by flat-file format readers/writers (FASTA, EMBL, GCG)."""
