"""Exception hierarchy for the CPL/Kleisli reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with one clause.  The sub-classes mirror the stages
of the system: lexing/parsing of CPL, type inference, NRC rewriting and
evaluation, driver interaction, and the external-format substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CPLSyntaxError(ReproError):
    """Raised when CPL source text cannot be tokenised or parsed.

    Carries the offending line and column so sessions can point at the
    position in the query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.line:
            return f"{self.message} (line {self.line}, column {self.column})"
        return self.message


class CPLTypeError(ReproError):
    """Raised by the type checker when a CPL expression is ill-typed."""


class PatternError(ReproError):
    """Raised when a CPL pattern is malformed or cannot match its subject type."""


class NRCError(ReproError):
    """Raised for malformed NRC terms or illegal rewrite-engine configuration."""


class EvaluationError(ReproError):
    """Raised when evaluation of a well-formed NRC term fails at run time."""


class UnboundVariableError(EvaluationError):
    """Raised when evaluation encounters a variable with no binding."""

    def __init__(self, name: str):
        super().__init__(f"unbound variable: {name}")
        self.name = name


class DriverError(ReproError):
    """Raised when a Kleisli driver cannot satisfy a request."""


class DriverNotRegisteredError(DriverError):
    """Raised when a query refers to a driver that has not been registered."""

    def __init__(self, name: str):
        super().__init__(f"no driver registered under the name {name!r}")
        self.name = name


class RemoteSourceError(DriverError):
    """Raised when a (simulated) remote source rejects or drops a request."""


class QueryServiceError(ReproError):
    """Base error for the multi-session query service (:mod:`repro.server`)."""


class ServerOverloadedError(QueryServiceError):
    """Raised when admission control rejects a request: the server is at its
    bounded in-flight query capacity and the admission policy chose (or was
    forced, after a queue timeout) to reject rather than queue.  The client
    may retry; the server remains fully operational."""


class RemoteQueryError(QueryServiceError):
    """A query failed on the *server* side; raised by the client.

    Carries the server-reported error class name so callers can distinguish
    a CPL syntax error from a driver failure without the server shipping
    exception objects over the wire.
    """

    def __init__(self, message: str, error_type: str = "ReproError"):
        super().__init__(message)
        self.error_type = error_type


class WireProtocolError(QueryServiceError):
    """Raised when a wire frame is malformed, oversized, or truncated."""


class SQLSyntaxError(ReproError):
    """Raised by the relational substrate when SQL text cannot be parsed."""


class SQLExecutionError(ReproError):
    """Raised when a parsed SQL statement cannot be executed against a database."""


class SchemaError(ReproError):
    """Raised for schema violations in the relational substrate."""


class ASN1Error(ReproError):
    """Base error for the ASN.1 substrate."""


class ASN1ParseError(ASN1Error):
    """Raised when ASN.1 text (type or value syntax) cannot be parsed."""


class PathSyntaxError(ASN1Error):
    """Raised when an Entrez path-extraction expression is malformed."""


class PathApplicationError(ASN1Error):
    """Raised when a path expression does not apply to the value it is run on."""


class ACEError(ReproError):
    """Base error for the ACE substrate."""


class ACEParseError(ACEError):
    """Raised when .ace text cannot be parsed."""


class FormatError(ReproError):
    """Raised by flat-file format readers/writers (FASTA, EMBL, GCG)."""
