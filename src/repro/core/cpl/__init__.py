"""CPL: the Collection Programming Language (the paper's query language).

The public entry points are :func:`parse` (text → surface AST),
:func:`desugar` (surface AST → NRC), and — for most users — the
:class:`repro.kleisli.session.Session` class, which strings together parsing,
type inference, optimization and evaluation.
"""

from .ast import (
    Program,
    Define,
    ExprStatement,
    SExpr,
    SLit,
    SVar,
    SRecord,
    SVariant,
    SCollection,
    SComprehension,
    Generator,
    Filter,
    SProject,
    SApp,
    SLambda,
    LambdaClause,
    SIf,
    SBinOp,
    SUnaryOp,
    Pattern,
    PVar,
    PWildcard,
    PLit,
    PRecord,
    PVariant,
    PExpr,
)
from .lexer import tokenize, Token
from .parser import parse, parse_expression
from .desugar import desugar, desugar_expression
from .typecheck import TypeChecker, infer_expression_type

__all__ = [
    "Program", "Define", "ExprStatement",
    "SExpr", "SLit", "SVar", "SRecord", "SVariant", "SCollection",
    "SComprehension", "Generator", "Filter", "SProject", "SApp",
    "SLambda", "LambdaClause", "SIf", "SBinOp", "SUnaryOp",
    "Pattern", "PVar", "PWildcard", "PLit", "PRecord", "PVariant", "PExpr",
    "tokenize", "Token", "parse", "parse_expression",
    "desugar", "desugar_expression",
    "TypeChecker", "infer_expression_type",
]
