"""Translation of CPL surface syntax into NRC.

Two things happen here, exactly as in the paper's implementation pipeline:

1. **Comprehensions are translated** using Wadler's three identities::

       {e |}              -->  {e}
       {e | \\x <- e', Q}  -->  U{ {e | Q} | \\x <- e' }
       {e | p, Q}          -->  if p then {e | Q} else {}

2. **Patterns are compiled away.**  A pattern in generator position filters
   and binds: elements that fail to match are skipped (the generator yields
   the empty collection for them), and the pattern's variables are introduced
   with ``let``.  A pattern in a function clause raises a match failure when
   no alternative applies.

After desugaring, optimization and evaluation never see comprehensions or
patterns again — which is precisely why rule R1 and friends stay simple.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PatternError
from ..nrc import ast as N
from ..nrc.prims import PRIMITIVES
from . import ast as S

__all__ = ["desugar", "desugar_expression", "desugar_statement", "compile_pattern"]


def desugar(program: S.Program) -> List[tuple]:
    """Desugar a whole program into a list of ``("define", name, expr)`` /
    ``("expr", None, expr)`` tuples of NRC expressions."""
    result = []
    for statement in program.statements:
        result.append(desugar_statement(statement))
    return result


def desugar_statement(statement: S.Statement) -> tuple:
    if isinstance(statement, S.Define):
        return ("define", statement.name, desugar_expression(statement.expr))
    if isinstance(statement, S.ExprStatement):
        return ("expr", None, desugar_expression(statement.expr))
    raise PatternError(f"unknown statement type {type(statement).__name__}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def desugar_expression(expr: S.SExpr) -> N.Expr:
    """Translate a surface expression into NRC."""
    if isinstance(expr, S.SLit):
        return N.Const(expr.value)
    if isinstance(expr, S.SVar):
        return N.Var(expr.name)
    if isinstance(expr, S.SRecord):
        return N.RecordExpr({label: desugar_expression(value)
                             for label, value in expr.fields.items()})
    if isinstance(expr, S.SVariant):
        payload = N.Const(None) if expr.value is None else desugar_expression(expr.value)
        return N.VariantExpr(expr.tag, payload)
    if isinstance(expr, S.SCollection):
        return _desugar_collection_literal(expr)
    if isinstance(expr, S.SComprehension):
        return _desugar_comprehension(expr)
    if isinstance(expr, S.SProject):
        return N.Project(desugar_expression(expr.expr), expr.label)
    if isinstance(expr, S.SApp):
        return _desugar_application(expr)
    if isinstance(expr, S.SLambda):
        return _desugar_lambda(expr)
    if isinstance(expr, S.SIf):
        return N.IfThenElse(desugar_expression(expr.cond),
                            desugar_expression(expr.then_branch),
                            desugar_expression(expr.else_branch))
    if isinstance(expr, S.SBinOp):
        return _desugar_binop(expr)
    if isinstance(expr, S.SUnaryOp):
        return _desugar_unaryop(expr)
    raise PatternError(f"cannot desugar expression of type {type(expr).__name__}")


def _desugar_collection_literal(expr: S.SCollection) -> N.Expr:
    """``{e1, ..., en}`` becomes singletons joined by unions (right-nested)."""
    if not expr.elements:
        return N.Empty(expr.kind)
    result: Optional[N.Expr] = None
    for element in reversed(expr.elements):
        singleton = N.Singleton(desugar_expression(element), expr.kind)
        result = singleton if result is None else N.Union(singleton, result, expr.kind)
    return result


def _desugar_comprehension(expr: S.SComprehension) -> N.Expr:
    return _desugar_qualifiers(expr.head, list(expr.qualifiers), expr.kind)


def _desugar_qualifiers(head: S.SExpr, qualifiers: List[S.Qualifier], kind: str) -> N.Expr:
    if not qualifiers:
        return N.Singleton(desugar_expression(head), kind)
    first, rest = qualifiers[0], qualifiers[1:]
    rest_expr = _desugar_qualifiers(head, rest, kind)
    if isinstance(first, S.Filter):
        return N.IfThenElse(desugar_expression(first.condition), rest_expr, N.Empty(kind))
    if isinstance(first, S.Generator):
        element_var = N.fresh_var("x")
        body = compile_pattern(first.pattern, N.Var(element_var), rest_expr, N.Empty(kind))
        return N.Ext(element_var, body, desugar_expression(first.source), kind)
    raise PatternError(f"unknown qualifier type {type(first).__name__}")


def _desugar_application(expr: S.SApp) -> N.Expr:
    func = expr.func
    # ``fold(f, init, coll)`` is a special form (structural recursion), not an
    # ordinary application: it becomes its own NRC node so the evaluator can
    # thread the accumulator without materialising intermediate collections.
    if isinstance(func, S.SVar) and func.name == "fold" and len(expr.args) == 3:
        combiner, init, source = expr.args
        return N.Fold(desugar_expression(combiner),
                      desugar_expression(init),
                      desugar_expression(source))
    # Multi-argument calls are reserved for built-in primitives; everything else
    # is ordinary single-argument application (curried if several args given).
    if isinstance(func, S.SVar) and func.name in PRIMITIVES:
        return N.PrimCall(func.name, [desugar_expression(arg) for arg in expr.args])
    result = desugar_expression(func)
    if not expr.args:
        return N.Apply(result, N.Const(None))
    for arg in expr.args:
        result = N.Apply(result, desugar_expression(arg))
    return result


def _desugar_lambda(expr: S.SLambda) -> N.Expr:
    param = N.fresh_var("arg")
    failure: N.Expr = N.PrimCall("fail", [N.Const("no pattern alternative matched")])
    body = failure
    for clause in reversed(expr.clauses):
        body = compile_pattern(clause.pattern, N.Var(param),
                               desugar_expression(clause.body), body)
    return N.Lam(param, body)


_BINOP_PRIMS = {
    "=": "eq", "<>": "neq", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "+": "add", "-": "sub", "*": "mul", "/": "div", "^": "string_concat",
}


def _desugar_binop(expr: S.SBinOp) -> N.Expr:
    left = desugar_expression(expr.left)
    right = desugar_expression(expr.right)
    if expr.op == "and":
        return N.IfThenElse(left, right, N.Const(False))
    if expr.op == "or":
        return N.IfThenElse(left, N.Const(True), right)
    prim = _BINOP_PRIMS.get(expr.op)
    if prim is None:
        raise PatternError(f"unknown binary operator {expr.op!r}")
    return N.PrimCall(prim, [left, right])


def _desugar_unaryop(expr: S.SUnaryOp) -> N.Expr:
    operand = desugar_expression(expr.operand)
    if expr.op == "not":
        return N.PrimCall("not", [operand])
    if expr.op == "-":
        return N.PrimCall("neg", [operand])
    if expr.op == "!":
        return N.Deref(operand)
    raise PatternError(f"unknown unary operator {expr.op!r}")


# ---------------------------------------------------------------------------
# Pattern compilation
# ---------------------------------------------------------------------------

def compile_pattern(pattern: S.Pattern, subject: N.Expr,
                    success: N.Expr, failure: N.Expr) -> N.Expr:
    """Compile a pattern match into NRC.

    ``subject`` is the expression being matched, ``success`` the continuation
    with the pattern's variables in scope, and ``failure`` the expression to
    produce when the match fails (the empty collection for generators, a match
    failure for function clauses).
    """
    if isinstance(pattern, S.PVar):
        return N.Let(pattern.name, subject, success)
    if isinstance(pattern, S.PWildcard):
        return success
    if isinstance(pattern, S.PLit):
        condition = N.PrimCall("eq", [subject, N.Const(pattern.value)])
        return N.IfThenElse(condition, success, failure)
    if isinstance(pattern, S.PExpr):
        condition = N.PrimCall("eq", [subject, desugar_expression(pattern.expr)])
        return N.IfThenElse(condition, success, failure)
    if isinstance(pattern, S.PRecord):
        return _compile_record_pattern(pattern, subject, success, failure)
    if isinstance(pattern, S.PVariant):
        return _compile_variant_pattern(pattern, subject, success, failure)
    raise PatternError(f"unknown pattern type {type(pattern).__name__}")


def _compile_record_pattern(pattern: S.PRecord, subject: N.Expr,
                            success: N.Expr, failure: N.Expr) -> N.Expr:
    # Bind the subject once so repeated projections do not duplicate work.
    subject_var = N.fresh_var("rec")
    body = success
    for label, field_pattern in reversed(list(pattern.fields.items())):
        body = compile_pattern(field_pattern, N.Project(N.Var(subject_var), label),
                               body, failure)
    return N.Let(subject_var, subject, body)


def _compile_variant_pattern(pattern: S.PVariant, subject: N.Expr,
                             success: N.Expr, failure: N.Expr) -> N.Expr:
    payload_var = N.fresh_var("payload")
    if pattern.pattern is None:
        branch_body = success
    else:
        branch_body = compile_pattern(pattern.pattern, N.Var(payload_var), success, failure)
    default_var = N.fresh_var("other")
    return N.Case(subject,
                  [N.CaseBranch(pattern.tag, payload_var, branch_body)],
                  default=(default_var, failure))
