"""Output formatting for CPL values.

The paper: *"a flexible printing routine in CPL allows data to be converted to
a variety of formats for use in displaying (e.g. HTML) or reading into another
programming language (e.g. perl)"*.  This module provides those printers:

* :func:`render_value` — canonical CPL value syntax (the syntax used in the
  paper's Publication example),
* :func:`render_html` — an HTML rendering with tables for sets of records,
* :func:`render_tabular` — tab-delimited rows for flat sets of records, the
  form most easily read into perl/awk-style tooling,
* :func:`render_python` — plain Python literals (dicts / lists).
"""

from __future__ import annotations

import html as _html
from typing import Iterable, List

from ..records import Record
from ..values import CBag, CList, CSet, Ref, Unit, Variant, to_python

__all__ = ["render_value", "render_html", "render_tabular", "render_python"]


def render_value(value: object, indent: int = 0, width: int = 100) -> str:
    """Render ``value`` in CPL value syntax.

    Nested collections and records are broken over lines once they no longer
    fit in ``width`` columns.
    """
    flat = _render_flat(value)
    if len(flat) + indent <= width:
        return flat
    return _render_nested(value, indent, width)


def _render_flat(value: object) -> str:
    if isinstance(value, str):
        return '"%s"' % value.replace("\\", "\\\\").replace('"', '\\"')
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, Unit):
        return "()"
    if isinstance(value, Record):
        inner = ", ".join(f"{label}={_render_flat(field)}" for label, field in value.items())
        return f"[{inner}]"
    if isinstance(value, Variant):
        if isinstance(value.value, Unit):
            return f"<{value.tag}>"
        return f"<{value.tag}={_render_flat(value.value)}>"
    if isinstance(value, Ref):
        return f"#{value.class_name}:{value.identifier}"
    if isinstance(value, CSet):
        return "{%s}" % ", ".join(_render_flat(element) for element in value)
    if isinstance(value, CBag):
        return "{|%s|}" % ", ".join(_render_flat(element) for element in value)
    if isinstance(value, CList):
        return "[|%s|]" % ", ".join(_render_flat(element) for element in value)
    return repr(value)


_BRACKETS = {CSet: ("{", "}"), CBag: ("{|", "|}"), CList: ("[|", "|]")}


def _render_nested(value: object, indent: int, width: int) -> str:
    pad = " " * indent
    child_pad = " " * (indent + 2)
    if isinstance(value, Record):
        lines = []
        for label, field in value.items():
            rendered = render_value(field, indent + 2, width)
            lines.append(f"{child_pad}{label}={rendered.lstrip()}")
        return "[\n" + ",\n".join(lines) + f"\n{pad}]"
    for cls, (open_bracket, close_bracket) in _BRACKETS.items():
        if isinstance(value, cls):
            lines = []
            for element in value:
                rendered = render_value(element, indent + 2, width)
                lines.append(f"{child_pad}{rendered.lstrip()}")
            return f"{open_bracket}\n" + ",\n".join(lines) + f"\n{pad}{close_bracket}"
    if isinstance(value, Variant):
        inner = render_value(value.value, indent + 2, width)
        return f"<{value.tag}={inner.lstrip()}>"
    return _render_flat(value)


def render_python(value: object) -> object:
    """Render a CPL value as plain Python data (dicts, lists, scalars)."""
    return to_python(value)


def render_tabular(value: object, separator: str = "\t") -> str:
    """Render a flat collection of records as delimited rows with a header.

    Nested fields are rendered in CPL value syntax inside their cell, so the
    output is always produced even for not-quite-flat relations.
    """
    rows = list(value) if isinstance(value, (CSet, CBag, CList)) else [value]
    if not rows:
        return ""
    header: List[str] = []
    for row in rows:
        if isinstance(row, Record):
            for label in row.labels:
                if label not in header:
                    header.append(label)
    if not header:
        return "\n".join(_render_flat(row) for row in rows)
    lines = [separator.join(header)]
    for row in rows:
        if isinstance(row, Record):
            cells = [_cell(row.get(label)) for label in header]
        else:
            cells = [_cell(row)] + [""] * (len(header) - 1)
        lines.append(separator.join(cells))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return _render_flat(value)


def render_html(value: object, title: str = "CPL query result") -> str:
    """Render a value as a small self-contained HTML document.

    Sets/bags/lists of records become tables; nested collections become nested
    tables, which is how the prototype displayed nested relations through
    Mosaic-era browsers.
    """
    body = _html_value(value)
    return (
        "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n%s\n</body></html>"
        % (_html.escape(title), _html.escape(title), body)
    )


def _html_value(value: object) -> str:
    if isinstance(value, (CSet, CBag, CList)):
        rows = list(value)
        if rows and all(isinstance(row, Record) for row in rows):
            return _html_table(rows)
        items = "".join(f"<li>{_html_value(element)}</li>" for element in rows)
        return f"<ul>{items}</ul>"
    if isinstance(value, Record):
        return _html_table([value])
    if isinstance(value, Variant):
        return f"<i>{_html.escape(value.tag)}</i>: {_html_value(value.value)}"
    if isinstance(value, Unit):
        return "&mdash;"
    return _html.escape(str(value))


def _html_table(rows: Iterable[Record]) -> str:
    rows = list(rows)
    header: List[str] = []
    for row in rows:
        for label in row.labels:
            if label not in header:
                header.append(label)
    head = "".join(f"<th>{_html.escape(label)}</th>" for label in header)
    body_rows = []
    for row in rows:
        cells = "".join(f"<td>{_html_value(row.get(label, ''))}</td>" for label in header)
        body_rows.append(f"<tr>{cells}</tr>")
    return f"<table border=1><tr>{head}</tr>{''.join(body_rows)}</table>"
