"""Surface abstract syntax of CPL.

This is the tree the parser produces and the type checker annotates; it is
then *desugared* into NRC (:mod:`repro.core.cpl.desugar`) for optimization and
evaluation.  The surface syntax keeps comprehensions and patterns explicit —
the two things CPL adds over the algebra — exactly because the paper's
pipeline translates them away before rewriting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Program", "Statement", "Define", "ExprStatement",
    "SExpr", "SLit", "SVar", "SRecord", "SVariant", "SCollection",
    "SComprehension", "Qualifier", "Generator", "Filter",
    "SProject", "SApp", "SLambda", "LambdaClause", "SIf", "SBinOp", "SUnaryOp",
    "Pattern", "PVar", "PWildcard", "PLit", "PRecord", "PVariant", "PExpr",
]


class _Node:
    """Common behaviour: positional info and structural equality for tests."""

    _fields: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.line: int = 0
        self.column: int = 0

    def at(self, line: int, column: int) -> "_Node":
        self.line = line
        self.column = column
        return self

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return all(getattr(self, field) == getattr(other, field) for field in self._fields)

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + tuple(
            repr(getattr(self, field)) for field in self._fields
        ))

    def __repr__(self) -> str:
        inner = ", ".join(f"{field}={getattr(self, field)!r}" for field in self._fields)
        return f"{type(self).__name__}({inner})"


# ---------------------------------------------------------------------------
# Programs and statements
# ---------------------------------------------------------------------------

class Statement(_Node):
    """A top-level CPL statement."""


class Define(Statement):
    """``define name == expr`` — bind a name in the session environment."""

    _fields = ("name", "expr")

    def __init__(self, name: str, expr: "SExpr"):
        super().__init__()
        self.name = name
        self.expr = expr


class ExprStatement(Statement):
    """A bare expression evaluated for its value (a query)."""

    _fields = ("expr",)

    def __init__(self, expr: "SExpr"):
        super().__init__()
        self.expr = expr


class Program(_Node):
    """A sequence of statements, as accepted by a CPL session."""

    _fields = ("statements",)

    def __init__(self, statements: Sequence[Statement]):
        super().__init__()
        self.statements: List[Statement] = list(statements)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class SExpr(_Node):
    """Base class for surface expressions."""


class SLit(SExpr):
    """A literal: integer, float, string, boolean or unit (None)."""

    _fields = ("value",)

    def __init__(self, value: object):
        super().__init__()
        self.value = value


class SVar(SExpr):
    """A variable or defined-name reference."""

    _fields = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class SRecord(SExpr):
    """Record construction ``[l1 = e1, ..., ln = en]``."""

    _fields = ("fields",)

    def __init__(self, fields: Dict[str, SExpr]):
        super().__init__()
        self.fields = dict(fields)


class SVariant(SExpr):
    """Variant construction ``<tag = e>`` (or ``<tag>`` with a unit payload)."""

    _fields = ("tag", "value")

    def __init__(self, tag: str, value: Optional[SExpr] = None):
        super().__init__()
        self.tag = tag
        self.value = value


class SCollection(SExpr):
    """Collection literal ``{e1, ..., en}``, ``{| ... |}`` or ``[| ... |]``."""

    _fields = ("kind", "elements")

    def __init__(self, kind: str, elements: Sequence[SExpr]):
        super().__init__()
        self.kind = kind
        self.elements: List[SExpr] = list(elements)


class Qualifier(_Node):
    """A comprehension qualifier: a generator or a filter."""


class Generator(Qualifier):
    """``pattern <- source`` — bind the pattern to each element of the source."""

    _fields = ("pattern", "source")

    def __init__(self, pattern: "Pattern", source: SExpr):
        super().__init__()
        self.pattern = pattern
        self.source = source


class Filter(Qualifier):
    """A boolean condition restricting the comprehension."""

    _fields = ("condition",)

    def __init__(self, condition: SExpr):
        super().__init__()
        self.condition = condition


class SComprehension(SExpr):
    """``{ head | q1, ..., qn }`` (and the bag / list bracketed forms)."""

    _fields = ("kind", "head", "qualifiers")

    def __init__(self, kind: str, head: SExpr, qualifiers: Sequence[Qualifier]):
        super().__init__()
        self.kind = kind
        self.head = head
        self.qualifiers: List[Qualifier] = list(qualifiers)


class SProject(SExpr):
    """Record projection ``e.label``."""

    _fields = ("expr", "label")

    def __init__(self, expr: SExpr, label: str):
        super().__init__()
        self.expr = expr
        self.label = label


class SApp(SExpr):
    """Application ``f(e1, ..., en)``.

    CPL functions take a single argument; multi-argument calls are reserved for
    built-in primitives (``sum``, ``string_concat``, ...), which the desugarer
    turns into :class:`~repro.core.nrc.ast.PrimCall` nodes.
    """

    _fields = ("func", "args")

    def __init__(self, func: SExpr, args: Sequence[SExpr]):
        super().__init__()
        self.func = func
        self.args: List[SExpr] = list(args)


class LambdaClause(_Node):
    """One alternative of a function definition: ``pattern => body``."""

    _fields = ("pattern", "body")

    def __init__(self, pattern: "Pattern", body: SExpr):
        super().__init__()
        self.pattern = pattern
        self.body = body


class SLambda(SExpr):
    """``\\p1 => e1 | p2 => e2 | ...`` — a function given by pattern alternatives."""

    _fields = ("clauses",)

    def __init__(self, clauses: Sequence[LambdaClause]):
        super().__init__()
        self.clauses: List[LambdaClause] = list(clauses)


class SIf(SExpr):
    """``if c then e1 else e2``."""

    _fields = ("cond", "then_branch", "else_branch")

    def __init__(self, cond: SExpr, then_branch: SExpr, else_branch: SExpr):
        super().__init__()
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch


class SBinOp(SExpr):
    """A binary operator application (``=``, ``<>``, ``<``, ``+``, ``^``, ``and`` ...)."""

    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: SExpr, right: SExpr):
        super().__init__()
        self.op = op
        self.left = left
        self.right = right


class SUnaryOp(SExpr):
    """A unary operator application (``not``, ``-``)."""

    _fields = ("op", "operand")

    def __init__(self, op: str, operand: SExpr):
        super().__init__()
        self.op = op
        self.operand = operand


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

class Pattern(_Node):
    """Base class for CPL patterns (used in generators and lambda clauses)."""

    def bound_names(self) -> List[str]:
        """Names this pattern binds, in left-to-right order."""
        return []


class PVar(Pattern):
    """``\\x`` — bind the matched value to ``x``."""

    _fields = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def bound_names(self) -> List[str]:
        return [self.name]


class PWildcard(Pattern):
    """``_`` — match anything, bind nothing."""

    _fields = ()


class PLit(Pattern):
    """A literal pattern: matches only that constant (e.g. ``year = 1988``)."""

    _fields = ("value",)

    def __init__(self, value: object):
        super().__init__()
        self.value = value


class PRecord(Pattern):
    """``[l1 = p1, ..., ln = pn]`` or ``[l1 = p1, ...]`` (open, with ellipsis)."""

    _fields = ("fields", "open")

    def __init__(self, fields: Dict[str, Pattern], open: bool = False):
        super().__init__()
        self.fields = dict(fields)
        self.open = open

    def bound_names(self) -> List[str]:
        names: List[str] = []
        for pattern in self.fields.values():
            names.extend(pattern.bound_names())
        return names


class PVariant(Pattern):
    """``<tag = p>`` — matches only variants carrying ``tag``."""

    _fields = ("tag", "pattern")

    def __init__(self, tag: str, pattern: Optional[Pattern] = None):
        super().__init__()
        self.tag = tag
        self.pattern = pattern

    def bound_names(self) -> List[str]:
        return self.pattern.bound_names() if self.pattern is not None else []


class PExpr(Pattern):
    """An equality pattern: matches values equal to the result of ``expr``.

    This is how an already-bound variable in generator position behaves: the
    paper's ``x <- p.authors`` (with ``x`` bound by the enclosing function)
    *selects* elements of ``p.authors`` equal to ``x``, and the
    ``[name = n, sex = \\s, ...]`` pattern in the projection-optimization
    example tests the ``name`` field against the bound variable ``n``.
    """

    _fields = ("expr",)

    def __init__(self, expr: SExpr):
        super().__init__()
        self.expr = expr
