"""Recursive-descent parser for CPL.

The grammar follows the paper's examples::

    program      := statement (";" statement)* [";"]
    statement    := "define" IDENT "==" expr  |  expr
    expr         := lambda | "if" expr "then" expr "else" expr | orexpr
    lambda       := "\\" pattern "=>" expr ("|" pattern "=>" expr)*
    orexpr       := andexpr ("or" andexpr)*
    andexpr      := notexpr ("and" notexpr)*
    notexpr      := "not" notexpr | comparison
    comparison   := additive (("=" | "<>" | "<" | "<=" | ">" | ">=") additive)?
    additive     := multiplicative (("+" | "-" | "^") multiplicative)*
    multiplicative := unary (("*" | "/") unary)*
    unary        := "-" unary | "!" unary | postfix
    postfix      := primary ("." IDENT | "(" args ")")*
    primary      := literal | IDENT | "(" expr ")" | record | variant
                  | set/bag/list literal or comprehension
    record       := "[" [IDENT "=" expr ("," IDENT "=" expr)*] "]"
    variant      := "<" IDENT ["=" expr] ">"
    collection   := "{" [expr ("|" qualifiers | ("," expr)*)] "}"   (and {| |}, [| |])
    qualifier    := pattern "<-" expr  |  expr
    pattern      := "\\" IDENT | "_" | literal | record-pattern | variant-pattern | expr
    args         := expr ("," expr)*

Notes on the two ambiguities the grammar has, and how they are resolved:

* ``|`` separates lambda clauses *and* the head of a comprehension from its
  qualifiers.  The parser passes an ``allow_bar`` flag down; inside a
  comprehension head (and inside a lambda clause body that itself sits inside
  a comprehension) the flag is off, so the ``|`` belongs to the enclosing
  construct.  Multi-clause functions therefore need parentheses when written
  inside a comprehension head, which matches the paper's usage (multi-clause
  functions appear only in ``define``).
* In qualifier position the parser first tries ``pattern <- expr`` and
  backtracks to a boolean filter when no ``<-`` follows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CPLSyntaxError
from . import ast as S
from .lexer import Token, tokenize

__all__ = ["parse", "parse_expression", "Parser"]

_COMPARISON_OPS = {"=": "=", "<>": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ADDITIVE_OPS = {"+": "+", "-": "-", "^": "^"}
_MULTIPLICATIVE_OPS = {"*": "*", "/": "/"}

_COLLECTION_BRACKETS = {
    "{": ("}", "set"),
    "{|": ("|}", "bag"),
    "[|": ("|]", "list"),
}


def parse(text: str) -> S.Program:
    """Parse a CPL program (a sequence of statements)."""
    parser = Parser(tokenize(text))
    return parser.parse_program()


def parse_expression(text: str) -> S.SExpr:
    """Parse a single CPL expression."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expr(allow_bar=True)
    parser.expect_eof()
    return expr


class Parser:
    """A backtracking recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0
        # While parsing the payload of a variant literal/pattern, '>' closes
        # the variant rather than acting as the greater-than operator.  A
        # parenthesised payload restores normal operator parsing.
        self._angle_depth = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "EOF":
            self.position += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _check_symbol(self, value: str) -> bool:
        return self._check("SYMBOL", value)

    def _check_keyword(self, value: str) -> bool:
        return self._check("KEYWORD", value)

    def _accept_symbol(self, value: str) -> bool:
        if self._check_symbol(value):
            self._advance()
            return True
        return False

    def _accept_keyword(self, value: str) -> bool:
        if self._check_keyword(value):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise CPLSyntaxError(
                f"expected {expected!r} but found {token.value or token.kind!r}",
                token.line, token.column,
            )
        return self._advance()

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise CPLSyntaxError(
                f"unexpected trailing input starting at {token.value!r}",
                token.line, token.column,
            )

    def _error(self, message: str) -> CPLSyntaxError:
        token = self._peek()
        return CPLSyntaxError(message, token.line, token.column)

    # -- program / statements --------------------------------------------------

    def parse_program(self) -> S.Program:
        statements: List[S.Statement] = []
        while not self._check("EOF"):
            statements.append(self.parse_statement())
            while self._accept_symbol(";"):
                pass
        return S.Program(statements)

    def parse_statement(self) -> S.Statement:
        token = self._peek()
        if self._accept_keyword("define"):
            name_token = self._expect("IDENT")
            self._expect("SYMBOL", "==")
            expr = self.parse_expr(allow_bar=True)
            statement = S.Define(name_token.value, expr)
        else:
            statement = S.ExprStatement(self.parse_expr(allow_bar=True))
        statement.at(token.line, token.column)
        return statement

    # -- expressions ------------------------------------------------------------

    def parse_expr(self, allow_bar: bool) -> S.SExpr:
        token = self._peek()
        if self._is_lambda_start():
            return self._parse_lambda(allow_bar)
        if self._accept_keyword("if"):
            cond = self.parse_expr(allow_bar)
            self._expect("KEYWORD", "then")
            then_branch = self.parse_expr(allow_bar)
            self._expect("KEYWORD", "else")
            else_branch = self.parse_expr(allow_bar)
            return S.SIf(cond, then_branch, else_branch).at(token.line, token.column)
        return self._parse_or(allow_bar)

    def _is_lambda_start(self) -> bool:
        """Does a ``pattern => ...`` clause begin here?

        A function is written ``pattern => body | pattern => body | ...`` —
        the paper's ``\\x => e`` form is simply the case where the pattern is a
        binding pattern.  Detection backtracks: try a pattern and look for the
        ``=>`` arrow.
        """
        saved = self.position
        try:
            try:
                self.parse_pattern()
            except CPLSyntaxError:
                return False
            return self._check_symbol("=>")
        finally:
            self.position = saved

    def _parse_lambda(self, allow_bar: bool) -> S.SExpr:
        token = self._peek()
        clauses: List[S.LambdaClause] = []
        while True:
            pattern = self.parse_pattern()
            self._expect("SYMBOL", "=>")
            body = self.parse_expr(allow_bar=False)
            clauses.append(S.LambdaClause(pattern, body))
            if allow_bar and self._check_symbol("|") and self._lookahead_is_clause():
                self._advance()
                continue
            break
        return S.SLambda(clauses).at(token.line, token.column)

    def _lookahead_is_clause(self) -> bool:
        """After '|', does a `pattern => ...` clause follow (multi-clause define)?"""
        saved = self.position
        try:
            self._advance()  # skip '|'
            try:
                self.parse_pattern()
            except CPLSyntaxError:
                return False
            return self._check_symbol("=>")
        finally:
            self.position = saved

    def _parse_or(self, allow_bar: bool) -> S.SExpr:
        left = self._parse_and(allow_bar)
        while self._accept_keyword("or"):
            right = self._parse_and(allow_bar)
            left = S.SBinOp("or", left, right)
        return left

    def _parse_and(self, allow_bar: bool) -> S.SExpr:
        left = self._parse_not(allow_bar)
        while self._accept_keyword("and"):
            right = self._parse_not(allow_bar)
            left = S.SBinOp("and", left, right)
        return left

    def _parse_not(self, allow_bar: bool) -> S.SExpr:
        if self._accept_keyword("not"):
            return S.SUnaryOp("not", self._parse_not(allow_bar))
        return self._parse_comparison(allow_bar)

    def _parse_comparison(self, allow_bar: bool) -> S.SExpr:
        left = self._parse_additive(allow_bar)
        token = self._peek()
        if token.kind == "SYMBOL" and token.value in _COMPARISON_OPS:
            if self._angle_depth > 0 and token.value in (">", ">="):
                return left
            self._advance()
            right = self._parse_additive(allow_bar)
            return S.SBinOp(_COMPARISON_OPS[token.value], left, right)
        return left

    def _parse_additive(self, allow_bar: bool) -> S.SExpr:
        left = self._parse_multiplicative(allow_bar)
        while True:
            token = self._peek()
            if token.kind == "SYMBOL" and token.value in _ADDITIVE_OPS:
                self._advance()
                right = self._parse_multiplicative(allow_bar)
                left = S.SBinOp(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self, allow_bar: bool) -> S.SExpr:
        left = self._parse_unary(allow_bar)
        while True:
            token = self._peek()
            if token.kind == "SYMBOL" and token.value in _MULTIPLICATIVE_OPS:
                self._advance()
                right = self._parse_unary(allow_bar)
                left = S.SBinOp(token.value, left, right)
            else:
                return left

    def _parse_unary(self, allow_bar: bool) -> S.SExpr:
        if self._accept_symbol("-"):
            return S.SUnaryOp("-", self._parse_unary(allow_bar))
        if self._accept_symbol("!"):
            return S.SUnaryOp("!", self._parse_unary(allow_bar))
        return self._parse_postfix(allow_bar)

    def _parse_postfix(self, allow_bar: bool) -> S.SExpr:
        expr = self._parse_primary(allow_bar)
        while True:
            if self._check_symbol(".") and self._peek(1).kind == "IDENT":
                self._advance()
                label = self._advance().value
                expr = S.SProject(expr, label)
            elif self._check_symbol("("):
                self._advance()
                args: List[S.SExpr] = []
                if not self._check_symbol(")"):
                    args.append(self.parse_expr(allow_bar=True))
                    while self._accept_symbol(","):
                        args.append(self.parse_expr(allow_bar=True))
                self._expect("SYMBOL", ")")
                expr = S.SApp(expr, args)
            else:
                return expr

    def _parse_primary(self, allow_bar: bool) -> S.SExpr:
        token = self._peek()

        if token.kind == "INT":
            self._advance()
            return S.SLit(int(token.value)).at(token.line, token.column)
        if token.kind == "FLOAT":
            self._advance()
            return S.SLit(float(token.value)).at(token.line, token.column)
        if token.kind == "STRING":
            self._advance()
            return S.SLit(token.value).at(token.line, token.column)
        if token.kind == "KEYWORD" and token.value in ("true", "false"):
            self._advance()
            return S.SLit(token.value == "true").at(token.line, token.column)
        if token.kind == "IDENT":
            self._advance()
            return S.SVar(token.value).at(token.line, token.column)

        if self._accept_symbol("("):
            if self._accept_symbol(")"):
                return S.SLit(None).at(token.line, token.column)
            saved_depth = self._angle_depth
            self._angle_depth = 0
            expr = self.parse_expr(allow_bar=True)
            self._angle_depth = saved_depth
            self._expect("SYMBOL", ")")
            return expr

        if self._check_symbol("["):
            return self._parse_record_literal()
        if self._check_symbol("<"):
            return self._parse_variant_literal()
        for opener in _COLLECTION_BRACKETS:
            if self._check_symbol(opener):
                return self._parse_collection(opener)

        raise self._error(f"unexpected token {token.value or token.kind!r} in expression")

    def _parse_record_literal(self) -> S.SExpr:
        token = self._expect("SYMBOL", "[")
        fields = {}
        if not self._check_symbol("]"):
            while True:
                label = self._expect("IDENT").value
                self._expect("SYMBOL", "=")
                fields[label] = self.parse_expr(allow_bar=True)
                if not self._accept_symbol(","):
                    break
        self._expect("SYMBOL", "]")
        return S.SRecord(fields).at(token.line, token.column)

    def _parse_variant_literal(self) -> S.SExpr:
        token = self._expect("SYMBOL", "<")
        tag = self._expect("IDENT").value
        value: Optional[S.SExpr] = None
        if self._accept_symbol("="):
            self._angle_depth += 1
            try:
                value = self.parse_expr(allow_bar=True)
            finally:
                self._angle_depth -= 1
        self._expect("SYMBOL", ">")
        return S.SVariant(tag, value).at(token.line, token.column)

    def _parse_collection(self, opener: str) -> S.SExpr:
        closer, kind = _COLLECTION_BRACKETS[opener]
        token = self._expect("SYMBOL", opener)
        if self._accept_symbol(closer):
            return S.SCollection(kind, []).at(token.line, token.column)

        head = self.parse_expr(allow_bar=False)

        if self._accept_symbol("|"):
            # ``{e |}`` (no qualifiers) is allowed and means the singleton {e}.
            qualifiers = [] if self._check_symbol(closer) else self._parse_qualifiers(closer)
            self._expect("SYMBOL", closer)
            return S.SComprehension(kind, head, qualifiers).at(token.line, token.column)

        elements = [head]
        while self._accept_symbol(","):
            elements.append(self.parse_expr(allow_bar=False))
        self._expect("SYMBOL", closer)
        return S.SCollection(kind, elements).at(token.line, token.column)

    def _parse_qualifiers(self, closer: str) -> List[S.Qualifier]:
        qualifiers: List[S.Qualifier] = [self._parse_qualifier()]
        while self._accept_symbol(","):
            qualifiers.append(self._parse_qualifier())
        return qualifiers

    def _parse_qualifier(self) -> S.Qualifier:
        token = self._peek()
        saved = self.position
        try:
            pattern = self.parse_pattern()
            if self._accept_symbol("<-"):
                source = self.parse_expr(allow_bar=False)
                return S.Generator(pattern, source).at(token.line, token.column)
        except CPLSyntaxError:
            pass
        self.position = saved
        condition = self.parse_expr(allow_bar=False)
        if self._accept_symbol("<-"):
            # e.g. ``x <- p.authors`` with a bound variable, or a projection on
            # the left: an equality pattern generator.
            source = self.parse_expr(allow_bar=False)
            return S.Generator(S.PExpr(condition), source).at(token.line, token.column)
        return S.Filter(condition).at(token.line, token.column)

    # -- patterns -----------------------------------------------------------------

    def parse_pattern(self) -> S.Pattern:
        token = self._peek()

        if self._accept_symbol("\\"):
            name = self._expect("IDENT").value
            return S.PVar(name).at(token.line, token.column)
        if self._accept_symbol("_"):
            return S.PWildcard().at(token.line, token.column)
        if token.kind == "INT":
            self._advance()
            return S.PLit(int(token.value)).at(token.line, token.column)
        if token.kind == "FLOAT":
            self._advance()
            return S.PLit(float(token.value)).at(token.line, token.column)
        if token.kind == "STRING":
            self._advance()
            return S.PLit(token.value).at(token.line, token.column)
        if token.kind == "KEYWORD" and token.value in ("true", "false"):
            self._advance()
            return S.PLit(token.value == "true").at(token.line, token.column)
        if self._check_symbol("["):
            return self._parse_record_pattern()
        if self._check_symbol("<"):
            return self._parse_variant_pattern()
        if self._check_symbol("("):
            self._advance()
            pattern = self.parse_pattern()
            self._expect("SYMBOL", ")")
            return pattern
        raise self._error(f"expected a pattern, found {token.value or token.kind!r}")

    def _parse_record_pattern(self) -> S.Pattern:
        token = self._expect("SYMBOL", "[")
        fields = {}
        open_record = False
        if not self._check_symbol("]"):
            while True:
                if self._accept_symbol("..."):
                    open_record = True
                    break
                label = self._expect("IDENT").value
                self._expect("SYMBOL", "=")
                fields[label] = self._parse_field_pattern()
                if not self._accept_symbol(","):
                    break
        self._expect("SYMBOL", "]")
        return S.PRecord(fields, open=open_record).at(token.line, token.column)

    def _parse_field_pattern(self) -> S.Pattern:
        """A field value inside a record pattern: a sub-pattern or an equality expression."""
        saved = self.position
        try:
            pattern = self.parse_pattern()
            if self._check_symbol(",") or self._check_symbol("]"):
                return pattern
        except CPLSyntaxError:
            pass
        self.position = saved
        expr = self.parse_expr(allow_bar=False)
        return S.PExpr(expr)

    def _parse_variant_pattern(self) -> S.Pattern:
        token = self._expect("SYMBOL", "<")
        tag = self._expect("IDENT").value
        pattern: Optional[S.Pattern] = None
        if self._accept_symbol("="):
            pattern = self._parse_variant_payload_pattern()
        self._expect("SYMBOL", ">")
        return S.PVariant(tag, pattern).at(token.line, token.column)

    def _parse_variant_payload_pattern(self) -> S.Pattern:
        saved = self.position
        try:
            pattern = self.parse_pattern()
            if self._check_symbol(">"):
                return pattern
        except CPLSyntaxError:
            pass
        self.position = saved
        self._angle_depth += 1
        try:
            expr = self.parse_expr(allow_bar=False)
        finally:
            self._angle_depth -= 1
        return S.PExpr(expr)
