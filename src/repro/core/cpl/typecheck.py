"""Type inference for CPL.

The paper stresses that *"when dealing with biological data sources, static
type information is both available and useful in specifying and optimizing
transformations"*.  This module infers types for CPL surface expressions using
Hindley–Milner style unification extended with **row variables**, so that open
record patterns (``[title = \\t, ...]``) and partial variant knowledge get
principal types instead of errors.

The checker works on the surface AST (before desugaring), because that is
where patterns and comprehensions — the constructs whose typing rules are
interesting — still exist.  The optimizer also consults inferred types, e.g.
the homogeneous-projection fast path only applies when the collection's
element type is a record type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import types as T
from ..errors import CPLTypeError
from ..nrc.prims import PRIMITIVES
from . import ast as S

__all__ = ["TypeScheme", "TypeEnvironment", "TypeChecker", "infer_expression_type"]


class TypeScheme:
    """A (possibly) polymorphic type: ``forall vars. body``."""

    def __init__(self, variables: Tuple[object, ...], body: T.Type):
        self.variables = tuple(variables)
        self.body = body

    @classmethod
    def monotype(cls, ty: T.Type) -> "TypeScheme":
        return cls((), ty)

    def instantiate(self) -> T.Type:
        """Replace quantified variables by fresh ones."""
        if not self.variables:
            return self.body
        subst: T.Substitution = {}
        for variable in self.variables:
            if isinstance(variable, T.TypeVar):
                subst[variable] = T.fresh_type_var()
            elif isinstance(variable, T.RowVar):
                subst[variable] = ({}, T.fresh_row_var())
        return T.apply_substitution(self.body, subst)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TypeScheme({self.variables}, {self.body})"


class TypeEnvironment:
    """Maps names to type schemes, with lexical nesting."""

    def __init__(self, bindings: Optional[Dict[str, TypeScheme]] = None,
                 parent: Optional["TypeEnvironment"] = None):
        self.bindings = bindings or {}
        self.parent = parent

    def lookup(self, name: str) -> Optional[TypeScheme]:
        env: Optional[TypeEnvironment] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def bind(self, name: str, scheme: TypeScheme) -> None:
        self.bindings[name] = scheme

    def child(self, bindings: Optional[Dict[str, TypeScheme]] = None) -> "TypeEnvironment":
        return TypeEnvironment(bindings or {}, parent=self)


def _primitive_signature(name: str) -> Optional[T.Type]:
    """Ad-hoc typings for the primitives CPL programs call by name."""
    a = T.fresh_type_var()
    number = T.fresh_type_var()
    signatures: Dict[str, T.Type] = {
        "count": T.FunctionType(T.SetType(a), T.INT),
        "sum": T.FunctionType(T.SetType(number), T.FLOAT),
        "avg": T.FunctionType(T.SetType(number), T.FLOAT),
        "max": T.FunctionType(T.SetType(a), a),
        "min": T.FunctionType(T.SetType(a), a),
        "isempty": T.FunctionType(T.SetType(a), T.BOOL),
        "distinct": T.FunctionType(T.SetType(a), T.SetType(a)),
        "flatten": T.FunctionType(T.SetType(T.SetType(a)), T.SetType(a)),
        "string_length": T.FunctionType(T.STRING, T.INT),
        "string_upper": T.FunctionType(T.STRING, T.STRING),
        "string_lower": T.FunctionType(T.STRING, T.STRING),
        "string_of_int": T.FunctionType(T.INT, T.STRING),
        "int_of_string": T.FunctionType(T.STRING, T.INT),
    }
    return signatures.get(name)


class TypeChecker:
    """Infers CPL types for surface expressions."""

    def __init__(self, environment: Optional[TypeEnvironment] = None):
        self.environment = environment or TypeEnvironment()
        self.substitution: T.Substitution = {}

    # -- public API -----------------------------------------------------------

    def infer(self, expr: S.SExpr, environment: Optional[TypeEnvironment] = None) -> T.Type:
        """Infer and return the type of ``expr``."""
        env = environment or self.environment
        ty = self._infer(expr, env)
        return T.apply_substitution(ty, self.substitution)

    def define(self, name: str, expr: S.SExpr) -> T.Type:
        """Infer the type of a ``define`` body and bind the (generalised) scheme."""
        ty = self.infer(expr)
        scheme = self._generalise(ty)
        self.environment.bind(name, scheme)
        return ty

    def bind_value_type(self, name: str, ty: T.Type) -> None:
        """Declare the type of an externally supplied value (e.g. a data source)."""
        self.environment.bind(name, self._generalise(ty))

    def _generalise(self, ty: T.Type) -> TypeScheme:
        ty = T.apply_substitution(ty, self.substitution)
        variables = tuple(T.free_type_vars(ty))
        return TypeScheme(variables, ty)

    # -- unification helper -----------------------------------------------------

    def _unify(self, left: T.Type, right: T.Type, context: str) -> None:
        try:
            self.substitution = T.unify(left, right, self.substitution)
        except CPLTypeError as error:
            raise CPLTypeError(f"{context}: {error}")

    # -- inference ---------------------------------------------------------------

    def _infer(self, expr: S.SExpr, env: TypeEnvironment) -> T.Type:
        if isinstance(expr, S.SLit):
            return self._literal_type(expr.value)
        if isinstance(expr, S.SVar):
            return self._infer_var(expr, env)
        if isinstance(expr, S.SRecord):
            return T.RecordType({label: self._infer(value, env)
                                 for label, value in expr.fields.items()})
        if isinstance(expr, S.SVariant):
            payload = T.UNIT if expr.value is None else self._infer(expr.value, env)
            return T.VariantType({expr.tag: payload}, row=T.fresh_row_var())
        if isinstance(expr, S.SCollection):
            return self._infer_collection(expr, env)
        if isinstance(expr, S.SComprehension):
            return self._infer_comprehension(expr, env)
        if isinstance(expr, S.SProject):
            return self._infer_projection(expr, env)
        if isinstance(expr, S.SApp):
            return self._infer_application(expr, env)
        if isinstance(expr, S.SLambda):
            return self._infer_lambda(expr, env)
        if isinstance(expr, S.SIf):
            return self._infer_if(expr, env)
        if isinstance(expr, S.SBinOp):
            return self._infer_binop(expr, env)
        if isinstance(expr, S.SUnaryOp):
            return self._infer_unaryop(expr, env)
        raise CPLTypeError(f"cannot infer a type for {type(expr).__name__}")

    def _literal_type(self, value: object) -> T.Type:
        if isinstance(value, bool):
            return T.BOOL
        if isinstance(value, int):
            return T.INT
        if isinstance(value, float):
            return T.FLOAT
        if isinstance(value, str):
            return T.STRING
        if value is None:
            return T.UNIT
        raise CPLTypeError(f"unknown literal {value!r}")

    def _infer_var(self, expr: S.SVar, env: TypeEnvironment) -> T.Type:
        scheme = env.lookup(expr.name)
        if scheme is not None:
            return scheme.instantiate()
        signature = _primitive_signature(expr.name)
        if signature is not None:
            return signature
        if expr.name in PRIMITIVES:
            # An untyped primitive: give it a fresh function type.
            return T.FunctionType(T.fresh_type_var(), T.fresh_type_var())
        raise CPLTypeError(f"unbound variable {expr.name!r}")

    def _infer_collection(self, expr: S.SCollection, env: TypeEnvironment) -> T.Type:
        element = T.fresh_type_var()
        for item in expr.elements:
            self._unify(element, self._infer(item, env),
                        "collection elements must share a type")
        return self._collection_type(expr.kind, element)

    @staticmethod
    def _collection_type(kind: str, element: T.Type) -> T.Type:
        constructor = {"set": T.SetType, "bag": T.BagType, "list": T.ListType}[kind]
        return constructor(element)

    def _infer_comprehension(self, expr: S.SComprehension, env: TypeEnvironment) -> T.Type:
        scope = env.child()
        for qualifier in expr.qualifiers:
            if isinstance(qualifier, S.Filter):
                condition_type = self._infer(qualifier.condition, scope)
                self._unify(condition_type, T.BOOL, "comprehension filter must be boolean")
            elif isinstance(qualifier, S.Generator):
                source_type = self._infer(qualifier.source, scope)
                element = T.fresh_type_var()
                self._unify_generator_source(source_type, element)
                self._bind_pattern(qualifier.pattern, element, scope)
        head_type = self._infer(expr.head, scope)
        return self._collection_type(expr.kind, head_type)

    def _unify_generator_source(self, source_type: T.Type, element: T.Type) -> None:
        source_type = T.apply_substitution(source_type, self.substitution)
        # A generator may draw from a set, bag or list; try each in turn.
        for constructor in (T.SetType, T.BagType, T.ListType):
            try:
                self.substitution = T.unify(source_type, constructor(element), self.substitution)
                return
            except CPLTypeError:
                continue
        raise CPLTypeError(f"generator source must be a collection, got {source_type}")

    def _infer_projection(self, expr: S.SProject, env: TypeEnvironment) -> T.Type:
        subject_type = self._infer(expr.expr, env)
        field_type = T.fresh_type_var()
        expected = T.RecordType({expr.label: field_type}, row=T.fresh_row_var())
        self._unify(subject_type, expected,
                    f"projection .{expr.label} requires a record with that field")
        return field_type

    def _infer_application(self, expr: S.SApp, env: TypeEnvironment) -> T.Type:
        if (isinstance(expr.func, S.SVar) and expr.func.name == "fold"
                and env.lookup(expr.func.name) is None and len(expr.args) == 3):
            return self._infer_fold(expr, env)
        function_type = self._infer(expr.func, env)
        if not expr.args:
            result = T.fresh_type_var()
            self._unify(function_type, T.FunctionType(T.UNIT, result), "application")
            return result
        for arg in expr.args:
            argument_type = self._infer(arg, env)
            result = T.fresh_type_var()
            self._unify(function_type, T.FunctionType(argument_type, result),
                        "function applied to an argument of the wrong type")
            function_type = result
        return function_type

    def _infer_fold(self, expr: S.SApp, env: TypeEnvironment) -> T.Type:
        """``fold(f, init, coll)`` has type ``b`` when ``f : b -> a -> b``,
        ``init : b`` and ``coll`` is a collection of ``a``."""
        combiner_type = self._infer(expr.args[0], env)
        accumulator_type = self._infer(expr.args[1], env)
        source_type = self._infer(expr.args[2], env)
        element = T.fresh_type_var()
        self._unify_generator_source(source_type, element)
        expected = T.FunctionType(accumulator_type, T.FunctionType(element, accumulator_type))
        self._unify(combiner_type, expected,
                    "fold combiner must have type acc -> element -> acc")
        return T.apply_substitution(accumulator_type, self.substitution)

    def _infer_lambda(self, expr: S.SLambda, env: TypeEnvironment) -> T.Type:
        argument = T.fresh_type_var()
        result = T.fresh_type_var()
        for clause in expr.clauses:
            scope = env.child()
            self._bind_pattern(clause.pattern, argument, scope)
            body_type = self._infer(clause.body, scope)
            self._unify(result, body_type, "function alternatives must return the same type")
        return T.FunctionType(argument, result)

    def _infer_if(self, expr: S.SIf, env: TypeEnvironment) -> T.Type:
        self._unify(self._infer(expr.cond, env), T.BOOL, "if condition must be boolean")
        then_type = self._infer(expr.then_branch, env)
        else_type = self._infer(expr.else_branch, env)
        self._unify(then_type, else_type, "if branches must have the same type")
        return then_type

    _NUMERIC_OPS = {"+", "-", "*", "/"}
    _COMPARISON_OPS = {"<", "<=", ">", ">="}

    def _infer_binop(self, expr: S.SBinOp, env: TypeEnvironment) -> T.Type:
        left = self._infer(expr.left, env)
        right = self._infer(expr.right, env)
        if expr.op in ("and", "or"):
            self._unify(left, T.BOOL, f"{expr.op} expects booleans")
            self._unify(right, T.BOOL, f"{expr.op} expects booleans")
            return T.BOOL
        if expr.op in ("=", "<>"):
            self._unify(left, right, "equality compares values of the same type")
            return T.BOOL
        if expr.op in self._COMPARISON_OPS:
            self._unify(left, right, "comparison operands must share a type")
            return T.BOOL
        if expr.op in self._NUMERIC_OPS:
            self._unify(left, right, "arithmetic operands must share a type")
            return left
        if expr.op == "^":
            self._unify(left, T.STRING, "^ concatenates strings")
            self._unify(right, T.STRING, "^ concatenates strings")
            return T.STRING
        raise CPLTypeError(f"unknown operator {expr.op!r}")

    def _infer_unaryop(self, expr: S.SUnaryOp, env: TypeEnvironment) -> T.Type:
        operand = self._infer(expr.operand, env)
        if expr.op == "not":
            self._unify(operand, T.BOOL, "not expects a boolean")
            return T.BOOL
        if expr.op == "-":
            return operand
        if expr.op == "!":
            target = T.fresh_type_var()
            self._unify(operand, T.RefType(target), "! dereferences a reference")
            return target
        raise CPLTypeError(f"unknown unary operator {expr.op!r}")

    # -- patterns ------------------------------------------------------------------

    def _bind_pattern(self, pattern: S.Pattern, subject: T.Type, env: TypeEnvironment) -> None:
        """Unify the pattern's shape with ``subject`` and bind its variables in ``env``."""
        if isinstance(pattern, S.PVar):
            env.bind(pattern.name, TypeScheme.monotype(subject))
            return
        if isinstance(pattern, S.PWildcard):
            return
        if isinstance(pattern, S.PLit):
            self._unify(subject, self._literal_type(pattern.value),
                        "literal pattern type mismatch")
            return
        if isinstance(pattern, S.PExpr):
            self._unify(subject, self._infer(pattern.expr, env),
                        "equality pattern type mismatch")
            return
        if isinstance(pattern, S.PRecord):
            field_types: Dict[str, T.Type] = {}
            for label in pattern.fields:
                field_types[label] = T.fresh_type_var()
            row = T.fresh_row_var() if pattern.open else None
            self._unify(subject, T.RecordType(field_types, row),
                        "record pattern does not match the subject's fields")
            for label, sub_pattern in pattern.fields.items():
                self._bind_pattern(sub_pattern, field_types[label], env)
            return
        if isinstance(pattern, S.PVariant):
            payload = T.fresh_type_var()
            expected = T.VariantType({pattern.tag: payload}, row=T.fresh_row_var())
            self._unify(subject, expected, "variant pattern tag not present in subject type")
            if pattern.pattern is not None:
                self._bind_pattern(pattern.pattern, payload, env)
            return
        raise CPLTypeError(f"unknown pattern type {type(pattern).__name__}")


def infer_expression_type(text: str,
                          bindings: Optional[Dict[str, T.Type]] = None) -> T.Type:
    """Parse ``text`` and infer its type, with ``bindings`` naming known sources.

    Convenience wrapper used throughout the tests and examples::

        infer_expression_type("{p.title | \\p <- DB}",
                              {"DB": parse_type("{[title: string, year: int]}")})
    """
    from .parser import parse_expression

    checker = TypeChecker()
    for name, ty in (bindings or {}).items():
        checker.bind_value_type(name, ty)
    return checker.infer(parse_expression(text))
