"""The CPL lexer.

Token classes:

* ``IDENT`` — identifiers and field labels.  Following the paper's examples
  (``locus-symbol``, ``medline-jta``, ``GDB-Tab``) hyphens are allowed *inside*
  identifiers: a ``-`` directly between two identifier characters is part of
  the name.  Subtraction therefore must be written with spaces (``a - b``),
  which matches how the paper writes arithmetic.
* ``INT``, ``FLOAT``, ``STRING`` — literals.  Strings are double-quoted with
  ``\\"``, ``\\\\``, ``\\n`` and ``\\t`` escapes.
* ``KEYWORD`` — ``define``, ``if``, ``then``, ``else``, ``true``, ``false``,
  ``and``, ``or``, ``not``, ``in``, ``let``.
* punctuation and operators, longest-match first: ``{|  |}  [|  |]  <-  <=  >=
  <>  ==  =>  ...  ^  !`` and the single-character symbols.

Comments run from ``--`` to the end of the line.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from ..errors import CPLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


KEYWORDS = {
    "define", "if", "then", "else", "true", "false", "and", "or", "not",
    "let", "in",
}

# Multi-character symbols, longest first so greedy matching is correct.
_SYMBOLS = [
    "{|", "|}", "[|", "|]", "...", "<-", "<=", ">=", "<>", "==", "=>",
    "{", "}", "[", "]", "<", ">", "(", ")", ",", ".", ";", "|", "\\",
    "=", "+", "-", "*", "/", "^", "!", "_",
]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789'")

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def tokenize(text: str) -> List[Token]:
    """Tokenise CPL source text, raising :class:`CPLSyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        char = text[pos]

        if char == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        if text.startswith("--", pos):
            end = text.find("\n", pos)
            pos = length if end == -1 else end
            continue

        if char == '"':
            token, pos = _lex_string(text, pos, line, column())
            yield token
            continue

        if char.isdigit():
            token, pos = _lex_number(text, pos, line, column())
            yield token
            continue

        if char in _IDENT_START:
            token, pos = _lex_identifier(text, pos, line, column())
            yield token
            continue

        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                # '_' alone is the wildcard; '_' followed by identifier chars is
                # an identifier and was handled above.
                yield Token("SYMBOL", symbol, line, column())
                pos += len(symbol)
                matched = True
                break
        if matched:
            continue

        raise CPLSyntaxError(f"unexpected character {char!r}", line, column())

    yield Token("EOF", "", line, column())


def _lex_string(text: str, pos: int, line: int, column: int):
    start = pos
    pos += 1
    parts: List[str] = []
    while pos < len(text):
        char = text[pos]
        if char == '"':
            return Token("STRING", "".join(parts), line, column), pos + 1
        if char == "\n":
            raise CPLSyntaxError("unterminated string literal", line, column)
        if char == "\\":
            if pos + 1 >= len(text):
                raise CPLSyntaxError("unterminated escape sequence", line, column)
            escape = text[pos + 1]
            if escape not in _ESCAPES:
                raise CPLSyntaxError(f"unknown escape sequence \\{escape}", line, column)
            parts.append(_ESCAPES[escape])
            pos += 2
            continue
        parts.append(char)
        pos += 1
    raise CPLSyntaxError("unterminated string literal", line, column)


def _lex_number(text: str, pos: int, line: int, column: int):
    start = pos
    while pos < len(text) and text[pos].isdigit():
        pos += 1
    is_float = False
    if pos < len(text) and text[pos] == "." and pos + 1 < len(text) and text[pos + 1].isdigit():
        is_float = True
        pos += 1
        while pos < len(text) and text[pos].isdigit():
            pos += 1
    if pos < len(text) and text[pos] in "eE":
        lookahead = pos + 1
        if lookahead < len(text) and text[lookahead] in "+-":
            lookahead += 1
        if lookahead < len(text) and text[lookahead].isdigit():
            is_float = True
            pos = lookahead
            while pos < len(text) and text[pos].isdigit():
                pos += 1
    value = text[start:pos]
    kind = "FLOAT" if is_float else "INT"
    return Token(kind, value, line, column), pos


def _lex_identifier(text: str, pos: int, line: int, column: int):
    start = pos
    pos += 1
    while pos < len(text):
        char = text[pos]
        if char in _IDENT_CONT:
            pos += 1
            continue
        # A hyphen joins two identifier characters into one hyphenated name
        # (e.g. locus-symbol); otherwise it is the minus operator.
        if char == "-" and pos + 1 < len(text) and text[pos + 1] in _IDENT_CONT:
            pos += 2
            continue
        break
    name = text[start:pos]
    if name == "_":
        return Token("SYMBOL", "_", line, column), pos
    if name in KEYWORDS:
        return Token("KEYWORD", name, line, column), pos
    return Token("IDENT", name, line, column), pos
