"""Core of the reproduction: the CPL language, the NRC algebra, and the optimizer.

This package is the paper's primary contribution.  The usual import surface:

* :mod:`repro.core.types` — the nested type system (sets, bags, lists,
  records, variants, references),
* :mod:`repro.core.values` — the corresponding value model,
* :mod:`repro.core.cpl` — parser, type inference and desugarer for CPL,
* :mod:`repro.core.nrc` — the monad algebra, its evaluator and rewrite engine,
* :mod:`repro.core.optimizer` — the paper's rule sets (monadic rules,
  pushdown, joins, caching, parallelism, projections).
"""

from . import types
from .errors import (
    ReproError,
    CPLSyntaxError,
    CPLTypeError,
    EvaluationError,
    DriverError,
)
from .records import Record, RecordDirectory, ProjectionCursor
from .values import CSet, CBag, CList, Variant, Ref, Unit, UNIT_VALUE, from_python, to_python

__all__ = [
    "types",
    "ReproError", "CPLSyntaxError", "CPLTypeError", "EvaluationError", "DriverError",
    "Record", "RecordDirectory", "ProjectionCursor",
    "CSet", "CBag", "CList", "Variant", "Ref", "Unit", "UNIT_VALUE",
    "from_python", "to_python",
]
