"""Abstract syntax of NRC, the monad algebra CPL is compiled into.

The central construct is :class:`Ext` — the paper writes it
``U{ e1 | \\x <- e2 }`` — whose meaning is the union of ``e1[o/x]`` for every
element ``o`` of the collection ``e2``.  Everything a comprehension can say is
said with ``Ext``, ``Singleton``, ``Empty``, ``Union`` and ``IfThenElse``
(Wadler's translation), and the optimizer's rewrite rules are stated on these
nodes.

A few nodes go beyond the textbook calculus because the paper's system needs
them:

* :class:`Scan` — a request to an external driver (a Sybase SQL query, an
  Entrez index lookup, an ACE class scan ...).  Pushdown optimizations work by
  rewriting comprehensions *around* a ``Scan`` into a richer request *inside*
  it.
* :class:`Join` — the "non-monadic" local join operators of Section 4
  (blocked nested-loop and indexed blocked nested-loop), introduced by the
  join rule set.
* :class:`Cached` — marks a subexpression whose value should be computed once
  and reused (the inner-subquery cache).
* :class:`Deref` — dereferencing for sources with object identity.

All nodes are immutable; structural equality and hashing are provided so the
rewrite engine can detect fixpoints.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import NRCError

__all__ = [
    "Expr", "Const", "Var", "Lam", "Apply", "RecordExpr", "Project",
    "VariantExpr", "Case", "CaseBranch", "Empty", "Singleton", "Union", "Ext",
    "Fold", "IfThenElse", "PrimCall", "Let", "Deref", "Scan", "Join", "Cached",
    "fresh_var", "free_variables", "substitute", "node_count",
]

_var_counter = itertools.count(1)

COLLECTION_KINDS = ("set", "bag", "list")


def fresh_var(prefix: str = "v") -> str:
    """Return a fresh variable name, globally unique within the process."""
    return f"%{prefix}{next(_var_counter)}"


class Expr:
    """Base class of all NRC expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        """Return immediate sub-expressions (in a stable order)."""
        raise NotImplementedError

    def rebuild(self, children: Sequence["Expr"]) -> "Expr":
        """Return a copy of this node with ``children`` substituted for the old ones."""
        raise NotImplementedError

    # -- structural equality -------------------------------------------------

    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return self.pretty()

    def pretty(self) -> str:
        """Render a readable (roughly CPL-flavoured) form of the expression."""
        from .printer import pretty_expr

        return pretty_expr(self)


class Const(Expr):
    """A literal constant (bool, int, float, string, unit, or a prebuilt value)."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return self

    def _key(self) -> Tuple:
        try:
            hash(self.value)
            return (self.value,)
        except TypeError:
            return (id(self.value),)


class Var(Expr):
    """A variable reference."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return self

    def _key(self) -> Tuple:
        return (self.name,)


class Lam(Expr):
    """A single-argument function ``\\param => body``."""

    __slots__ = ("param", "body")

    def __init__(self, param: str, body: Expr):
        self.param = param
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Lam(self.param, children[0])

    def _key(self) -> Tuple:
        return (self.param, self.body)


class Apply(Expr):
    """Function application ``func(arg)``."""

    __slots__ = ("func", "arg")

    def __init__(self, func: Expr, arg: Expr):
        self.func = func
        self.arg = arg

    def children(self) -> Tuple[Expr, ...]:
        return (self.func, self.arg)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Apply(children[0], children[1])

    def _key(self) -> Tuple:
        return (self.func, self.arg)


class RecordExpr(Expr):
    """Record construction ``[l1 = e1, ..., ln = en]``."""

    __slots__ = ("fields",)

    def __init__(self, fields: Mapping[str, Expr]):
        self.fields: Dict[str, Expr] = dict(fields)

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.fields.values())

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return RecordExpr(dict(zip(self.fields.keys(), children)))

    def _key(self) -> Tuple:
        return tuple(sorted(self.fields.items()))


class Project(Expr):
    """Record projection ``expr.label``."""

    __slots__ = ("expr", "label")

    def __init__(self, expr: Expr, label: str):
        self.expr = expr
        self.label = label

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Project(children[0], self.label)

    def _key(self) -> Tuple:
        return (self.expr, self.label)


class VariantExpr(Expr):
    """Variant injection ``<tag = expr>``."""

    __slots__ = ("tag", "expr")

    def __init__(self, tag: str, expr: Expr):
        self.tag = tag
        self.expr = expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return VariantExpr(self.tag, children[0])

    def _key(self) -> Tuple:
        return (self.tag, self.expr)


class CaseBranch:
    """One branch of a :class:`Case`: bind ``var`` to the payload of ``tag`` and run ``body``."""

    __slots__ = ("tag", "var", "body")

    def __init__(self, tag: str, var: str, body: Expr):
        self.tag = tag
        self.var = var
        self.body = body

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CaseBranch)
            and (self.tag, self.var, self.body) == (other.tag, other.var, other.body)
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.var, self.body))

    def __repr__(self) -> str:
        return f"<{self.tag}=\\{self.var}> => {self.body!r}"


class Case(Expr):
    """Case analysis on a variant value.

    ``default`` (if present) is a ``(var, body)`` pair applied to the whole
    variant when no branch matches; without it an unmatched tag is an
    evaluation error.
    """

    __slots__ = ("subject", "branches", "default")

    def __init__(self, subject: Expr, branches: Sequence[CaseBranch],
                 default: Optional[Tuple[str, Expr]] = None):
        self.subject = subject
        self.branches: Tuple[CaseBranch, ...] = tuple(branches)
        self.default = default

    def children(self) -> Tuple[Expr, ...]:
        result: List[Expr] = [self.subject]
        result.extend(branch.body for branch in self.branches)
        if self.default is not None:
            result.append(self.default[1])
        return tuple(result)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        subject = children[0]
        bodies = children[1:1 + len(self.branches)]
        branches = [
            CaseBranch(branch.tag, branch.var, body)
            for branch, body in zip(self.branches, bodies)
        ]
        default = self.default
        if default is not None:
            default = (default[0], children[-1])
        return Case(subject, branches, default)

    def _key(self) -> Tuple:
        return (self.subject, self.branches, self.default)


class Empty(Expr):
    """The empty collection ``{}``, ``{||}`` or ``[||]`` of the given kind."""

    __slots__ = ("kind",)

    def __init__(self, kind: str = "set"):
        if kind not in COLLECTION_KINDS:
            raise NRCError(f"unknown collection kind {kind!r}")
        self.kind = kind

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return self

    def _key(self) -> Tuple:
        return (self.kind,)


class Singleton(Expr):
    """The singleton collection ``{e}`` of the given kind."""

    __slots__ = ("kind", "expr")

    def __init__(self, expr: Expr, kind: str = "set"):
        if kind not in COLLECTION_KINDS:
            raise NRCError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.expr = expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Singleton(children[0], self.kind)

    def _key(self) -> Tuple:
        return (self.kind, self.expr)


class Union(Expr):
    """Union (set/bag) or concatenation (list) of two collections of the same kind."""

    __slots__ = ("kind", "left", "right")

    def __init__(self, left: Expr, right: Expr, kind: str = "set"):
        if kind not in COLLECTION_KINDS:
            raise NRCError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Union(children[0], children[1], self.kind)

    def _key(self) -> Tuple:
        return (self.kind, self.left, self.right)


class Ext(Expr):
    """The ``U{ body | \\var <- source }`` construct (flat-map / monad extension).

    Its value is the union (of the node's ``kind``) of ``body[o/var]`` for each
    element ``o`` of ``source``.  ``body`` must itself evaluate to a collection
    of kind ``kind``.
    """

    __slots__ = ("kind", "var", "body", "source")

    def __init__(self, var: str, body: Expr, source: Expr, kind: str = "set"):
        if kind not in COLLECTION_KINDS:
            raise NRCError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.var = var
        self.body = body
        self.source = source

    def children(self) -> Tuple[Expr, ...]:
        return (self.body, self.source)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Ext(self.var, children[0], children[1], self.kind)

    def _key(self) -> Tuple:
        return (self.kind, self.var, self.body, self.source)


class Fold(Expr):
    """Structural recursion over a collection: ``fold(func, init, source)``.

    ``func`` must evaluate to a curried two-argument function; the node's value
    is ``f(... f(f(init, o1), o2) ..., on)`` for the elements ``o1 .. on`` of
    ``source``.  This is the "more powerful programming paradigm on collection
    types" of Section 2 — comprehensions alone cannot express aggregates or
    transitive closure, structural recursion can.

    For set and bag sources the result is only well defined when ``func`` is
    insensitive to the order in which elements arrive (and, for sets, to
    duplicates); :mod:`repro.core.nrc.structural` provides spot-check helpers
    for those conditions.  Aggregates such as ``sum`` and ``count`` are the
    canonical well-defined instances.
    """

    __slots__ = ("func", "init", "source")

    def __init__(self, func: Expr, init: Expr, source: Expr):
        self.func = func
        self.init = init
        self.source = source

    def children(self) -> Tuple[Expr, ...]:
        return (self.func, self.init, self.source)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Fold(children[0], children[1], children[2])

    def _key(self) -> Tuple:
        return (self.func, self.init, self.source)


class IfThenElse(Expr):
    """Conditional ``if cond then then_branch else else_branch``."""

    __slots__ = ("cond", "then_branch", "else_branch")

    def __init__(self, cond: Expr, then_branch: Expr, else_branch: Expr):
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then_branch, self.else_branch)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return IfThenElse(children[0], children[1], children[2])

    def _key(self) -> Tuple:
        return (self.cond, self.then_branch, self.else_branch)


class PrimCall(Expr):
    """A call to a built-in primitive (``eq``, ``and``, ``+``, ``count`` ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.name = name
        self.args: Tuple[Expr, ...] = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return PrimCall(self.name, tuple(children))

    def _key(self) -> Tuple:
        return (self.name, self.args)


class Let(Expr):
    """``let var = value in body`` — used to share subexpression results."""

    __slots__ = ("var", "value", "body")

    def __init__(self, var: str, value: Expr, body: Expr):
        self.var = var
        self.value = value
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.value, self.body)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Let(self.var, children[0], children[1])

    def _key(self) -> Tuple:
        return (self.var, self.value, self.body)


class Deref(Expr):
    """Dereference an object identity (reference type)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Deref(children[0])

    def _key(self) -> Tuple:
        return (self.expr,)


class Scan(Expr):
    """A request to an external driver.

    ``driver`` names a driver registered with the Kleisli engine; ``request``
    is a plain dictionary in that driver's request vocabulary (e.g. ``{"table":
    "locus"}`` or ``{"query": "select ..."}`` for the relational driver,
    ``{"db": "na", "select": ..., "path": ...}`` for the Entrez driver).
    Argument expressions that must be evaluated before the request is issued
    (e.g. an accession number computed by the outer query) live in ``args`` and
    are spliced into the request under their key at evaluation time.

    Pushdown optimizations rewrite the *request* — turning a comprehension over
    ``Scan({"table": "locus"})`` into ``Scan({"query": "select ... where ..."})``
    — so less data crosses the driver boundary.
    """

    __slots__ = ("driver", "request", "args", "kind")

    def __init__(self, driver: str, request: Mapping[str, object],
                 args: Optional[Mapping[str, Expr]] = None, kind: str = "set"):
        self.driver = driver
        self.request: Dict[str, object] = dict(request)
        self.args: Dict[str, Expr] = dict(args or {})
        self.kind = kind

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.args.values())

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Scan(self.driver, self.request, dict(zip(self.args.keys(), children)), self.kind)

    def with_request(self, request: Mapping[str, object]) -> "Scan":
        return Scan(self.driver, request, self.args, self.kind)

    def _key(self) -> Tuple:
        return (
            self.driver,
            tuple(sorted((k, _freeze(v)) for k, v in self.request.items())),
            tuple(sorted(self.args.items())),
            self.kind,
        )


def _freeze(value: object) -> object:
    """Make request payload values hashable for structural comparison."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


class Join(Expr):
    """A local join operator introduced by the join rule set (Section 4).

    ``method`` is ``"blocked"`` (blocked nested-loop join) or ``"indexed"``
    (indexed blocked nested-loop join with an index built on the fly).  The
    join pairs every element ``outer_var`` of ``outer`` with every element
    ``inner_var`` of ``inner`` satisfying ``condition`` and evaluates ``body``
    for the pair, unioning the results.

    ``outer_key`` / ``inner_key`` are the equi-join key expressions the indexed
    method hashes on; they are ``None`` for the blocked method.
    """

    __slots__ = ("method", "outer_var", "outer", "inner_var", "inner",
                 "condition", "body", "outer_key", "inner_key", "kind", "block_size")

    def __init__(self, method: str, outer_var: str, outer: Expr, inner_var: str,
                 inner: Expr, condition: Optional[Expr], body: Expr,
                 outer_key: Optional[Expr] = None, inner_key: Optional[Expr] = None,
                 kind: str = "set", block_size: int = 256):
        if method not in ("blocked", "indexed"):
            raise NRCError(f"unknown join method {method!r}")
        self.method = method
        self.outer_var = outer_var
        self.outer = outer
        self.inner_var = inner_var
        self.inner = inner
        self.condition = condition
        self.body = body
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.kind = kind
        self.block_size = block_size

    def children(self) -> Tuple[Expr, ...]:
        result: List[Expr] = [self.outer, self.inner, self.body]
        if self.condition is not None:
            result.append(self.condition)
        if self.outer_key is not None:
            result.append(self.outer_key)
        if self.inner_key is not None:
            result.append(self.inner_key)
        return tuple(result)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        children = list(children)
        outer, inner, body = children[0], children[1], children[2]
        index = 3
        condition = None
        if self.condition is not None:
            condition = children[index]
            index += 1
        outer_key = None
        if self.outer_key is not None:
            outer_key = children[index]
            index += 1
        inner_key = None
        if self.inner_key is not None:
            inner_key = children[index]
            index += 1
        return Join(self.method, self.outer_var, outer, self.inner_var, inner,
                    condition, body, outer_key, inner_key, self.kind, self.block_size)

    def _key(self) -> Tuple:
        return (self.method, self.outer_var, self.outer, self.inner_var, self.inner,
                self.condition, self.body, self.outer_key, self.inner_key, self.kind)


class Cached(Expr):
    """Evaluate ``expr`` once and reuse the value on subsequent evaluations.

    Introduced by the caching rule set around inner subqueries that do not
    depend on the outer loop variable.  ``key`` identifies the cache entry.
    """

    __slots__ = ("expr", "key")

    def __init__(self, expr: Expr, key: Optional[str] = None):
        self.expr = expr
        self.key = key or fresh_var("cache")

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return Cached(children[0], self.key)

    def _key(self) -> Tuple:
        return (self.expr,)


# ---------------------------------------------------------------------------
# Free variables and capture-avoiding substitution
# ---------------------------------------------------------------------------

def free_variables(expr: Expr) -> frozenset:
    """Return the free variable names of ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Lam):
        return free_variables(expr.body) - {expr.param}
    if isinstance(expr, Ext):
        return (free_variables(expr.body) - {expr.var}) | free_variables(expr.source)
    if isinstance(expr, Let):
        return free_variables(expr.value) | (free_variables(expr.body) - {expr.var})
    if isinstance(expr, Join):
        bound = {expr.outer_var, expr.inner_var}
        free = free_variables(expr.outer)
        free |= free_variables(expr.inner) - {expr.outer_var}
        free |= free_variables(expr.body) - bound
        if expr.condition is not None:
            free |= free_variables(expr.condition) - bound
        if expr.outer_key is not None:
            free |= free_variables(expr.outer_key) - {expr.outer_var}
        if expr.inner_key is not None:
            free |= free_variables(expr.inner_key) - {expr.inner_var}
        return free
    if isinstance(expr, Case):
        free = free_variables(expr.subject)
        for branch in expr.branches:
            free |= free_variables(branch.body) - {branch.var}
        if expr.default is not None:
            var, body = expr.default
            free |= free_variables(body) - {var}
        return free
    result: frozenset = frozenset()
    for child in expr.children():
        result |= free_variables(child)
    return result


def substitute(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution of ``replacement`` for free ``name`` in ``expr``."""
    if isinstance(expr, Var):
        return replacement if expr.name == name else expr
    if isinstance(expr, Lam):
        return _subst_binder_1(expr, name, replacement, "param", "body",
                               lambda p, b: Lam(p, b))
    if isinstance(expr, Let):
        new_value = substitute(expr.value, name, replacement)
        if expr.var == name:
            return Let(expr.var, new_value, expr.body)
        var, body = _rename_if_captured(expr.var, expr.body, replacement)
        return Let(var, new_value, substitute(body, name, replacement))
    if isinstance(expr, Ext):
        new_source = substitute(expr.source, name, replacement)
        if expr.var == name:
            return Ext(expr.var, expr.body, new_source, expr.kind)
        var, body = _rename_if_captured(expr.var, expr.body, replacement)
        return Ext(var, substitute(body, name, replacement), new_source, expr.kind)
    if isinstance(expr, Case):
        new_subject = substitute(expr.subject, name, replacement)
        new_branches = []
        for branch in expr.branches:
            if branch.var == name:
                new_branches.append(CaseBranch(branch.tag, branch.var, branch.body))
                continue
            var, body = _rename_if_captured(branch.var, branch.body, replacement)
            new_branches.append(CaseBranch(branch.tag, var, substitute(body, name, replacement)))
        new_default = expr.default
        if new_default is not None:
            dvar, dbody = new_default
            if dvar != name:
                dvar, dbody = _rename_if_captured(dvar, dbody, replacement)
                dbody = substitute(dbody, name, replacement)
            new_default = (dvar, dbody)
        return Case(new_subject, new_branches, new_default)
    if isinstance(expr, Join):
        new_outer = substitute(expr.outer, name, replacement)
        # inner may reference outer_var; treat binder scoping conservatively.
        if name in (expr.outer_var, expr.inner_var):
            return expr.rebuild([new_outer] + list(expr.children()[1:]))
        children = [substitute(child, name, replacement) for child in expr.children()]
        children[0] = new_outer
        return expr.rebuild(children)
    children = expr.children()
    if not children:
        return expr
    new_children = [substitute(child, name, replacement) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def _subst_binder_1(expr, name, replacement, param_attr, body_attr, make):
    param = getattr(expr, param_attr)
    body = getattr(expr, body_attr)
    if param == name:
        return expr
    param, body = _rename_if_captured(param, body, replacement)
    return make(param, substitute(body, name, replacement))


def _rename_if_captured(var: str, body: Expr, replacement: Expr) -> Tuple[str, Expr]:
    """Alpha-rename ``var`` in ``body`` if it would capture a free variable of ``replacement``."""
    if var in free_variables(replacement):
        new_var = fresh_var(var.strip("%"))
        body = substitute(body, var, Var(new_var))
        return new_var, body
    return var, body


def node_count(expr: Expr) -> int:
    """Count AST nodes; used in tests and for optimizer statistics."""
    return 1 + sum(node_count(child) for child in expr.children())
