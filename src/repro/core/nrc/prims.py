"""Built-in primitives available to NRC (and therefore CPL) programs.

The paper notes that comprehension syntax is derived from structural recursion,
which is what gives the language aggregates (summation, count, ...) that plain
comprehensions cannot express.  Here those operations are exposed as named
primitives; the CPL parser turns ``sum(...)``, ``count(...)`` etc. into
:class:`~repro.core.nrc.ast.PrimCall` nodes that dispatch into this table.

Primitives are plain Python callables over CPL values.  They are grouped into:

* arithmetic and comparison,
* boolean connectives,
* string operations (including ``^`` concatenation from the paper's examples),
* collection operations derived from structural recursion (aggregates,
  ``flatten``, ``distinct``, conversions between set/bag/list, sorting),
* membership and emptiness tests.
"""

from __future__ import annotations

import functools
import operator as _operator
from typing import Callable, Dict, Iterable, List

from ..errors import EvaluationError
from ..values import CBag, CList, CSet, Record, UNIT_VALUE, Variant, iter_collection, make_collection

__all__ = ["PRIMITIVES", "register_primitive", "lookup_primitive",
           "lookup_primitive_raw", "fused_primitive_with_const",
           "primitive_names"]

PRIMITIVES: Dict[str, Callable] = {}

#: The unwrapped implementations and their declared arities, for compilers
#: that verify the call-site arity statically (see lookup_primitive_raw).
_RAW_PRIMITIVES: Dict[str, tuple] = {}


def register_primitive(name: str, arity: int = None):
    """Decorator registering a callable as the primitive ``name``."""
    def decorator(function: Callable) -> Callable:
        @functools.wraps(function)
        def checked(*args):
            if arity is not None and len(args) != arity:
                raise EvaluationError(
                    f"primitive {name!r} expects {arity} argument(s), got {len(args)}"
                )
            return function(*args)

        PRIMITIVES[name] = checked
        _RAW_PRIMITIVES[name] = (function, arity)
        return function
    return decorator


def lookup_primitive(name: str) -> Callable:
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise EvaluationError(f"unknown primitive {name!r}")


def lookup_primitive_raw(name: str, arity: int) -> Callable:
    """The unwrapped primitive, for call sites of statically known arity.

    A compiler that sees ``PrimCall(name, args)`` knows ``len(args)`` at
    compile time; when it matches the declared arity, the per-call arity
    recheck in the ``checked`` wrapper is provably redundant, so fused hot
    loops may burn the raw function in (value-type checks and all other
    semantics live in the function itself and are untouched).  Unknown
    names, declaration-free primitives and mismatched arities return the
    checked wrapper — the dynamic path, raising exactly as before.
    """
    entry = _RAW_PRIMITIVES.get(name)
    if entry is not None and entry[1] == arity:
        return entry[0]
    return lookup_primitive(name)


def fused_primitive_with_const(name: str, const: object,
                               const_is_second: bool) -> "Callable | None":
    """A one-argument form of ``primitive(item, const)`` (or the mirror),
    specialized at compile time — or ``None`` when no *sound* specialization
    exists.

    The compile-to-closures philosophy applied to primitive operands: when
    one operand is a literal, its value checks run once at compile time and
    only the varying operand is checked per element.  Error behavior is
    bit-identical to the generic path — same exceptions, same messages, same
    operand order in messages — because a constant that would fail (or
    complicate) the generic checks simply declines specialization and the
    call site keeps the generic two-argument form.
    """
    if name in ("add", "sub", "mul", "mod"):
        if isinstance(const, bool) or not isinstance(const, (int, float)):
            return None
        if name == "add":
            if const_is_second:
                return lambda item: _require_number(item, "add") + const
            return lambda item: const + _require_number(item, "add")
        if name == "sub":
            if const_is_second:
                return lambda item: _require_number(item, "sub") - const
            return lambda item: const - _require_number(item, "sub")
        if name == "mul":
            if const_is_second:
                return lambda item: _require_number(item, "mul") * const
            return lambda item: const * _require_number(item, "mul")
        # mod: the denominator's zero check stays wherever the item is.
        if const_is_second:
            if const == 0:
                return None  # keep the generic per-element raise
            return lambda item: _require_number(item, "mod") % const

        def mod_by_item(item):
            divisor = _require_number(item, "mod")
            if divisor == 0:
                raise EvaluationError("modulo by zero")
            return const % divisor

        return mod_by_item
    if name in ("eq", "neq"):
        if name == "eq":
            if const_is_second:
                return lambda item: item == const
            return lambda item: const == item
        if const_is_second:
            return lambda item: item != const
        return lambda item: const != item
    if name in ("lt", "le", "gt", "ge"):
        if isinstance(const, bool) or not isinstance(const, (int, float)):
            return None  # string/mixed comparisons keep the generic checks
        compare = {"lt": _operator.lt, "le": _operator.le,
                   "gt": _operator.gt, "ge": _operator.ge}[name]
        if const_is_second:
            def fused_compare(item):
                if isinstance(item, bool) or not isinstance(item, (int, float)):
                    _raise_comparable(name, item, const, True)
                return compare(item, const)
        else:
            def fused_compare(item):
                if isinstance(item, bool) or not isinstance(item, (int, float)):
                    _raise_comparable(name, item, const, False)
                return compare(const, item)
        return fused_compare
    return None


def _raise_comparable(op: str, item: object, const: object,
                      const_is_second: bool):
    """The generic _comparable error, reproduced for fused comparisons."""
    if isinstance(item, bool):
        raise EvaluationError(f"{op} is not defined on booleans")
    if const_is_second:
        first_type, second_type = type(item).__name__, type(const).__name__
    else:
        first_type, second_type = type(const).__name__, type(item).__name__
    raise EvaluationError(
        f"{op} expects two numbers or two strings, "
        f"got {first_type} and {second_type}")


def primitive_names() -> List[str]:
    return sorted(PRIMITIVES)


# ---------------------------------------------------------------------------
# Arithmetic and comparison
# ---------------------------------------------------------------------------

def _require_number(value, context: str):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{context} expects a number, got {type(value).__name__}")
    return value


@register_primitive("add", arity=2)
def _add(a, b):
    return _require_number(a, "add") + _require_number(b, "add")


@register_primitive("sub", arity=2)
def _sub(a, b):
    return _require_number(a, "sub") - _require_number(b, "sub")


@register_primitive("mul", arity=2)
def _mul(a, b):
    return _require_number(a, "mul") * _require_number(b, "mul")


@register_primitive("div", arity=2)
def _div(a, b):
    a = _require_number(a, "div")
    b = _require_number(b, "div")
    if b == 0:
        raise EvaluationError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


@register_primitive("mod", arity=2)
def _mod(a, b):
    a = _require_number(a, "mod")
    b = _require_number(b, "mod")
    if b == 0:
        raise EvaluationError("modulo by zero")
    return a % b


@register_primitive("neg", arity=1)
def _neg(a):
    return -_require_number(a, "neg")


@register_primitive("eq", arity=2)
def _eq(a, b):
    return a == b


@register_primitive("neq", arity=2)
def _neq(a, b):
    return a != b


def _comparable(a, b, op: str):
    if isinstance(a, bool) or isinstance(b, bool):
        raise EvaluationError(f"{op} is not defined on booleans")
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a, b
    if isinstance(a, str) and isinstance(b, str):
        return a, b
    raise EvaluationError(
        f"{op} expects two numbers or two strings, got {type(a).__name__} and {type(b).__name__}"
    )


@register_primitive("lt", arity=2)
def _lt(a, b):
    a, b = _comparable(a, b, "lt")
    return a < b


@register_primitive("le", arity=2)
def _le(a, b):
    a, b = _comparable(a, b, "le")
    return a <= b


@register_primitive("gt", arity=2)
def _gt(a, b):
    a, b = _comparable(a, b, "gt")
    return a > b


@register_primitive("ge", arity=2)
def _ge(a, b):
    a, b = _comparable(a, b, "ge")
    return a >= b


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------

def _require_bool(value, context: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(f"{context} expects a boolean, got {type(value).__name__}")
    return value


@register_primitive("and", arity=2)
def _and(a, b):
    return _require_bool(a, "and") and _require_bool(b, "and")


@register_primitive("or", arity=2)
def _or(a, b):
    return _require_bool(a, "or") or _require_bool(b, "or")


@register_primitive("not", arity=1)
def _not(a):
    return not _require_bool(a, "not")


# ---------------------------------------------------------------------------
# String operations
# ---------------------------------------------------------------------------

def _require_string(value, context: str) -> str:
    if not isinstance(value, str):
        raise EvaluationError(f"{context} expects a string, got {type(value).__name__}")
    return value


@register_primitive("string_concat", arity=2)
def _string_concat(a, b):
    return _require_string(a, "string_concat") + _require_string(b, "string_concat")


@register_primitive("string_length", arity=1)
def _string_length(a):
    return len(_require_string(a, "string_length"))


@register_primitive("string_upper", arity=1)
def _string_upper(a):
    return _require_string(a, "string_upper").upper()


@register_primitive("string_lower", arity=1)
def _string_lower(a):
    return _require_string(a, "string_lower").lower()


@register_primitive("string_contains", arity=2)
def _string_contains(a, b):
    return _require_string(b, "string_contains") in _require_string(a, "string_contains")


@register_primitive("string_startswith", arity=2)
def _string_startswith(a, b):
    return _require_string(a, "string_startswith").startswith(_require_string(b, "string_startswith"))


@register_primitive("string_split", arity=2)
def _string_split(a, sep):
    return CList(_require_string(a, "string_split").split(_require_string(sep, "string_split")))


@register_primitive("string_of_int", arity=1)
def _string_of_int(a):
    _require_number(a, "string_of_int")
    return str(a)


@register_primitive("int_of_string", arity=1)
def _int_of_string(a):
    try:
        return int(_require_string(a, "int_of_string"))
    except ValueError:
        raise EvaluationError(f"int_of_string: {a!r} is not an integer literal")


# ---------------------------------------------------------------------------
# Collection operations (structural recursion)
# ---------------------------------------------------------------------------

def _numbers_of(collection) -> List[float]:
    values = []
    for element in iter_collection(collection):
        values.append(_require_number(element, "aggregate"))
    return values


@register_primitive("count", arity=1)
def _count(collection):
    return len(list(iter_collection(collection)))


@register_primitive("sum", arity=1)
def _sum(collection):
    return sum(_numbers_of(collection))


@register_primitive("avg", arity=1)
def _avg(collection):
    values = _numbers_of(collection)
    if not values:
        raise EvaluationError("avg of an empty collection")
    return sum(values) / len(values)


@register_primitive("max", arity=1)
def _max(collection):
    values = list(iter_collection(collection))
    if not values:
        raise EvaluationError("max of an empty collection")
    return max(values)


@register_primitive("min", arity=1)
def _min(collection):
    values = list(iter_collection(collection))
    if not values:
        raise EvaluationError("min of an empty collection")
    return min(values)


@register_primitive("isempty", arity=1)
def _isempty(collection):
    return len(list(iter_collection(collection))) == 0


@register_primitive("member", arity=2)
def _member(value, collection):
    return any(element == value for element in iter_collection(collection))


@register_primitive("flatten", arity=1)
def _flatten(collection):
    kind = collection.kind
    elements: List[object] = []
    for inner in iter_collection(collection):
        elements.extend(iter_collection(inner))
    return make_collection(kind, elements)


@register_primitive("distinct", arity=1)
def _distinct(collection):
    seen = []
    for element in iter_collection(collection):
        if element not in seen:
            seen.append(element)
    return make_collection(collection.kind, seen)


@register_primitive("set_of", arity=1)
def _set_of(collection):
    return CSet(iter_collection(collection))


@register_primitive("bag_of", arity=1)
def _bag_of(collection):
    return CBag(iter_collection(collection))


@register_primitive("list_of", arity=1)
def _list_of(collection):
    return CList(iter_collection(collection))


@register_primitive("setunion", arity=2)
def _setunion(a, b):
    return CSet(list(iter_collection(a)) + list(iter_collection(b)))


@register_primitive("setdiff", arity=2)
def _setdiff(a, b):
    b_elements = list(iter_collection(b))
    return CSet(x for x in iter_collection(a) if x not in b_elements)


@register_primitive("setintersect", arity=2)
def _setintersect(a, b):
    b_elements = list(iter_collection(b))
    return CSet(x for x in iter_collection(a) if x in b_elements)


def _sort_key(value):
    """A total order over CPL values, used by sort and by deterministic printing."""
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, Record):
        return (3, tuple((label, _sort_key(field)) for label, field in value.items()))
    if isinstance(value, Variant):
        return (4, value.tag, _sort_key(value.value))
    if isinstance(value, (CSet, CBag, CList)):
        return (5, tuple(sorted(_sort_key(element) for element in value)))
    return (6, repr(value))


@register_primitive("sort", arity=1)
def _sort(collection):
    return CList(sorted(iter_collection(collection), key=_sort_key))


@register_primitive("head", arity=1)
def _head(collection):
    elements = list(iter_collection(collection))
    if not elements:
        raise EvaluationError("head of an empty collection")
    return elements[0]


@register_primitive("nth", arity=2)
def _nth(collection, index):
    elements = list(iter_collection(collection))
    index = _require_number(index, "nth")
    if not isinstance(index, int) or index < 0 or index >= len(elements):
        raise EvaluationError(f"nth: index {index} out of range (size {len(elements)})")
    return elements[index]


@register_primitive("take", arity=2)
def _take(collection, n):
    n = _require_number(n, "take")
    elements = list(iter_collection(collection))
    return make_collection(collection.kind, elements[: int(n)])


@register_primitive("fail", arity=1)
def _fail(message):
    raise EvaluationError(str(message))


# ---------------------------------------------------------------------------
# Record / variant helpers used by generated code
# ---------------------------------------------------------------------------

@register_primitive("record_labels", arity=1)
def _record_labels(record):
    if not isinstance(record, Record):
        raise EvaluationError("record_labels expects a record")
    return CList(record.labels)


@register_primitive("variant_tag", arity=1)
def _variant_tag(value):
    if not isinstance(value, Variant):
        raise EvaluationError("variant_tag expects a variant")
    return value.tag


@register_primitive("variant_value", arity=1)
def _variant_value(value):
    if not isinstance(value, Variant):
        raise EvaluationError("variant_value expects a variant")
    return value.value


# ---------------------------------------------------------------------------
# Structural recursion derivatives (Section 2: "functions such as transitive
# closure, that cannot be expressed through comprehensions alone")
# ---------------------------------------------------------------------------

@register_primitive("tclosure", arity=1)
def _tclosure(relation):
    from .structural import transitive_closure

    return transitive_closure(relation)


@register_primitive("nest", arity=3)
def _nest(collection, group_label, by_label):
    from .structural import nest

    if not isinstance(group_label, str) or not isinstance(by_label, str):
        raise EvaluationError("nest expects field labels as strings")
    return nest(collection, group_label, by_label)


@register_primitive("unnest", arity=2)
def _unnest(collection, group_label):
    from .structural import unnest

    if not isinstance(group_label, str):
        raise EvaluationError("unnest expects the nested field label as a string")
    return unnest(collection, group_label)
