"""NRC: the nested relational calculus / monad algebra underlying CPL.

CPL comprehensions are translated into NRC (see :mod:`repro.core.cpl.desugar`)
because the rewrite rules that drive optimization — vertical and horizontal
loop fusion, filter promotion, projection reduction, pushdown to drivers —
are much simpler to state on the ``ext`` construct than on comprehensions
(Section 4 of the paper).
"""

from .ast import (
    Expr,
    Const,
    Var,
    Lam,
    Apply,
    RecordExpr,
    Project,
    VariantExpr,
    Case,
    Empty,
    Singleton,
    Union,
    Ext,
    Fold,
    IfThenElse,
    PrimCall,
    Let,
    Deref,
    Scan,
    Join,
    Cached,
    fresh_var,
    free_variables,
    substitute,
)
from .eval import Evaluator, Environment
from .compile import CompiledQuery, ExecutionMode, compile_term
from .rewrite import Rule, RuleSet, RewriteEngine, RewriteStats

__all__ = [
    "Expr", "Const", "Var", "Lam", "Apply", "RecordExpr", "Project",
    "VariantExpr", "Case", "Empty", "Singleton", "Union", "Ext", "Fold",
    "IfThenElse", "PrimCall", "Let", "Deref", "Scan", "Join", "Cached",
    "fresh_var", "free_variables", "substitute",
    "Evaluator", "Environment",
    "CompiledQuery", "ExecutionMode", "compile_term",
    "Rule", "RuleSet", "RewriteEngine", "RewriteStats",
]
