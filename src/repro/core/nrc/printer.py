"""Pretty-printer for NRC expressions.

Renders a readable, roughly CPL-flavoured text form, used by ``__repr__`` on
AST nodes, by the optimizer's explain output, and in error messages.
"""

from __future__ import annotations

from . import ast as A

__all__ = ["pretty_expr"]


def pretty_expr(expr: "A.Expr") -> str:
    """Return a single-line textual rendering of ``expr``."""
    return _Printer().render(expr)


class _Printer:

    def render(self, expr: "A.Expr") -> str:
        method = getattr(self, f"_render_{type(expr).__name__.lower()}", None)
        if method is None:
            return f"<{type(expr).__name__}>"
        return method(expr)

    def _render_const(self, expr: "A.Const") -> str:
        value = expr.value
        if isinstance(value, str):
            return f'"{value}"'
        if isinstance(value, bool):
            return "true" if value else "false"
        return repr(value)

    def _render_var(self, expr: "A.Var") -> str:
        return expr.name

    def _render_lam(self, expr: "A.Lam") -> str:
        return f"\\{expr.param} => {self.render(expr.body)}"

    def _render_apply(self, expr: "A.Apply") -> str:
        return f"{self.render(expr.func)}({self.render(expr.arg)})"

    def _render_recordexpr(self, expr: "A.RecordExpr") -> str:
        inner = ", ".join(f"{label} = {self.render(value)}" for label, value in expr.fields.items())
        return f"[{inner}]"

    def _render_project(self, expr: "A.Project") -> str:
        return f"{self.render(expr.expr)}.{expr.label}"

    def _render_variantexpr(self, expr: "A.VariantExpr") -> str:
        return f"<{expr.tag} = {self.render(expr.expr)}>"

    def _render_case(self, expr: "A.Case") -> str:
        branches = " | ".join(
            f"<{branch.tag} = \\{branch.var}> => {self.render(branch.body)}"
            for branch in expr.branches
        )
        default = ""
        if expr.default is not None:
            var, body = expr.default
            default = f" | \\{var} => {self.render(body)}"
        return f"case {self.render(expr.subject)} of {branches}{default}"

    _BRACKETS = {"set": ("{", "}"), "bag": ("{|", "|}"), "list": ("[|", "|]")}

    def _render_empty(self, expr: "A.Empty") -> str:
        open_b, close_b = self._BRACKETS[expr.kind]
        return f"{open_b}{close_b}"

    def _render_singleton(self, expr: "A.Singleton") -> str:
        open_b, close_b = self._BRACKETS[expr.kind]
        return f"{open_b}{self.render(expr.expr)}{close_b}"

    def _render_union(self, expr: "A.Union") -> str:
        return f"({self.render(expr.left)} U {self.render(expr.right)})"

    def _render_ext(self, expr: "A.Ext") -> str:
        open_b, close_b = self._BRACKETS[expr.kind]
        return (f"U{open_b}{self.render(expr.body)} | \\{expr.var} <- "
                f"{self.render(expr.source)}{close_b}")

    def _render_fold(self, expr: "A.Fold") -> str:
        return (f"fold({self.render(expr.func)}, {self.render(expr.init)}, "
                f"{self.render(expr.source)})")

    def _render_ifthenelse(self, expr: "A.IfThenElse") -> str:
        return (f"if {self.render(expr.cond)} then {self.render(expr.then_branch)} "
                f"else {self.render(expr.else_branch)}")

    def _render_primcall(self, expr: "A.PrimCall") -> str:
        args = ", ".join(self.render(arg) for arg in expr.args)
        return f"{expr.name}({args})"

    def _render_let(self, expr: "A.Let") -> str:
        return f"let {expr.var} = {self.render(expr.value)} in {self.render(expr.body)}"

    def _render_deref(self, expr: "A.Deref") -> str:
        return f"!{self.render(expr.expr)}"

    def _render_scan(self, expr: "A.Scan") -> str:
        request = ", ".join(f"{key}={value!r}" for key, value in sorted(expr.request.items()))
        args = ""
        if expr.args:
            args = "; " + ", ".join(f"{key}={self.render(value)}" for key, value in expr.args.items())
        return f"scan[{expr.driver}]({request}{args})"

    def _render_join(self, expr: "A.Join") -> str:
        condition = "true" if expr.condition is None else self.render(expr.condition)
        return (f"{expr.method}-join(\\{expr.outer_var} <- {self.render(expr.outer)}, "
                f"\\{expr.inner_var} <- {self.render(expr.inner)} on {condition}) "
                f"=> {self.render(expr.body)}")

    def _render_cached(self, expr: "A.Cached") -> str:
        return f"cached({self.render(expr.expr)})"
