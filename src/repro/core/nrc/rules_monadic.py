"""The monadic rewrite rules (Section 4, "Monadic Optimizations").

These rules come from the equational theory of monads underlying NRC and
generalise classical relational-algebra optimizations to nested collections:

* **R1 — vertical loop fusion**: combine a producer loop and a consumer loop,
  eliminating the intermediate collection::

      U{e1 | \\x <- U{e2 | \\y <- e3}}  -->  U{U{e1 | \\x <- e2} | \\y <- e3}

* **R2 — horizontal loop fusion**: combine two independent loops over the same
  collection into one traversal (sets and bags only, not lists)::

      U{e1 | \\x <- e} U U{e2 | \\x <- e}  -->  U{e1 U e2 | \\x <- e}

* **R3 — filter promotion**: hoist a loop-invariant test out of the loop::

      U{if p then e1 else e2 | \\x <- e}
          -->  if p then U{e1 | \\x <- e} else U{e2 | \\x <- e}     (x not free in p)

* **R4 — projection reduction**: ``[l = e, ...].l --> e``, the analogue of
  column pruning in relational systems.

Alongside these the rule set contains the monad laws and standard beta/let/if
simplifications needed to reach a normal form (the paper: "the monad rewrite
rules are initially applied until a normal form is reached; this is guaranteed
to terminate ... because the rewrite rules are strongly normalizing").
"""

from __future__ import annotations

from typing import Optional

from . import ast as A
from .rewrite import Rule, RuleSet

__all__ = [
    "rule_vertical_fusion",
    "rule_horizontal_fusion",
    "rule_filter_promotion",
    "rule_projection_reduction",
    "rule_beta_reduction",
    "rule_let_inline",
    "rule_if_constant",
    "rule_case_of_variant",
    "rule_ext_empty_source",
    "rule_ext_empty_body",
    "rule_ext_singleton_source",
    "rule_ext_union_source",
    "rule_dead_branch_union",
    "rule_fold_empty_source",
    "rule_fold_singleton_source",
    "monadic_rule_set",
    "MONADIC_RULES",
]


# ---------------------------------------------------------------------------
# R1: vertical loop fusion
# ---------------------------------------------------------------------------

def _vertical_fusion(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext):
        return None
    inner = expr.source
    if not isinstance(inner, A.Ext) or inner.kind != expr.kind:
        return None
    # U{ e1 | \x <- U{ e2 | \y <- e3 } }  -->  U{ U{ e1 | \x <- e2 } | \y <- e3 }
    # The inner binder y must not capture a free variable of e1.
    inner_var = inner.var
    inner_body = inner.body
    if inner_var in A.free_variables(expr.body):
        renamed = A.fresh_var(inner_var.strip("%\\"))
        inner_body = A.substitute(inner_body, inner_var, A.Var(renamed))
        inner_var = renamed
    fused_inner = A.Ext(expr.var, expr.body, inner_body, expr.kind)
    return A.Ext(inner_var, fused_inner, inner.source, expr.kind)


rule_vertical_fusion = Rule(
    "R1-vertical-fusion",
    _vertical_fusion,
    "combine a producer comprehension and its consumer, removing the intermediate collection",
)


# ---------------------------------------------------------------------------
# R2: horizontal loop fusion (sets and bags only)
# ---------------------------------------------------------------------------

def _horizontal_fusion(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Union) or expr.kind == "list":
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, A.Ext) and isinstance(right, A.Ext)):
        return None
    if left.kind != expr.kind or right.kind != expr.kind:
        return None
    if left.source != right.source:
        return None
    # Align the right binder with the left binder.
    right_body = right.body
    if right.var != left.var:
        if left.var in A.free_variables(right_body):
            return None
        right_body = A.substitute(right_body, right.var, A.Var(left.var))
    fused_body = A.Union(left.body, right_body, expr.kind)
    return A.Ext(left.var, fused_body, left.source, expr.kind)


rule_horizontal_fusion = Rule(
    "R2-horizontal-fusion",
    _horizontal_fusion,
    "combine two independent loops over the same set/bag into a single traversal",
)


# ---------------------------------------------------------------------------
# R3: filter promotion
# ---------------------------------------------------------------------------

def _filter_promotion(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext):
        return None
    body = expr.body
    if not isinstance(body, A.IfThenElse):
        return None
    if expr.var in A.free_variables(body.cond):
        return None
    then_ext = A.Ext(expr.var, body.then_branch, expr.source, expr.kind)
    else_ext = A.Ext(expr.var, body.else_branch, expr.source, expr.kind)
    return A.IfThenElse(body.cond, then_ext, else_ext)


rule_filter_promotion = Rule(
    "R3-filter-promotion",
    _filter_promotion,
    "hoist a loop-invariant filter out of the loop",
)


# ---------------------------------------------------------------------------
# R4: projection reduction
# ---------------------------------------------------------------------------

def _projection_reduction(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Project):
        return None
    subject = expr.expr
    if not isinstance(subject, A.RecordExpr):
        return None
    if expr.label not in subject.fields:
        return None
    return subject.fields[expr.label]


rule_projection_reduction = Rule(
    "R4-projection-reduction",
    _projection_reduction,
    "reduce [l = e, ...].l to e, pruning unused columns in intermediate data",
)


# ---------------------------------------------------------------------------
# Monad laws and supporting simplifications
# ---------------------------------------------------------------------------

def _beta_reduction(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Apply):
        return None
    func = expr.func
    if not isinstance(func, A.Lam):
        return None
    return A.substitute(func.body, func.param, expr.arg)


rule_beta_reduction = Rule(
    "beta-reduction",
    _beta_reduction,
    "(\\x => e)(a) --> e[a/x]; inlines CPL function definitions before optimization",
)


def _count_occurrences(expr: A.Expr, name: str) -> int:
    if isinstance(expr, A.Var):
        return 1 if expr.name == name else 0
    if isinstance(expr, A.Lam) and expr.param == name:
        return 0
    if isinstance(expr, A.Ext) and expr.var == name:
        return _count_occurrences(expr.source, name)
    if isinstance(expr, A.Let) and expr.var == name:
        return _count_occurrences(expr.value, name)
    return sum(_count_occurrences(child, name) for child in expr.children())


def _is_cheap(expr: A.Expr) -> bool:
    if isinstance(expr, (A.Const, A.Var)):
        return True
    if isinstance(expr, A.Project):
        return _is_cheap(expr.expr)
    return False


def _let_inline(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Let):
        return None
    occurrences = _count_occurrences(expr.body, expr.var)
    if occurrences == 0:
        return expr.body
    if occurrences == 1 or _is_cheap(expr.value):
        return A.substitute(expr.body, expr.var, expr.value)
    return None


rule_let_inline = Rule(
    "let-inline",
    _let_inline,
    "inline let-bound values that are cheap or used at most once",
)


def _if_constant(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.IfThenElse):
        return None
    cond = expr.cond
    if isinstance(cond, A.Const) and isinstance(cond.value, bool):
        return expr.then_branch if cond.value else expr.else_branch
    if expr.then_branch == expr.else_branch:
        return expr.then_branch
    return None


rule_if_constant = Rule(
    "if-constant",
    _if_constant,
    "simplify conditionals with constant or irrelevant conditions",
)


def _case_of_variant(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Case):
        return None
    subject = expr.subject
    if not isinstance(subject, A.VariantExpr):
        return None
    for branch in expr.branches:
        if branch.tag == subject.tag:
            return A.substitute(branch.body, branch.var, subject.expr)
    if expr.default is not None:
        var, body = expr.default
        return A.substitute(body, var, subject)
    return None


rule_case_of_variant = Rule(
    "case-of-variant",
    _case_of_variant,
    "resolve case analysis over a syntactic variant constructor",
)


def _ext_empty_source(expr: A.Expr) -> Optional[A.Expr]:
    if isinstance(expr, A.Ext) and isinstance(expr.source, A.Empty):
        return A.Empty(expr.kind)
    return None


rule_ext_empty_source = Rule(
    "ext-empty-source",
    _ext_empty_source,
    "a loop over the empty collection is the empty collection",
)


def _ext_empty_body(expr: A.Expr) -> Optional[A.Expr]:
    if isinstance(expr, A.Ext) and isinstance(expr.body, A.Empty) and expr.body.kind == expr.kind:
        return A.Empty(expr.kind)
    return None


rule_ext_empty_body = Rule(
    "ext-empty-body",
    _ext_empty_body,
    "a loop whose body is always empty produces the empty collection",
)


def _ext_singleton_source(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext):
        return None
    source = expr.source
    if not isinstance(source, A.Singleton) or source.kind != expr.kind:
        return None
    # The left unit law: U{ e | \x <- {a} } --> e[a/x]
    return A.substitute(expr.body, expr.var, source.expr)


rule_ext_singleton_source = Rule(
    "ext-singleton-source",
    _ext_singleton_source,
    "monad left-unit law: a loop over a singleton is a substitution",
)


def _ext_union_source(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Ext):
        return None
    source = expr.source
    if not isinstance(source, A.Union) or source.kind != expr.kind:
        return None
    left = A.Ext(expr.var, expr.body, source.left, expr.kind)
    right = A.Ext(expr.var, expr.body, source.right, expr.kind)
    return A.Union(left, right, expr.kind)


rule_ext_union_source = Rule(
    "ext-union-source",
    _ext_union_source,
    "distribute a loop over a union of sources",
)


def _dead_branch_union(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Union):
        return None
    if isinstance(expr.left, A.Empty):
        return expr.right
    if isinstance(expr.right, A.Empty):
        return expr.left
    return None


rule_dead_branch_union = Rule(
    "union-empty",
    _dead_branch_union,
    "drop empty operands of a union",
)


# ---------------------------------------------------------------------------
# Structural recursion laws (fold over the collection constructors)
# ---------------------------------------------------------------------------

def _fold_empty_source(expr: A.Expr) -> Optional[A.Expr]:
    if isinstance(expr, A.Fold) and isinstance(expr.source, A.Empty):
        return expr.init
    return None


rule_fold_empty_source = Rule(
    "fold-empty-source",
    _fold_empty_source,
    "a fold over the empty collection is its initial value",
)


def _fold_singleton_source(expr: A.Expr) -> Optional[A.Expr]:
    if not isinstance(expr, A.Fold) or not isinstance(expr.source, A.Singleton):
        return None
    # fold(f, i, {a}) --> f(i)(a); sound for every collection kind.
    return A.Apply(A.Apply(expr.func, expr.init), expr.source.expr)


rule_fold_singleton_source = Rule(
    "fold-singleton-source",
    _fold_singleton_source,
    "a fold over a singleton is one application of the combiner",
)


MONADIC_RULES = (
    rule_beta_reduction,
    rule_let_inline,
    rule_case_of_variant,
    rule_projection_reduction,
    rule_if_constant,
    rule_ext_empty_source,
    rule_ext_empty_body,
    rule_ext_singleton_source,
    rule_dead_branch_union,
    rule_fold_empty_source,
    rule_fold_singleton_source,
    rule_vertical_fusion,
    rule_filter_promotion,
    rule_horizontal_fusion,
)


def monadic_rule_set(include_horizontal: bool = True,
                     include_vertical: bool = True,
                     include_filter_promotion: bool = True,
                     include_projection_reduction: bool = True,
                     max_iterations: int = 25) -> RuleSet:
    """Build the standard monadic rule set.

    The ``include_*`` switches exist for the ablation benchmarks: they let a
    benchmark measure the effect of turning an individual optimization off.
    """
    rules = [rule_beta_reduction, rule_let_inline, rule_case_of_variant,
             rule_if_constant, rule_ext_empty_source, rule_ext_empty_body,
             rule_ext_singleton_source, rule_dead_branch_union,
             rule_fold_empty_source, rule_fold_singleton_source]
    if include_projection_reduction:
        rules.insert(3, rule_projection_reduction)
    if include_vertical:
        rules.append(rule_vertical_fusion)
    if include_filter_promotion:
        rules.append(rule_filter_promotion)
    if include_horizontal:
        rules.append(rule_horizontal_fusion)
    return RuleSet("monadic", rules, direction="bottom-up", max_iterations=max_iterations)
