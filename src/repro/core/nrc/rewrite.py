"""The rewrite engine.

Section 4: *"Optimization of queries is done entirely at compile time using
rewrite rules ... new rules can be specified by the designer of the system and
grouped into rule sets along with an indication of how they are to be applied,
e.g. bottom-up or top-down with respect to the tree of sub-expressions and how
many iterations of a rule set should be applied in what order."*

This module implements exactly that machinery:

* :class:`Rule` — a named function ``Expr -> Expr | None`` (``None`` = no match),
* :class:`RuleSet` — an ordered group of rules plus a traversal direction and
  an iteration bound,
* :class:`RewriteEngine` — applies a sequence of rule sets and records which
  rules fired (:class:`RewriteStats`), which the optimizer's ``explain`` output
  and the tests rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NRCError
from . import ast as A

__all__ = ["Rule", "RuleSet", "RewriteEngine", "RewriteStats"]


class Rule:
    """A single rewrite rule.

    ``function`` takes an expression and returns either a replacement
    expression or ``None`` when the rule does not apply at that node.
    """

    def __init__(self, name: str, function: Callable[[A.Expr], Optional[A.Expr]],
                 description: str = ""):
        self.name = name
        self.function = function
        self.description = description

    def apply(self, expr: A.Expr) -> Optional[A.Expr]:
        return self.function(expr)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Rule({self.name})"


class RewriteStats:
    """Counts how many times each rule fired during a rewrite run."""

    def __init__(self) -> None:
        self.firings: Dict[str, int] = {}
        self.passes = 0

    def note(self, rule_name: str) -> None:
        self.firings[rule_name] = self.firings.get(rule_name, 0) + 1

    def total(self) -> int:
        return sum(self.firings.values())

    def fired(self, rule_name: str) -> int:
        return self.firings.get(rule_name, 0)

    def merge(self, other: "RewriteStats") -> None:
        for name, count in other.firings.items():
            self.firings[name] = self.firings.get(name, 0) + count
        self.passes += other.passes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = ", ".join(f"{name}×{count}" for name, count in sorted(self.firings.items()))
        return f"RewriteStats({parts})"


class RuleSet:
    """An ordered collection of rules with a traversal strategy.

    ``direction`` is ``"bottom-up"`` (children first — the default, right for
    fusion rules that want normalised children) or ``"top-down"`` (useful for
    pushdown rules that want to see the largest enclosing comprehension first).
    ``max_iterations`` bounds the number of whole-tree passes; the monadic
    rules are strongly normalising so the bound is a safety net, but pushdown
    rule sets may intentionally run a single pass.
    """

    def __init__(self, name: str, rules: Sequence[Rule], direction: str = "bottom-up",
                 max_iterations: int = 25):
        if direction not in ("bottom-up", "top-down"):
            raise NRCError(f"unknown traversal direction {direction!r}")
        self.name = name
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.direction = direction
        self.max_iterations = max_iterations

    def add_rule(self, rule: Rule) -> None:
        """Append a rule (the extensibility hook the paper emphasises)."""
        self.rules = self.rules + (rule,)

    def apply(self, expr: A.Expr, stats: Optional[RewriteStats] = None) -> A.Expr:
        """Apply this rule set to ``expr`` until fixpoint or the iteration bound."""
        stats = stats if stats is not None else RewriteStats()
        current = expr
        for _ in range(self.max_iterations):
            stats.passes += 1
            rewritten, changed = self._one_pass(current, stats)
            if not changed:
                return rewritten
            current = rewritten
        return current

    def _one_pass(self, expr: A.Expr, stats: RewriteStats) -> Tuple[A.Expr, bool]:
        if self.direction == "bottom-up":
            return self._bottom_up(expr, stats)
        return self._top_down(expr, stats)

    #: Bound on rule firings at a single node within one pass; a non-terminating
    #: rule therefore cannot wedge the engine — it just stops making progress
    #: at this node until the next pass (which the pass bound also limits).
    MAX_FIRINGS_PER_NODE = 20

    def _apply_rules_at(self, expr: A.Expr, stats: RewriteStats) -> Tuple[A.Expr, bool]:
        changed = False
        current = expr
        firings = 0
        progressing = True
        while progressing and firings < self.MAX_FIRINGS_PER_NODE:
            progressing = False
            for rule in self.rules:
                replacement = rule.apply(current)
                if replacement is not None and replacement != current:
                    stats.note(rule.name)
                    current = replacement
                    changed = True
                    progressing = True
                    firings += 1
                    break
        return current, changed

    def _bottom_up(self, expr: A.Expr, stats: RewriteStats) -> Tuple[A.Expr, bool]:
        children = expr.children()
        changed = False
        if children:
            new_children: List[A.Expr] = []
            for child in children:
                new_child, child_changed = self._bottom_up(child, stats)
                new_children.append(new_child)
                changed = changed or child_changed
            if changed:
                expr = expr.rebuild(new_children)
        expr, fired = self._apply_rules_at(expr, stats)
        return expr, changed or fired

    def _top_down(self, expr: A.Expr, stats: RewriteStats) -> Tuple[A.Expr, bool]:
        expr, fired = self._apply_rules_at(expr, stats)
        children = expr.children()
        changed = fired
        if children:
            new_children: List[A.Expr] = []
            child_changed_any = False
            for child in children:
                new_child, child_changed = self._top_down(child, stats)
                new_children.append(new_child)
                child_changed_any = child_changed_any or child_changed
            if child_changed_any:
                expr = expr.rebuild(new_children)
                changed = True
        return expr, changed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RuleSet({self.name}, {len(self.rules)} rules, {self.direction})"


class RewriteEngine:
    """Applies a configured sequence of rule sets to an expression.

    The engine is deliberately dumb: all intelligence lives in the rules.  The
    :mod:`repro.core.optimizer.pipeline` module wires the paper's rule sets
    (monadic normalisation, pushdown, joins, caching, parallelism) into one
    engine per Kleisli session.
    """

    def __init__(self, rule_sets: Sequence[RuleSet] = ()):
        self.rule_sets: List[RuleSet] = list(rule_sets)

    def add_rule_set(self, rule_set: RuleSet, position: Optional[int] = None) -> None:
        if position is None:
            self.rule_sets.append(rule_set)
        else:
            self.rule_sets.insert(position, rule_set)

    def rewrite(self, expr: A.Expr, stats: Optional[RewriteStats] = None) -> A.Expr:
        stats = stats if stats is not None else RewriteStats()
        current = expr
        for rule_set in self.rule_sets:
            current = rule_set.apply(current, stats)
        return current

    def explain(self, expr: A.Expr) -> Tuple[A.Expr, RewriteStats, List[Tuple[str, str]]]:
        """Rewrite and also return per-rule-set before/after renderings."""
        stats = RewriteStats()
        traces: List[Tuple[str, str]] = []
        current = expr
        for rule_set in self.rule_sets:
            before = current.pretty()
            current = rule_set.apply(current, stats)
            after = current.pretty()
            traces.append((rule_set.name, f"{before}  ==>  {after}"))
        return current, stats, traces
