"""Convenience constructors for building NRC terms by hand.

Tests, benchmarks and the desugarer all build NRC terms; these helpers keep
that code short and readable.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from . import ast as A

__all__ = [
    "const", "var", "lam", "apply", "record", "project", "variant", "case_of",
    "empty", "singleton", "union", "ext", "if_then_else", "prim", "let",
    "eq", "and_", "or_", "not_", "comprehension", "fold",
]


def const(value: object) -> A.Const:
    return A.Const(value)


def var(name: str) -> A.Var:
    return A.Var(name)


def lam(param: str, body: A.Expr) -> A.Lam:
    return A.Lam(param, body)


def apply(func: A.Expr, arg: A.Expr) -> A.Apply:
    return A.Apply(func, arg)


def record(fields: Mapping[str, A.Expr] = None, **kwargs: A.Expr) -> A.RecordExpr:
    merged = dict(fields or {})
    merged.update(kwargs)
    return A.RecordExpr(merged)


def project(expr: A.Expr, label: str) -> A.Project:
    return A.Project(expr, label)


def variant(tag: str, expr: A.Expr = None) -> A.VariantExpr:
    return A.VariantExpr(tag, expr if expr is not None else A.Const(None))


def case_of(subject: A.Expr, branches: Sequence[A.CaseBranch],
            default: Optional[tuple] = None) -> A.Case:
    return A.Case(subject, branches, default)


def empty(kind: str = "set") -> A.Empty:
    return A.Empty(kind)


def singleton(expr: A.Expr, kind: str = "set") -> A.Singleton:
    return A.Singleton(expr, kind)


def union(left: A.Expr, right: A.Expr, kind: str = "set") -> A.Union:
    return A.Union(left, right, kind)


def ext(var_name: str, body: A.Expr, source: A.Expr, kind: str = "set") -> A.Ext:
    return A.Ext(var_name, body, source, kind)


def fold(func: A.Expr, init: A.Expr, source: A.Expr) -> A.Fold:
    return A.Fold(func, init, source)


def if_then_else(cond: A.Expr, then_branch: A.Expr, else_branch: A.Expr) -> A.IfThenElse:
    return A.IfThenElse(cond, then_branch, else_branch)


def prim(name: str, *args: A.Expr) -> A.PrimCall:
    return A.PrimCall(name, args)


def let(var_name: str, value: A.Expr, body: A.Expr) -> A.Let:
    return A.Let(var_name, value, body)


def eq(left: A.Expr, right: A.Expr) -> A.PrimCall:
    return prim("eq", left, right)


def and_(left: A.Expr, right: A.Expr) -> A.PrimCall:
    return prim("and", left, right)


def or_(left: A.Expr, right: A.Expr) -> A.PrimCall:
    return prim("or", left, right)


def not_(expr: A.Expr) -> A.PrimCall:
    return prim("not", expr)


def comprehension(head: A.Expr, qualifiers: Sequence, kind: str = "set") -> A.Expr:
    """Build the NRC translation of ``{ head | qualifiers }`` directly.

    Each qualifier is either a ``(var_name, source_expr)`` generator pair or a
    boolean filter expression.  This mirrors Wadler's identities:

    * ``{e |}``            → ``{e}``
    * ``{e | \\x <- e', Q}`` → ``U{ {e | Q} | \\x <- e' }``
    * ``{e | p, Q}``        → ``if p then {e | Q} else {}``
    """
    if not qualifiers:
        return singleton(head, kind)
    first, rest = qualifiers[0], qualifiers[1:]
    if isinstance(first, tuple):
        var_name, source = first
        return ext(var_name, comprehension(head, rest, kind), source, kind)
    return if_then_else(first, comprehension(head, rest, kind), empty(kind))
