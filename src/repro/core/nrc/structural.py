"""Structural recursion: the paradigm comprehensions are derived from.

Section 2 of the paper notes that comprehension syntax *"is derived from a
more powerful programming paradigm on collection types, that of structural
recursion"*, and that this more general form of computation *"allows the
expression of aggregate functions such as summation, as well as functions such
as transitive closure, that cannot be expressed through comprehensions
alone."*

This module supplies the pieces of that paradigm the reproduction exposes:

* :func:`fold_value` — Python-level structural recursion over any CPL
  collection (the run-time counterpart of the :class:`~repro.core.nrc.ast.Fold`
  NRC node, which CPL programs reach with ``fold(\\acc => \\x => e, init, coll)``).
* Well-definedness spot checks — structural recursion over a *set* is only
  well defined when the combining function is insensitive to element order and
  to duplicates; over a *bag*, to order only.  :func:`check_fold_well_defined`
  performs the commutativity / duplicate-insensitivity checks on sample data
  (the property cannot be decided in general, so the system checks the inputs
  it is actually given, mirroring how [6] treats the preconditions).
* :func:`transitive_closure` — the paper's canonical example of a query beyond
  comprehensions, used e.g. to chase chains of homology or containment links.
* :func:`group_by` / :func:`nest` / :func:`unnest` — the value-level
  restructuring operations behind the keyword-inversion example of Section 2.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..errors import EvaluationError
from ..records import Record
from ..values import CBag, CList, CSet, iter_collection

__all__ = [
    "fold_value",
    "check_fold_well_defined",
    "is_order_insensitive",
    "is_duplicate_insensitive",
    "transitive_closure",
    "group_by",
    "nest",
    "unnest",
]


# ---------------------------------------------------------------------------
# Folding
# ---------------------------------------------------------------------------

def fold_value(function: Callable[[object, object], object], init: object,
               collection: object) -> object:
    """Structural recursion over a CPL collection, at the Python level.

    ``function`` takes ``(accumulator, element)`` and returns the new
    accumulator.  Elements are visited in the collection's iteration order;
    callers folding over sets or bags should make sure the function is
    insensitive to that order (see :func:`check_fold_well_defined`).
    """
    if not isinstance(collection, (CSet, CBag, CList)):
        raise EvaluationError(
            f"fold expects a collection, got {type(collection).__name__}"
        )
    accumulator = init
    for element in collection:
        accumulator = function(accumulator, element)
    return accumulator


def is_order_insensitive(function: Callable[[object, object], object], init: object,
                         samples: Sequence[object]) -> bool:
    """Spot-check that folding ``samples`` in reversed order gives the same result.

    A necessary condition for a fold over a *bag* (and a set) to be well
    defined.  Like all property spot checks this can only refute, not prove.
    """
    samples = list(samples)
    forward = _fold_list(function, init, samples)
    backward = _fold_list(function, init, list(reversed(samples)))
    return forward == backward


def is_duplicate_insensitive(function: Callable[[object, object], object], init: object,
                             samples: Sequence[object]) -> bool:
    """Spot-check that re-inserting an element does not change the result.

    The extra condition a fold over a *set* needs beyond order insensitivity
    (sets identify duplicates; the fold must too).
    """
    samples = list(samples)
    if not samples:
        return True
    plain = _fold_list(function, init, samples)
    duplicated = _fold_list(function, init, samples + [samples[0]])
    return plain == duplicated


def check_fold_well_defined(function: Callable[[object, object], object], init: object,
                            collection: object) -> List[str]:
    """Return a list of well-definedness violations observed on ``collection``.

    An empty list means no violation was observed (not a proof).  Lists never
    produce violations — folding a list is always well defined.
    """
    issues: List[str] = []
    if isinstance(collection, CList):
        return issues
    samples = list(iter_collection(collection))
    if not is_order_insensitive(function, init, samples):
        issues.append("combining function is sensitive to element order")
    if isinstance(collection, CSet) and not is_duplicate_insensitive(function, init, samples):
        issues.append("combining function is sensitive to duplicate insertion")
    return issues


def _fold_list(function: Callable[[object, object], object], init: object,
               items: Iterable[object]) -> object:
    accumulator = init
    for item in items:
        accumulator = function(accumulator, item)
    return accumulator


# ---------------------------------------------------------------------------
# Transitive closure
# ---------------------------------------------------------------------------

def transitive_closure(relation: object) -> CSet:
    """Transitive closure of a binary relation.

    ``relation`` is a set (or bag or list) of two-field records — e.g.
    ``{[from = "a", to = "b"], ...}`` — or of two-element lists.  The result is
    the set of records, with the *same* field labels as the input, relating
    every element to everything reachable from it.  Semi-naive iteration keeps
    the work proportional to the edges actually added.
    """
    pairs, labels = _relation_pairs(relation)
    closure = set(pairs)
    frontier = set(pairs)
    successors: Dict[object, set] = {}
    for source, target in pairs:
        successors.setdefault(source, set()).add(target)
    while frontier:
        additions = set()
        for source, middle in frontier:
            for target in successors.get(middle, ()):
                candidate = (source, target)
                if candidate not in closure:
                    additions.add(candidate)
        for source, target in additions:
            successors.setdefault(source, set()).add(target)
        closure |= additions
        frontier = additions
    return CSet(_pair_value(labels, source, target) for source, target in closure)


def _relation_pairs(relation: object) -> Tuple[List[Tuple[object, object]], Tuple[str, ...]]:
    if not isinstance(relation, (CSet, CBag, CList)):
        raise EvaluationError(
            f"transitive closure expects a collection, got {type(relation).__name__}"
        )
    pairs: List[Tuple[object, object]] = []
    labels: Tuple[str, ...] = ()
    for element in relation:
        if isinstance(element, Record):
            if len(element.labels) != 2:
                raise EvaluationError(
                    "transitive closure expects records with exactly two fields, "
                    f"got fields {element.labels!r}"
                )
            labels = element.labels
            pairs.append((element.values[0], element.values[1]))
        elif isinstance(element, CList) and len(element) == 2:
            pairs.append((element[0], element[1]))
        else:
            raise EvaluationError(
                "transitive closure expects two-field records or two-element lists, "
                f"got {type(element).__name__}"
            )
    return pairs, labels


def _pair_value(labels: Tuple[str, ...], source: object, target: object) -> object:
    if labels:
        return Record({labels[0]: source, labels[1]: target})
    return CList([source, target])


# ---------------------------------------------------------------------------
# Grouping and nesting
# ---------------------------------------------------------------------------

def group_by(collection: object, key: Callable[[object], object]) -> Dict[object, List[object]]:
    """Group the elements of a collection by ``key`` (a Python callable)."""
    groups: Dict[object, List[object]] = {}
    for element in iter_collection(collection):
        groups.setdefault(key(element), []).append(element)
    return groups


def nest(collection: object, group_label: str, *by_labels: str) -> CSet:
    """The nested-relational ``nest`` operator over a set of records.

    Records that agree on ``by_labels`` are merged into one record carrying
    those fields plus ``group_label``, a set of the remaining sub-records —
    the restructuring the paper's keyword-inversion example performs with a
    comprehension.
    """
    if not by_labels:
        raise EvaluationError("nest requires at least one grouping field")
    groups: Dict[Tuple[object, ...], List[Record]] = {}
    for element in iter_collection(collection):
        if not isinstance(element, Record):
            raise EvaluationError("nest expects a collection of records")
        key = tuple(element.project(label) for label in by_labels)
        groups.setdefault(key, []).append(element.without_fields(*by_labels))
    result = []
    for key, members in groups.items():
        fields = dict(zip(by_labels, key))
        fields[group_label] = CSet(members)
        result.append(Record(fields))
    return CSet(result)


def unnest(collection: object, group_label: str) -> CSet:
    """The inverse of :func:`nest`: flatten a set-valued field back into rows."""
    result = []
    for element in iter_collection(collection):
        if not isinstance(element, Record):
            raise EvaluationError("unnest expects a collection of records")
        nested = element.project(group_label)
        outer = element.without_fields(group_label)
        for inner in iter_collection(nested):
            if isinstance(inner, Record):
                merged = dict(outer.items())
                merged.update(inner.items())
                result.append(Record(merged))
            else:
                result.append(outer.with_fields(**{group_label: inner}))
    return CSet(result)
