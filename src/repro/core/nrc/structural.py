"""Structural recursion: the paradigm comprehensions are derived from.

Section 2 of the paper notes that comprehension syntax *"is derived from a
more powerful programming paradigm on collection types, that of structural
recursion"*, and that this more general form of computation *"allows the
expression of aggregate functions such as summation, as well as functions such
as transitive closure, that cannot be expressed through comprehensions
alone."*

This module supplies the pieces of that paradigm the reproduction exposes:

* :func:`fold_value` — Python-level structural recursion over any CPL
  collection (the run-time counterpart of the :class:`~repro.core.nrc.ast.Fold`
  NRC node, which CPL programs reach with ``fold(\\acc => \\x => e, init, coll)``).
* Well-definedness spot checks — structural recursion over a *set* is only
  well defined when the combining function is insensitive to element order and
  to duplicates; over a *bag*, to order only.  :func:`check_fold_well_defined`
  performs the commutativity / duplicate-insensitivity checks on sample data
  (the property cannot be decided in general, so the system checks the inputs
  it is actually given, mirroring how [6] treats the preconditions).
* :func:`transitive_closure` — the paper's canonical example of a query beyond
  comprehensions, used e.g. to chase chains of homology or containment links.
* :func:`group_by` / :func:`nest` / :func:`unnest` — the value-level
  restructuring operations behind the keyword-inversion example of Section 2.
* :func:`proven_collection_kind` — the static *kind proof* over (optimized)
  NRC terms: which collection class a term's value is guaranteed to have,
  decided from the term structure alone.  The streaming backend uses it to
  lower ``Union`` as a chained pipeline (skipping ``union_like``'s run-time
  operand class check only where the proof makes it redundant).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..errors import EvaluationError
from ..records import Record
from ..values import CBag, CList, CSet, iter_collection
from . import ast as A

__all__ = [
    "fold_value",
    "check_fold_well_defined",
    "is_order_insensitive",
    "is_duplicate_insensitive",
    "transitive_closure",
    "group_by",
    "nest",
    "unnest",
    "proven_collection_kind",
    "register_kind_prover",
]


# ---------------------------------------------------------------------------
# Folding
# ---------------------------------------------------------------------------

def fold_value(function: Callable[[object, object], object], init: object,
               collection: object) -> object:
    """Structural recursion over a CPL collection, at the Python level.

    ``function`` takes ``(accumulator, element)`` and returns the new
    accumulator.  Elements are visited in the collection's iteration order;
    callers folding over sets or bags should make sure the function is
    insensitive to that order (see :func:`check_fold_well_defined`).
    """
    if not isinstance(collection, (CSet, CBag, CList)):
        raise EvaluationError(
            f"fold expects a collection, got {type(collection).__name__}"
        )
    accumulator = init
    for element in collection:
        accumulator = function(accumulator, element)
    return accumulator


def is_order_insensitive(function: Callable[[object, object], object], init: object,
                         samples: Sequence[object]) -> bool:
    """Spot-check that folding ``samples`` in reversed order gives the same result.

    A necessary condition for a fold over a *bag* (and a set) to be well
    defined.  Like all property spot checks this can only refute, not prove.
    """
    samples = list(samples)
    forward = _fold_list(function, init, samples)
    backward = _fold_list(function, init, list(reversed(samples)))
    return forward == backward


def is_duplicate_insensitive(function: Callable[[object, object], object], init: object,
                             samples: Sequence[object]) -> bool:
    """Spot-check that re-inserting an element does not change the result.

    The extra condition a fold over a *set* needs beyond order insensitivity
    (sets identify duplicates; the fold must too).
    """
    samples = list(samples)
    if not samples:
        return True
    plain = _fold_list(function, init, samples)
    duplicated = _fold_list(function, init, samples + [samples[0]])
    return plain == duplicated


def check_fold_well_defined(function: Callable[[object, object], object], init: object,
                            collection: object) -> List[str]:
    """Return a list of well-definedness violations observed on ``collection``.

    An empty list means no violation was observed (not a proof).  Lists never
    produce violations — folding a list is always well defined.
    """
    issues: List[str] = []
    if isinstance(collection, CList):
        return issues
    samples = list(iter_collection(collection))
    if not is_order_insensitive(function, init, samples):
        issues.append("combining function is sensitive to element order")
    if isinstance(collection, CSet) and not is_duplicate_insensitive(function, init, samples):
        issues.append("combining function is sensitive to duplicate insertion")
    return issues


def _fold_list(function: Callable[[object, object], object], init: object,
               items: Iterable[object]) -> object:
    accumulator = init
    for item in items:
        accumulator = function(accumulator, item)
    return accumulator


# ---------------------------------------------------------------------------
# Transitive closure
# ---------------------------------------------------------------------------

def transitive_closure(relation: object) -> CSet:
    """Transitive closure of a binary relation.

    ``relation`` is a set (or bag or list) of two-field records — e.g.
    ``{[from = "a", to = "b"], ...}`` — or of two-element lists.  The result is
    the set of records, with the *same* field labels as the input, relating
    every element to everything reachable from it.  Semi-naive iteration keeps
    the work proportional to the edges actually added.
    """
    pairs, labels = _relation_pairs(relation)
    closure = set(pairs)
    frontier = set(pairs)
    successors: Dict[object, set] = {}
    for source, target in pairs:
        successors.setdefault(source, set()).add(target)
    while frontier:
        additions = set()
        for source, middle in frontier:
            for target in successors.get(middle, ()):
                candidate = (source, target)
                if candidate not in closure:
                    additions.add(candidate)
        for source, target in additions:
            successors.setdefault(source, set()).add(target)
        closure |= additions
        frontier = additions
    return CSet(_pair_value(labels, source, target) for source, target in closure)


def _relation_pairs(relation: object) -> Tuple[List[Tuple[object, object]], Tuple[str, ...]]:
    if not isinstance(relation, (CSet, CBag, CList)):
        raise EvaluationError(
            f"transitive closure expects a collection, got {type(relation).__name__}"
        )
    pairs: List[Tuple[object, object]] = []
    labels: Tuple[str, ...] = ()
    for element in relation:
        if isinstance(element, Record):
            if len(element.labels) != 2:
                raise EvaluationError(
                    "transitive closure expects records with exactly two fields, "
                    f"got fields {element.labels!r}"
                )
            labels = element.labels
            pairs.append((element.values[0], element.values[1]))
        elif isinstance(element, CList) and len(element) == 2:
            pairs.append((element[0], element[1]))
        else:
            raise EvaluationError(
                "transitive closure expects two-field records or two-element lists, "
                f"got {type(element).__name__}"
            )
    return pairs, labels


def _pair_value(labels: Tuple[str, ...], source: object, target: object) -> object:
    if labels:
        return Record({labels[0]: source, labels[1]: target})
    return CList([source, target])


# ---------------------------------------------------------------------------
# Grouping and nesting
# ---------------------------------------------------------------------------

def group_by(collection: object, key: Callable[[object], object]) -> Dict[object, List[object]]:
    """Group the elements of a collection by ``key`` (a Python callable)."""
    groups: Dict[object, List[object]] = {}
    for element in iter_collection(collection):
        groups.setdefault(key(element), []).append(element)
    return groups


def nest(collection: object, group_label: str, *by_labels: str) -> CSet:
    """The nested-relational ``nest`` operator over a set of records.

    Records that agree on ``by_labels`` are merged into one record carrying
    those fields plus ``group_label``, a set of the remaining sub-records —
    the restructuring the paper's keyword-inversion example performs with a
    comprehension.
    """
    if not by_labels:
        raise EvaluationError("nest requires at least one grouping field")
    groups: Dict[Tuple[object, ...], List[Record]] = {}
    for element in iter_collection(collection):
        if not isinstance(element, Record):
            raise EvaluationError("nest expects a collection of records")
        key = tuple(element.project(label) for label in by_labels)
        groups.setdefault(key, []).append(element.without_fields(*by_labels))
    result = []
    for key, members in groups.items():
        fields = dict(zip(by_labels, key))
        fields[group_label] = CSet(members)
        result.append(Record(fields))
    return CSet(result)


def unnest(collection: object, group_label: str) -> CSet:
    """The inverse of :func:`nest`: flatten a set-valued field back into rows."""
    result = []
    for element in iter_collection(collection):
        if not isinstance(element, Record):
            raise EvaluationError("unnest expects a collection of records")
        nested = element.project(group_label)
        outer = element.without_fields(group_label)
        for inner in iter_collection(nested):
            if isinstance(inner, Record):
                merged = dict(outer.items())
                merged.update(inner.items())
                result.append(Record(merged))
            else:
                result.append(outer.with_fields(**{group_label: inner}))
    return CSet(result)


# ---------------------------------------------------------------------------
# Static collection-kind inference (the kind proof)
# ---------------------------------------------------------------------------
#
# ``proven_collection_kind(term)`` returns "set" | "bag" | "list" when the
# term's value is *guaranteed* (whenever evaluation succeeds) to be the
# corresponding collection class, and ``None`` when no such guarantee exists.
# The proof is purely structural:
#
# * constructors and loop operators (``Empty``, ``Singleton``, ``Ext`` and
#   registered subclasses, ``Join``) build their result with
#   ``make_collection(kind, ...)``, so their declared kind IS the run-time
#   class;
# * the transparent spine (``Let`` bodies, ``IfThenElse`` with agreeing
#   branches) propagates the proof;
# * ``Union`` is proven only when both operands are, with the same kind
#   (a proven *mismatch* is deliberately unproven: the eager path raises at
#   run time, and a fallback keeps that behavior);
# * everything whose value is supplied from outside the term — ``Var``,
#   ``Const``, ``Scan`` (a driver may answer with any class, or a lazy
#   cursor), ``Cached`` (the shared subquery cache is not under this term's
#   control), function application, primitives — is unproven.
#
# Soundness matters more than completeness here: a false "proven" would let
# the streaming backend chain a union without ``union_like``'s operand class
# check and silently accept terms ``execute`` rejects; a false "unproven"
# merely costs an eager section.

_KIND_PROVERS: Dict[Type[A.Expr], Callable[[A.Expr], Optional[str]]] = {}


def register_kind_prover(node_type: Type[A.Expr]):
    """Register a static kind prover for an AST node type (extension hook).

    Same exact-type dispatch discipline as the compiler registries in
    :mod:`repro.core.nrc.compile`: a subclass (e.g. ``ParallelExt``) is not
    silently proven as its base class — it registers its own prover or stays
    unproven.  The registered function maps the node to a collection kind
    (``"set"``/``"bag"``/``"list"``) or ``None``.
    """

    def decorator(function):
        _KIND_PROVERS[node_type] = function
        return function

    return decorator


def proven_collection_kind(expr: A.Expr) -> Optional[str]:
    """The statically proven collection kind of ``expr``, or ``None``.

    ``k`` (not ``None``) means: if evaluating ``expr`` returns at all, the
    value is an instance of the kind-``k`` collection class.  ``None`` means
    no guarantee — not that the value is *not* a collection.
    """
    prover = _KIND_PROVERS.get(type(expr))
    if prover is None:
        return None
    return prover(expr)


@register_kind_prover(A.Empty)
@register_kind_prover(A.Singleton)
@register_kind_prover(A.Ext)
@register_kind_prover(A.Join)
def _prove_declared_kind(expr) -> Optional[str]:
    return expr.kind


@register_kind_prover(A.Union)
def _prove_union(expr: A.Union) -> Optional[str]:
    if (proven_collection_kind(expr.left) == expr.kind
            and proven_collection_kind(expr.right) == expr.kind):
        return expr.kind
    return None


@register_kind_prover(A.Let)
def _prove_let(expr: A.Let) -> Optional[str]:
    return proven_collection_kind(expr.body)


@register_kind_prover(A.IfThenElse)
def _prove_if(expr: A.IfThenElse) -> Optional[str]:
    kind = proven_collection_kind(expr.then_branch)
    if kind is not None and proven_collection_kind(expr.else_branch) == kind:
        return kind
    return None
