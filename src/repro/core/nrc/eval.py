"""The NRC evaluator.

The evaluation strategy follows the paper: the core is *eager*, with laziness
introduced only where it pays — when a generator draws from an external driver
the Kleisli engine hands the evaluator a lazy token stream (a Python iterator)
instead of a materialised collection, and the evaluator consumes it
incrementally (see :mod:`repro.kleisli.tokens`).

Evaluation needs three pieces of ambient context, bundled in
:class:`EvalContext`:

* ``driver_executor`` — how to satisfy a :class:`~repro.core.nrc.ast.Scan`
  (the Kleisli engine supplies this; stand-alone evaluation of driver-free
  terms needs none),
* ``cache`` — storage for :class:`~repro.core.nrc.ast.Cached` nodes,
* ``statistics`` — counters (elements fetched, join strategies used) that the
  benchmarks report.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import EvaluationError, UnboundVariableError
from ..records import ProjectionCursor, Record
from ..values import (
    CBag,
    CList,
    CSet,
    Ref,
    UNIT_VALUE,
    Variant,
    empty_like,
    iter_collection,
    make_collection,
    singleton_like,
    union_like,
)
from . import ast as A
from .prims import lookup_primitive

__all__ = [
    "Environment", "Closure", "EvalContext", "EvalScope", "EvalStatistics",
    "Evaluator", "evaluate", "iterate_source", "materialise",
    "materialise_source", "cache_payload", "close_source", "scan_stream",
    "require_join_condition",
]


def require_join_condition(keep: object) -> bool:
    """The join-condition boolean policy, shared by every backend.

    One policy for both join methods in all three backends (tree-walking
    interpreter, eager closures, streamed pipelines): a non-boolean condition
    value is an evaluation error.  Blocked joins always behaved this way;
    indexed joins used to filter by truthiness, so which strictness a query
    got depended on the optimizer's join-method choice (ROADMAP item, fixed
    here).  Keeping the check in one shared site is what makes a coordinated
    policy change possible at all.
    """
    if not isinstance(keep, bool):
        raise EvaluationError("join condition must be boolean")
    return keep

#: Sentinel distinguishing "no binding" from a binding whose value is ``None``.
_MISSING = object()


class Environment:
    """A chained variable environment (lexical scoping)."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Optional[Dict[str, object]] = None,
                 parent: Optional["Environment"] = None):
        self.bindings = bindings or {}
        self.parent = parent

    def _find(self, name: str) -> object:
        """Walk the chain once; return the bound value or ``_MISSING``."""
        env: Optional[Environment] = self
        while env is not None:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        return _MISSING

    def lookup(self, name: str) -> object:
        value = self._find(name)
        if value is _MISSING:
            raise UnboundVariableError(name)
        return value

    def contains(self, name: str) -> bool:
        return self._find(name) is not _MISSING

    def child(self, name: str, value: object) -> "Environment":
        """Return a new environment extending this one with a single binding."""
        return Environment({name: value}, parent=self)

    def extended(self, bindings: Dict[str, object]) -> "Environment":
        return Environment(dict(bindings), parent=self)


_compiled_closure_type: Optional[type] = None


def _is_compiled_closure(value: object) -> bool:
    """Exact-type check against compile.CompiledClosure, imported lazily.

    The lazy import breaks the module cycle (compile imports eval at load
    time); by the time a compiled closure can exist, the module is loaded.
    """
    global _compiled_closure_type
    if _compiled_closure_type is None:
        from .compile import CompiledClosure

        _compiled_closure_type = CompiledClosure
    return type(value) is _compiled_closure_type


class Closure:
    """The run-time value of a :class:`~repro.core.nrc.ast.Lam`."""

    __slots__ = ("param", "body", "env")

    def __init__(self, param: str, body: A.Expr, env: Environment):
        self.param = param
        self.body = body
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<closure \\{self.param}>"


class EvalStatistics:
    """Counters reported by benchmarks and used in optimizer tests."""

    def __init__(self) -> None:
        self.scan_requests = 0
        self.scan_elements = 0
        self.ext_iterations = 0
        self.fold_iterations = 0
        self.joins_blocked = 0
        self.joins_indexed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.peak_intermediate = 0
        #: How the query was executed: "interpreted", "compiled", or
        #: "compiled+fallback" when the closure compiler had to hand
        #: unsupported nodes back to the interpreter.
        self.execution_mode = "interpreted"
        #: Run-time count of fallback evaluations (compiled mode only).
        self.compiled_fallbacks = 0
        #: Run-time count of pipeline sections that had no streaming lowering
        #: and were evaluated eagerly inside a streaming run (streamed mode).
        self.stream_fallbacks = 0
        #: Run-time count of chunked-pipeline sections that had no chunk
        #: lowering and ran at per-element granularity instead (chunked mode;
        #: compile-time names in ``CompiledChunkedStream.scalar_stages``).
        self.scalar_stages = 0
        #: Engine compile-cache (LRU) accounting for this query's lowering.
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        #: Resilience accounting: driver-request retries served for this run
        #: and mid-stream faults recovered to a resumed cursor.
        self.retries = 0
        self.recovered_faults = 0
        #: Typed :class:`~repro.core.errors.SourceDegradedWarning` records —
        #: one per source dropped from a degraded (``on_source_failure=
        #: "degrade"``) run.  Empty means the result is complete; non-empty
        #: means *announced* partial results, never silent truncation.
        self.warnings: List[object] = []

    @property
    def elements_fetched(self) -> int:
        """Total elements drawn from sources: scans, loop and fold iterations.

        The differential-testing harness asserts this number is identical
        under the interpreter and the closure compiler, which pins down all
        three underlying counters at once.
        """
        return self.scan_elements + self.ext_iterations + self.fold_iterations

    def note_intermediate(self, size: int) -> None:
        if size > self.peak_intermediate:
            self.peak_intermediate = size

    def as_dict(self) -> Dict[str, object]:
        result: Dict[str, object] = dict(self.__dict__)
        result["elements_fetched"] = self.elements_fetched
        # Warnings are typed records; the dict form is wire-encodable.
        result["warnings"] = [warning.as_dict() for warning in self.warnings]
        return result


class EvalScope:
    """A deterministic-release registry for cursors opened during evaluation.

    Every stream/cursor opened while a scope is active on the
    :class:`EvalContext` (driver token streams, ``_CountingStream`` wrappers,
    scheduler pools) registers itself here; :meth:`close` releases them in
    LIFO order.  Closing a drained stream is a no-op by contract, so the
    scope can close everything unconditionally — only *abandoned* cursors
    are actually affected.

    Registration is thread-safe: ``ParallelExt`` bodies open cursors from
    scheduler worker threads while the consumer thread may be closing the
    scope.

    Scopes are *accounted*: :meth:`live_count` reports how many are open
    process-wide (created but not yet closed).  Because every pipelined run
    holds exactly one scope — and closing it releases every cursor the run
    opened — a multi-session workload (the :mod:`repro.server` soak tests)
    can assert cursor-leak-freedom by checking the count returns to its
    baseline once all sessions are done.
    """

    __slots__ = ("_resources", "_lock", "_closed")

    _accounting_lock = threading.Lock()
    _live = 0
    _opened_total = 0

    def __init__(self) -> None:
        self._resources: List[object] = []
        self._lock = threading.Lock()
        self._closed = False
        with EvalScope._accounting_lock:
            EvalScope._live += 1
            EvalScope._opened_total += 1

    def register(self, resource: object) -> object:
        """Track ``resource`` (anything with a ``close()``); returns it.

        If the scope is already closed — a worker thread losing the race
        against an early ``close()`` — the resource is closed immediately
        instead of leaking.
        """
        with self._lock:
            if not self._closed:
                self._resources.append(resource)
                return resource
        close = getattr(resource, "close", None)
        if close is not None:
            close()
        return resource

    def unregister(self, resource: object) -> None:
        """Stop tracking a resource that released itself (e.g. a drained
        cursor).  Without this a long pipeline would pin every exhausted
        body-level cursor — and whatever it buffers — until the whole
        stream ends; with it the scope holds only *live* cursors.

        Resources drain roughly in registration order, so the linear scan
        almost always finds the entry at the front.
        """
        with self._lock:
            if not self._closed:
                try:
                    self._resources.remove(resource)
                except ValueError:
                    pass

    def close(self) -> None:
        """Release every registered resource, newest first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            resources, self._resources = self._resources, []
        with EvalScope._accounting_lock:
            EvalScope._live -= 1
        for resource in reversed(resources):
            close = getattr(resource, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - best-effort release
                    pass

    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def live_count(cls) -> int:
        """How many scopes are currently open, process-wide."""
        with cls._accounting_lock:
            return cls._live

    @classmethod
    def opened_total(cls) -> int:
        """How many scopes have ever been opened, process-wide."""
        with cls._accounting_lock:
            return cls._opened_total

    def __enter__(self) -> "EvalScope":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EvalContext:
    """Ambient services the evaluator needs (drivers, cache, statistics)."""

    def __init__(self, driver_executor: Optional[Callable] = None,
                 statistics: Optional[EvalStatistics] = None,
                 cache: Optional[Dict[str, object]] = None,
                 driver_executor_batch: Optional[Callable] = None):
        self.driver_executor = driver_executor
        #: Optional batched Scan callback: ``(driver, [request, ...]) ->
        #: [result, ...]`` (the engine routes it to ``Driver.execute_batch``).
        #: The chunked lowering uses it to satisfy a whole chunk's body scans
        #: in one driver call; absent, scans fall back to per-request calls.
        self.driver_executor_batch = driver_executor_batch
        self.statistics = statistics or EvalStatistics()
        self.cache = cache if cache is not None else {}
        #: The :class:`~repro.core.nrc.compile.ChunkPolicy` governing chunk
        #: sizes for a chunked-pipeline run, or ``None`` for the default
        #: policy.  Set by ``KleisliEngine.stream`` (a run-time parameter, so
        #: compiled chunk pipelines stay cacheable by term fingerprint alone).
        self.chunk_policy = None
        #: The :class:`~repro.core.planner.plan.PhysicalPlan` the engine's
        #: planner chose for this run, or ``None`` (uninformed/defaults).
        #: Lowerings with scheduler knobs (ParallelExt prefetch) read their
        #: hints from it; like ``chunk_policy`` it is a run-time parameter.
        self.physical_plan = None
        #: The :class:`~repro.core.planner.feedback.PlanProbe` collecting
        #: per-stage per-chunk costs for the feedback ledger, or ``None``
        #: (no recording).  Set by ``KleisliEngine.stream`` per chunked run.
        self.plan_probe = None
        #: Absolute deadline for the whole run (on the resilience layer's
        #: clock), or ``None`` for no budget.  The resilience layer checks it
        #: before every driver attempt and before every backoff sleep; a
        #: spent deadline raises :class:`~repro.core.errors.DeadlineExceededError`
        #: (terminal — retrying a request cannot un-spend the query budget).
        self.deadline = None
        #: What a federated run does when one source stays down after
        #: retries (or its breaker is open): ``"fail"`` (default) propagates
        #: the error; ``"degrade"`` completes with partial results and a
        #: typed :class:`~repro.core.errors.SourceDegradedWarning` appended
        #: to ``statistics.warnings``.
        self.on_source_failure = "fail"
        #: The active :class:`EvalScope`, or ``None`` outside a scoped run.
        #: Eager ``execute`` leaves it ``None`` (returned lazy values stay
        #: usable); pipelined ``stream`` runs inside one so abandoning the
        #: pipeline releases every cursor it opened — including body-level
        #: scans — deterministically.
        self.scope: Optional[EvalScope] = None
        #: The run's :class:`~repro.kleisli.governance.CancellationToken`, or
        #: ``None``.  Lowerings check it at their natural scheduling points
        #: (chunk boundaries, per-element pulls, eager loop heads) and the
        #: engine checks it pre-driver-dispatch; a cancelled token raises a
        #: typed :class:`~repro.core.errors.QueryCancelledError` from inside
        #: the active scope, so every cursor is released on the way out.
        self.cancellation = None
        #: The run's :class:`~repro.kleisli.governance.MemoryBudget`, or
        #: ``None``.  Charged (in nominal row units) by the unbounded
        #: materialization points: eager ext/fold sections, dedup seen-sets,
        #: blocked-join build sides, chunk buffers.
        self.memory_budget = None
        #: The run's :class:`~repro.kleisli.spill.SpillManager`, or ``None``.
        #: When set (plan-gated by the engine), the join-build and dedup
        #: materialization points use disk-backed structures instead of
        #: charging the budget for unbounded in-memory state.
        self.spill = None
        #: The run's :class:`~repro.obs.trace.QueryTrace`, or ``None`` (no
        #: recording — the zero-recorder contract).  Set by the engine when
        #: an observability hub is attached or the run asked for a profile;
        #: hook sites (driver dispatch, scope open/close, retries) open
        #: spans on it, all ``None``-guarded.
        self.trace = None

    @contextmanager
    def evaluation_scope(self):
        """Activate a fresh :class:`EvalScope` for the duration of the block.

        Scopes nest LIFO: the previous scope (if any) is restored on exit,
        and only resources opened under the inner scope are released.

        Interleaving two *streamed* runs on one shared context is not
        supported: a pipeline's scope stays active while its generator is
        suspended (worker threads may still be opening cursors into it), so
        a second pipeline started on the same context would register its
        cursors into the first one's scope.  Give each streamed run its own
        ``EvalContext`` — ``KleisliEngine.stream`` does.  The conditional
        restore below at least keeps a non-LIFO exit from clobbering
        another run's active scope.
        """
        previous = self.scope
        scope = EvalScope()
        self.scope = scope
        trace = self.trace
        span = None if trace is None else trace.begin("scope", "scope")
        try:
            yield scope
        except BaseException:
            if span is not None:
                trace.end(span, status="error")
                span = None
            raise
        finally:
            if self.scope is scope:
                self.scope = previous
            scope.close()
            if span is not None:
                trace.end(span)


class Evaluator:
    """Evaluates NRC expressions to CPL values."""

    def __init__(self, context: Optional[EvalContext] = None):
        self.context = context or EvalContext()

    # -- entry point ---------------------------------------------------------

    def evaluate(self, expr: A.Expr, env: Optional[Environment] = None) -> object:
        env = env or Environment()
        return self._eval(expr, env)

    # -- dispatch --------------------------------------------------------------

    def _eval(self, expr: A.Expr, env: Environment) -> object:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise EvaluationError(f"cannot evaluate node of type {type(expr).__name__}")
        return method(self, expr, env)

    def _eval_const(self, expr: A.Const, env: Environment) -> object:
        value = expr.value
        if value is None:
            return UNIT_VALUE
        return value

    def _eval_var(self, expr: A.Var, env: Environment) -> object:
        return env.lookup(expr.name)

    def _eval_lam(self, expr: A.Lam, env: Environment) -> object:
        return Closure(expr.param, expr.body, env)

    def _eval_apply(self, expr: A.Apply, env: Environment) -> object:
        func = self._eval(expr.func, env)
        arg = self._eval(expr.arg, env)
        return self.apply_function(func, arg)

    def apply_function(self, func: object, arg: object) -> object:
        """Apply a closure or a native Python callable to an argument."""
        if isinstance(func, Closure):
            return self._eval(func.body, func.env.child(func.param, arg))
        # A compiled closure crossing the boundary: run it under *this*
        # context so statistics and driver routing follow the active
        # evaluation.
        if _is_compiled_closure(func):
            return func.apply_in(arg, self.context)
        if callable(func):
            return func(arg)
        raise EvaluationError(f"attempt to apply a non-function value {func!r}")

    def _eval_record(self, expr: A.RecordExpr, env: Environment) -> object:
        return Record({label: self._eval(value, env) for label, value in expr.fields.items()})

    def _eval_project(self, expr: A.Project, env: Environment) -> object:
        subject = self._eval(expr.expr, env)
        if isinstance(subject, Record):
            return subject.project(expr.label)
        if isinstance(subject, Ref):
            return self._project_ref(subject, expr.label)
        raise EvaluationError(
            f"cannot project field {expr.label!r} from {type(subject).__name__}"
        )

    def _project_ref(self, ref: Ref, label: str) -> object:
        target = ref.deref()
        if isinstance(target, Record):
            return target.project(label)
        raise EvaluationError(
            f"dereferenced value of {ref!r} is not a record; cannot project {label!r}"
        )

    def _eval_variant(self, expr: A.VariantExpr, env: Environment) -> object:
        return Variant(expr.tag, self._eval(expr.expr, env))

    def _eval_case(self, expr: A.Case, env: Environment) -> object:
        subject = self._eval(expr.subject, env)
        if not isinstance(subject, Variant):
            raise EvaluationError(
                f"case subject must be a variant, got {type(subject).__name__}"
            )
        for branch in expr.branches:
            if branch.tag == subject.tag:
                return self._eval(branch.body, env.child(branch.var, subject.value))
        if expr.default is not None:
            var, body = expr.default
            return self._eval(body, env.child(var, subject))
        raise EvaluationError(f"no case branch matches variant tag {subject.tag!r}")

    def _eval_empty(self, expr: A.Empty, env: Environment) -> object:
        return empty_like(expr.kind)

    def _eval_singleton(self, expr: A.Singleton, env: Environment) -> object:
        return singleton_like(expr.kind, self._eval(expr.expr, env))

    def _eval_union(self, expr: A.Union, env: Environment) -> object:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return union_like(expr.kind, left, right)

    def _eval_ext(self, expr: A.Ext, env: Environment) -> object:
        source = self._eval(expr.source, env)
        elements: List[object] = []
        stats = self.context.statistics
        token = self.context.cancellation
        budget = self.context.memory_budget
        charged = 0
        for item in self._iterate_source(source):
            if token is not None:
                token.raise_if_cancelled()
            stats.ext_iterations += 1
            body_value = self._eval(expr.body, env.child(expr.var, item))
            elements.extend(iter_collection(self._materialise(body_value)))
            stats.note_intermediate(len(elements))
            if budget is not None and len(elements) - charged >= 256:
                budget.charge_elements(len(elements) - charged)
                charged = len(elements)
        if budget is not None and len(elements) > charged:
            budget.charge_elements(len(elements) - charged)
        return make_collection(expr.kind, elements)

    def _iterate_source(self, source: object) -> Iterator[object]:
        """Iterate a collection or a lazy token stream."""
        return iterate_source(source)

    def _materialise(self, value: object) -> object:
        """Force a token stream into a collection (body values must be collections)."""
        return materialise(value)

    def _eval_fold(self, expr: A.Fold, env: Environment) -> object:
        """Structural recursion: thread an accumulator through the collection."""
        func = self._eval(expr.func, env)
        accumulator = self._eval(expr.init, env)
        stats = self.context.statistics
        token = self.context.cancellation
        source = self._eval(expr.source, env)
        for item in self._iterate_source(source):
            if token is not None:
                token.raise_if_cancelled()
            stats.fold_iterations += 1
            accumulator = self.apply_function(self.apply_function(func, accumulator), item)
        return accumulator

    def _eval_if(self, expr: A.IfThenElse, env: Environment) -> object:
        cond = self._eval(expr.cond, env)
        if not isinstance(cond, bool):
            raise EvaluationError(
                f"condition must be a boolean, got {type(cond).__name__}"
            )
        if cond:
            return self._eval(expr.then_branch, env)
        return self._eval(expr.else_branch, env)

    def _eval_prim(self, expr: A.PrimCall, env: Environment) -> object:
        function = lookup_primitive(expr.name)
        args = [self._eval(arg, env) for arg in expr.args]
        return function(*args)

    def _eval_let(self, expr: A.Let, env: Environment) -> object:
        value = self._eval(expr.value, env)
        return self._eval(expr.body, env.child(expr.var, value))

    def _eval_deref(self, expr: A.Deref, env: Environment) -> object:
        ref = self._eval(expr.expr, env)
        if not isinstance(ref, Ref):
            raise EvaluationError(f"cannot dereference {type(ref).__name__}")
        return ref.deref()

    def _eval_scan(self, expr: A.Scan, env: Environment) -> object:
        executor = self.context.driver_executor
        if executor is None:
            raise EvaluationError(
                f"no driver executor available to satisfy scan of driver {expr.driver!r}"
            )
        request = dict(expr.request)
        for key, arg_expr in expr.args.items():
            request[key] = self._eval(arg_expr, env)
        stats = self.context.statistics
        stats.scan_requests += 1
        result = executor(expr.driver, request)
        if isinstance(result, (CSet, CBag, CList)):
            stats.scan_elements += len(result)
            return result
        # Lazy token stream: count as it is consumed.
        return scan_stream(result, self.context)

    def _eval_join(self, expr: A.Join, env: Environment) -> object:
        outer = self._materialise_source(self._eval(expr.outer, env))
        stats = self.context.statistics
        elements: List[object] = []
        if expr.method == "indexed":
            stats.joins_indexed += 1
            elements = self._indexed_join(expr, outer, env)
        else:
            stats.joins_blocked += 1
            elements = self._blocked_join(expr, outer, env)
        return make_collection(expr.kind, elements)

    def _materialise_source(self, value: object) -> List[object]:
        return materialise_source(value)

    def _blocked_join(self, expr: A.Join, outer: List[object], env: Environment) -> List[object]:
        """Blocked nested-loop join: scan the inner once per outer *block*.

        ``block_size == 1`` is the per-element probe: the inner side is
        materialised once and probed per outer element (like the indexed
        join), instead of re-evaluated per block — the same special case as
        both compiled lowerings, so the three backends agree on how many
        times the inner side is fetched.

        Emission is outer-major at every block size (for each outer element
        in order, all its inner matches), like the indexed join — so the
        block size affects only fetch counts, never the element sequence,
        and the optimizer may pick different block sizes for ``execute``
        and ``stream`` plans without the two diverging observably.
        """
        elements: List[object] = []
        block_size = max(1, expr.block_size)
        if block_size == 1:
            inner: Optional[List[object]] = None
            for outer_item in outer:
                if inner is None:
                    inner = self._materialise_source(self._eval(expr.inner, env))
                for inner_item in inner:
                    self._emit_join_pair(expr, outer_item, inner_item, env, elements)
            return elements
        for start in range(0, len(outer), block_size):
            block = outer[start:start + block_size]
            inner = self._materialise_source(self._eval(expr.inner, env))
            for outer_item in block:
                for inner_item in inner:
                    self._emit_join_pair(expr, outer_item, inner_item, env, elements)
        return elements

    def _emit_join_pair(self, expr: A.Join, outer_item: object, inner_item: object,
                        env: Environment, elements: List[object]) -> None:
        """Condition-check and evaluate the join body for one matched pair."""
        pair_env = env.extended({expr.outer_var: outer_item,
                                 expr.inner_var: inner_item})
        if expr.condition is not None:
            if not require_join_condition(self._eval(expr.condition, pair_env)):
                return
        body_value = self._eval(expr.body, pair_env)
        elements.extend(iter_collection(self._materialise(body_value)))

    def _indexed_join(self, expr: A.Join, outer: List[object], env: Environment) -> List[object]:
        """Indexed blocked nested-loop join: build a hash index on the inner key on the fly."""
        if expr.outer_key is None or expr.inner_key is None:
            raise EvaluationError("indexed join requires outer and inner key expressions")
        inner = self._materialise_source(self._eval(expr.inner, env))
        index: Dict[object, List[object]] = {}
        for inner_item in inner:
            key = self._eval(expr.inner_key, env.child(expr.inner_var, inner_item))
            index.setdefault(key, []).append(inner_item)
        elements: List[object] = []
        for outer_item in outer:
            key = self._eval(expr.outer_key, env.child(expr.outer_var, outer_item))
            for inner_item in index.get(key, ()):
                self._emit_join_pair(expr, outer_item, inner_item, env, elements)
        return elements

    def _eval_cached(self, expr: A.Cached, env: Environment) -> object:
        cache = self.context.cache
        stats = self.context.statistics
        if expr.key in cache:
            stats.cache_hits += 1
            return cache[expr.key]
        stats.cache_misses += 1
        value = cache_payload(self._eval(expr.expr, env))
        cache[expr.key] = value
        return value

    _DISPATCH = {}


Evaluator._DISPATCH = {
    A.Const: Evaluator._eval_const,
    A.Var: Evaluator._eval_var,
    A.Lam: Evaluator._eval_lam,
    A.Apply: Evaluator._eval_apply,
    A.RecordExpr: Evaluator._eval_record,
    A.Project: Evaluator._eval_project,
    A.VariantExpr: Evaluator._eval_variant,
    A.Case: Evaluator._eval_case,
    A.Empty: Evaluator._eval_empty,
    A.Singleton: Evaluator._eval_singleton,
    A.Union: Evaluator._eval_union,
    A.Ext: Evaluator._eval_ext,
    A.Fold: Evaluator._eval_fold,
    A.IfThenElse: Evaluator._eval_if,
    A.PrimCall: Evaluator._eval_prim,
    A.Let: Evaluator._eval_let,
    A.Deref: Evaluator._eval_deref,
    A.Scan: Evaluator._eval_scan,
    A.Join: Evaluator._eval_join,
    A.Cached: Evaluator._eval_cached,
}


def iterate_source(source: object) -> Iterator[object]:
    """Iterate a collection or a lazy token stream.

    Shared by the tree-walking :class:`Evaluator` and the closure compiler in
    :mod:`repro.core.nrc.compile`, so both execution modes accept exactly the
    same generator sources.
    """
    if isinstance(source, (CSet, CBag, CList)):
        return iter(source)
    if hasattr(source, "__iter__"):
        # A token stream (or any iterator) from a driver: consume lazily.
        return iter(source)
    raise EvaluationError(
        f"generator source must be a collection, got {type(source).__name__}"
    )


def materialise(value: object) -> object:
    """Force a token stream into a collection (body values must be collections)."""
    if isinstance(value, (CSet, CBag, CList)):
        return value
    if hasattr(value, "to_collection"):
        return value.to_collection()
    if hasattr(value, "__iter__") and not isinstance(value, (str, bytes, Record)):
        return CList(value)
    raise EvaluationError(
        f"body of a comprehension must produce a collection, got {type(value).__name__}"
    )


def cache_payload(value: object) -> object:
    """What a ``Cached`` node stores: streams forced, everything else as-is.

    Shared by both execution modes — compiled and interpreted runs write into
    the same subquery cache, so what they store must be decided in one place.
    """
    if (not isinstance(value, (bool, int, float, str))
            and hasattr(value, "__iter__") and not isinstance(value, Record)):
        return materialise(value)
    return value


def close_source(iterator: object, source: object) -> None:
    """Release a (possibly layered) abandoned stream.

    Closes the iterator, then the source it was drawn from when that is a
    distinct object — an iterator wrapper's ``close`` (e.g. the generator
    from ``TokenStream.__iter__``) does not reach the source's own cursor.
    """
    close = getattr(iterator, "close", None)
    if close is not None:
        close()
    if source is not iterator:
        close = getattr(source, "close", None)
        if close is not None:
            close()


def materialise_source(value: object) -> List[object]:
    """Drain a join input (collection or stream) into a list."""
    if isinstance(value, (CSet, CBag, CList)):
        return list(value)
    if hasattr(value, "__iter__"):
        return list(value)
    raise EvaluationError(
        f"join input must be a collection, got {type(value).__name__}"
    )


def scan_stream(result: object, context: "EvalContext") -> "_CountingStream":
    """Wrap a lazy driver result for scan accounting, scope-registered.

    Shared by the interpreter's ``Scan`` evaluation and both compiled
    lowerings: when an :class:`EvalScope` is active on the context, the
    cursor is registered so an abandoned pipeline releases it without
    waiting for GC — and unregisters itself once drained, so the scope
    does not pin exhausted cursors (or their buffers) for the life of a
    long stream.

    A result may supply its own counting wrapper via a
    ``make_counting_stream(statistics)`` hook (the resilience layer's
    recovering cursors do, merging recovery and accounting into one
    per-element frame); anything else gets the plain
    :class:`_CountingStream`.
    """
    make = getattr(result, "make_counting_stream", None)
    stream = _CountingStream(result, context.statistics) if make is None \
        else make(context.statistics)
    scope = context.scope
    if scope is not None:
        stream._scope = scope
        scope.register(stream)
    return stream


class _CountingStream:
    """Wraps a driver token stream, updating scan statistics as elements flow through."""

    def __init__(self, inner, statistics: EvalStatistics):
        self._source = inner
        self._inner = iter(inner)
        self._statistics = statistics
        #: The EvalScope tracking this cursor, if any (set by scan_stream).
        self._scope = None

    def __iter__(self):
        return self

    def __next__(self):
        try:
            value = next(self._inner)
        except StopIteration:
            scope = self._scope
            if scope is not None:
                self._scope = None
                scope.unregister(self)
            raise
        self._statistics.scan_elements += 1
        return value

    def close(self) -> None:
        """Release the underlying driver cursor (early stream termination)."""
        close_source(self._inner, self._source)


def evaluate(expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
             context: Optional[EvalContext] = None) -> object:
    """Evaluate ``expr`` with the given variable ``bindings`` (a convenience wrapper)."""
    evaluator = Evaluator(context)
    return evaluator.evaluate(expr, Environment(dict(bindings or {})))
