"""Compile-to-closures backend for NRC: the Kleisli execution engine's fast path.

The paper's Kleisli implementation gets its evaluation speed from *compiling*
CPL/NRC into an executable form rather than interpreting the tree.  This
module is that stage for the reproduction: a **staged compiler** that lowers
an (already optimized) NRC term into nested Python closures.

Staging strategy
----------------

Compilation is a single bottom-up pass, ``compile_term(term)``, producing one
Python callable per AST node with the uniform signature::

    fn(frame: list, context: EvalContext) -> value

Everything that the tree-walking :class:`~repro.core.nrc.eval.Evaluator` must
re-discover *per element of every collection* is decided **once, at compile
time**, and burned into the closure:

* **Dispatch** — the interpreter does a ``type(expr)`` dictionary lookup per
  node per element; here each node becomes a direct closure call, so the AST
  is never consulted again after compilation.
* **Variable lookup** — the interpreter allocates a chained ``Environment``
  dict per binding and walks the chain per lookup.  The compiler maintains a
  compile-time *scope* (a tuple of binder names, innermost last) and resolves
  every ``Var`` to a fixed integer slot; at run time the environment is a flat
  Python list (the *frame*) and a lookup is a single ``frame[i]`` index.
  Loop binders (``Ext``) reuse one frame slot across iterations, so the hot
  path allocates no environment at all.
* **Constant work** — primitive functions are looked up, collection
  constructors selected, record labels fixed, and scan request templates
  prepared at compile time.
* **Projection** — each compiled ``Project`` node carries an inline
  ``(directory, slot)`` cache, giving the Remy homogeneous-collection fast
  path (Section 4 of the paper) without a per-record directory lookup.

Closure values (``Lam``) snapshot the current frame when they are created, so
a function value escaping a loop observes the bindings that were live at its
creation, exactly like the interpreter's chained environments.

Fallback
--------

Node types without a registered compiler (see :func:`register_compiler`) are
not errors: the compiler emits a *fallback thunk* that reconstructs an
:class:`~repro.core.nrc.eval.Environment` from the frame and delegates the
subtree to the interpreter.  ``CompiledQuery.fallback_nodes`` reports which
node types fell back, and ``EvalStatistics.compiled_fallbacks`` counts how
often the handoff happened at run time.  Both execution modes share the same
:class:`~repro.core.nrc.eval.EvalContext` (driver executor, subquery cache,
statistics), so compiled and interpreted fragments interoperate freely —
including closures crossing the boundary in either direction.

Eager vs streaming vs chunked lowering
--------------------------------------

The module offers **three lowering targets** over the same node registry
discipline:

* :func:`compile_term` — the eager backend: every closure returns a fully
  materialized collection.  This is what ``KleisliEngine.execute`` uses; it
  is the fastest way to produce a *whole* result, and the only correct way
  to produce a value that outlives the evaluation (results are plain
  collections, never half-consumed cursors).
* :func:`compile_stream` — the pull-based backend: nodes with a registered
  stream compiler (see :func:`register_stream_compiler`) become generator
  pipeline stages that yield elements as they are produced.  It minimizes
  time-to-first-result and peak intermediate memory by overlapping remote
  I/O with downstream consumption (Section 4's "laziness in strategic
  places").
* :func:`compile_chunked` — the morsel-at-a-time backend: stages exchange
  *lists* of at most K elements instead of single elements, and adjacent
  map/filter stages fuse into tight per-chunk loops.  This is what
  ``KleisliEngine.stream`` uses by default in compiled mode: it keeps the
  per-element backend's asymptotics (laziness, bounded buffering, scope-
  managed cursors) while removing the per-element generator-frame overhead
  that dominates local in-memory pipelines.  See "Chunked semantics" below.

Selection is per *call site* (``execute`` vs ``stream``), then per *node*
within a streamed pipeline: ``Ext`` chains, filters, ``Let``/``IfThenElse``,
``Scan`` and the probe side of ``Join`` stream natively (set-kind stages
dedup as they go); everything whose semantics require the whole value —
``Fold``, the build side of joins, scalar operators — drops to the eager
closure for that subtree and the pipeline yields from its materialized
result.  Those eager sections are reported in
``CompiledStream.eager_nodes`` and counted by
``EvalStatistics.stream_fallbacks``.  ``Cached`` is a special case: it is a
*deliberate* materialization point (the subquery cache stores whole
collections), so the pipeline yields from the cached value without
reporting a fallback.

Streaming semantics
-------------------

Three rules keep a streamed run element-for-element identical to the eager
value, at O(1)-per-element cost:

* **Set dedup-as-you-go** — ``CSet`` iterates in first-occurrence insertion
  order, so a set-kind stage that suppresses repeats incrementally
  (:func:`_dedup_set_stream`) yields exactly the eager set's element
  sequence at O(distinct) memory.
* **The kind proof** — ``Union`` streams as a chained pipeline (left
  operand's elements, then the right's, under one shared set seen-filter)
  only when :func:`~repro.core.nrc.structural.proven_collection_kind` proves
  *statically* that both operands produce the union's collection class;
  that proof is what makes skipping ``union_like``'s run-time operand class
  check sound.  Terms whose operand kind cannot be proven (a bound ``Var``,
  a ``Scan`` whose driver controls the result class, a ``Cached`` value, a
  proven kind *mismatch*) fall back to the eager ``union_like`` section so
  they keep raising exactly where ``execute`` raises.
* **Per-element join probing** — the probe (outer) side of both join
  methods streams; the build side must materialize.  An indexed join probes
  its hash index per outer element; a blocked join yields per outer *block*,
  except ``block_size == 1`` (what the optimizer emits under the streaming
  hint, see ``OptimizerConfig.streaming``), where the inner side is
  materialized once and probed per outer element.

Eager sections remain exactly where the whole value is semantically
required: ``Fold`` (the accumulator consumes every element), the build side
of joins (the hash index / rescan source), unproven ``Union`` operands (the
run-time class check needs the values), ``Cached`` (a deliberate
materialization point), and scalar operators reached through a collection
position.

Chunked semantics
-----------------

The chunked lowering (:func:`compile_chunked`, registry
:func:`register_chunk_compiler`) obeys three rules of its own on top of the
streaming rules above:

* **Parity** — a drained chunked run yields exactly the element sequence of
  ``execute``'s result (and of the per-element stream), and agrees on
  ``EvalStatistics.elements_fetched``.  Chunk sizes are value-invisible:
  dedup-as-you-go carries its seen-set *across* chunk boundaries, the typed
  union's shared seen-filter and the join probes have chunk-wise forms, and
  fused map/filter stages preserve per-stage ``ext_iterations`` accounting.
  Partial-progress counters on a *failing* run may differ from the
  per-element stream's (a chunk stage processes its chunk through one stage
  before the next), just as the eager backend's already do.
* **The ramp** — chunk sizes start at 1 and double per chunk up to the
  :class:`ChunkPolicy` maximum (read from ``EvalContext.chunk_policy`` at
  run time, so compiled pipelines stay cacheable by term fingerprint).
  The first chunk therefore costs one source element: time-to-first-result
  matches the per-element stream, while steady-state throughput gets full-
  size chunks.  Remote drivers (``ChunkPolicy.sizes_for``) keep a smaller
  maximum so a chunk never buffers more than a bounded slice of a slow
  cursor; abandoning a pipeline mid-chunk still releases every cursor —
  including those behind buffered-but-unconsumed chunk elements — through
  the same :class:`~repro.core.nrc.eval.EvalScope` as the per-element
  stream.
* **The fallback surface** — node types without a chunk compiler run at
  per-element granularity inside the chunked pipeline (the existing stream
  lowering, re-chunked for downstream stages): correct, just not
  vectorized.  Those stages are named in
  ``CompiledChunkedStream.scalar_stages`` and counted at run time by
  ``EvalStatistics.scalar_stages``; nodes with no stream lowering either
  keep falling through to eager sections (``stream_fallbacks``), exactly as
  in the per-element backend.

An ``Ext`` whose body is a ``Scan`` depending on the loop variable
additionally batches its driver fetches: one
``EvalContext.driver_executor_batch`` call (``Driver.execute_batch``) per
batch — the source chunk, capped at the *scan* driver's policy maximum —
instead of one request per element.

Cost-based planning
-------------------

The chunk knobs are not constants any more: ``KleisliEngine.stream`` asks
its :class:`~repro.core.planner.plan.QueryPlanner` for a per-query
:class:`~repro.core.planner.plan.PhysicalPlan` whose **inputs** are the
statistics registry (registered/observed cardinalities and driver
latencies) and the :class:`~repro.core.planner.feedback.PlanFeedback`
ledger of earlier runs.  The plan's knobs reach this module two ways:

* its :meth:`~repro.core.planner.plan.PhysicalPlan.chunk_policy` becomes
  ``EvalContext.chunk_policy`` (ramp bounds, ``parallel_chunk``,
  ``adaptive_ramp``) — still a *run-time* parameter, so the compile-cache
  key stays the bare term fingerprint and one cached pipeline serves every
  plan;
* ``ChunkPolicy.adaptive_ramp`` switches the ramp from blind geometric
  doubling to a **cost-adaptive** ramp (:class:`_ChunkRamp`): each chunk's
  production cost is measured, and doubling stops as soon as the marginal
  per-element cost stops improving (a latency-bound source plateaus
  immediately and keeps small chunks; a CPU-bound local stage keeps
  doubling while amortisation still pays).  Sub-millisecond chunks carry
  no measurable signal and ramp exactly like the non-adaptive policy, so
  uninformed plans are bit-for-bit today's behaviour.

**Feedback keys**: when the engine attaches a
:class:`~repro.core.planner.feedback.PlanProbe` to the context
(``EvalContext.plan_probe``), the chunked pump records each chunk's
production cost under stage ``"pipeline"`` and batched scans record theirs
under ``"scan:<driver>"``; a pipeline that drains normally commits its true
output cardinality.  The probe is keyed by the same
:func:`term_fingerprint` as the engine's compile cache, with a
constant-blind shape index for structurally-similar queries.
**Re-planning triggers** on the next ``stream`` of the same (or
similarly-shaped) term: the planner reads the ledger before choosing
knobs, so observed numbers replace estimates without recompiling — the
pipeline is policy-agnostic by construction.

Thread-safety
-------------

Compiled artifacts are **immutable once built** and safe to share across
threads: closures carry no mutable compile-time state (the one exception,
``Project``'s inline Remy cache, stores its ``(directory, slot)`` pair as a
single atomically-swapped tuple), while all *run-time* mutability lives in
the per-run frame and :class:`~repro.core.nrc.eval.EvalContext`.  This is
what lets one engine's compile-cache entry serve scheduler worker threads
and — since the query service (:mod:`repro.server`) multiplexes many
concurrent client sessions onto a single shared engine — every session of a
multi-user deployment at once.

Failure semantics
-----------------

Compiled code contains **no fault handling**: every scan site — the eager
closure, the per-element stream, and the chunked batch fetch — routes
through ``EvalContext.driver_executor`` / ``driver_executor_batch``, and
the resilience layer (:mod:`repro.kleisli.resilience`) lives behind that
one choke point, so the three lowerings inherit identical failure
behavior without any lowering-specific code:

* **Pre-open faults** (the request itself fails): retried per the
  driver's :class:`~repro.kleisli.resilience.RetryPolicy` with
  exponential backoff, classified by
  :func:`repro.core.errors.is_retryable_fault`; terminal faults (a
  malformed request, a missing driver, a spent deadline) propagate
  unretried.  A failed native ``execute_batch`` is decomposed and
  re-dispatched per request, so one poisoned request no longer fails its
  chunk siblings.
* **Mid-stream faults** (a lazy cursor dies after yielding elements): the
  scan is re-issued and resumed through a seen-prefix filter *below* the
  scan-accounting wrapper (``scan_stream`` asks the resilience layer's
  cursor for a merged wrapper), so a drained recovered run is
  bit-identical to a fault-free run in values AND ``elements_fetched`` —
  under every lowering.  A re-issue that ends inside the already-delivered
  prefix is a terminal error, never a silent short stream.
* **Deadlines** (``EvalContext.deadline``, set via
  ``engine.execute/stream(deadline=...)``): checked before every attempt
  and before every backoff sleep; always terminal.
* **Degradation** (``EvalContext.on_source_failure == "degrade"``): a
  source still down after retries — or behind an open circuit breaker —
  contributes an empty result (eager) or ends its stream at the delivered
  prefix (lazy), recorded as a typed
  :class:`~repro.core.errors.SourceDegradedWarning` in
  ``EvalStatistics.warnings``; partial results are always announced,
  never silent.  Under the default ``"fail"`` policy the classified fault
  propagates to the caller unchanged.

A driver with no configured policy bypasses all of the above: zero-fault
runs are bit-for-bit unchanged with the layer installed.

Cancellation & memory semantics
-------------------------------

Query-lifecycle governance (:mod:`repro.kleisli.governance`) threads through
the lowerings the same way resilience does — behind run-time ``EvalContext``
fields that default to ``None``, so the **zero-governance contract** holds: a
run with no cancellation token, no memory budget and no spill manager takes
exactly the pre-governance code paths (differential-pinned, like PR 5's
zero-statistics and PR 8's zero-knowledge contracts).

* **Checkpoint placement** (``EvalContext.cancellation``): cancellation is
  *cooperative* — the token is checked at every natural scheduling point and
  never interrupts mid-value.  The checkpoints are: the per-element pump of
  ``CompiledStream`` (one check per yielded element), the chunk boundaries
  of ``CompiledChunkedStream``'s pump (one check per chunk), the loop heads
  of the eager ``Ext``/``Fold`` closures (and their interpreter twins), and
  pre-driver-dispatch in ``KleisliEngine.driver_executor`` /
  ``driver_executor_batch``.  A tripped checkpoint raises the typed
  :class:`~repro.core.errors.QueryCancelledError` from *inside* the run's
  :class:`~repro.core.nrc.eval.EvalScope`, so every cursor the run opened is
  released on the way out — a cancelled query never leaks and never yields a
  partial value without the typed error.
* **Memory accounting** (``EvalContext.memory_budget``): the known unbounded
  materialization points charge the budget in nominal row units — the eager
  ``Ext`` element buffer, the join build sides (the hash index of an indexed
  join, the materialized inner of a blocked join), set-kind dedup seen-sets
  (via :func:`_make_seen_set`), and the chunked pump's transient chunk
  buffers (charged per chunk, released after the chunk is consumed).  An
  over-budget charge raises the typed
  :class:`~repro.core.errors.MemoryBudgetExceededError`.
* **Spill triggers** (``EvalContext.spill``): the engine attaches a
  :class:`~repro.kleisli.spill.SpillManager` *up front*, plan-gated by the
  PR 5 cost model (estimated rows × nominal row bytes vs. the budget) — not
  reactively mid-run — and the two biggest offenders degrade to
  disk-backed structures: join build sides become hash-partitioned spill
  runs (:class:`~repro.kleisli.spill.SpilledList` /
  :class:`~repro.kleisli.spill.SpilledIndex`) and dedup seen-sets become
  :class:`~repro.kleisli.spill.GovernedSeenSet`.  Spilled structures are
  bounded-memory by construction, so they do not charge the budget.
* **Parity rules**: spilled execution is bit-for-bit the in-memory
  execution — same values, same order, same ``elements_fetched`` — across
  all three lowerings (the spill backends preserve append order and exact
  dedup under hash collisions), and governance never changes *what* a
  query computes, only whether it is allowed to finish and where its
  intermediates live.

Observability semantics
-----------------------

Tracing, metrics, and EXPLAIN ANALYZE (:mod:`repro.obs`) observe the
lowerings without touching a single compiled artifact: every signal comes
from choke points that already exist on the run-time side of the
``EvalContext`` seam.  The **zero-recorder contract** is the governance
contract's twin — ``EvalContext.trace`` defaults to ``None``, every hook
site is ``None``-guarded, and a run with no recorder attached takes exactly
the pre-observability code paths (differential-pinned by the test suite).

* **Span sources** (``EvalContext.trace``): ``driver_executor`` opens one
  ``driver`` span per remote request and ``driver_executor_batch`` one
  ``driver-batch`` span per native batch — the spans all three lowerings
  share, since every remote round trip funnels through those two methods.
  ``EvalContext.evaluation_scope`` brackets the run in a ``scope`` span
  (closed on success *and* on the fault path), and the resilience layer
  records each retry as a zero-duration ``retry`` event.  Spans per query
  are bounded: past the budget a shared dropped-span sentinel keeps
  begin/end pairing balanced without growing the tree.
* **Per-stage timings**: the chunked lowering already times every chunk
  when a plan probe is attached (the PR 7 feedback loop); profiling simply
  tees that probe (:class:`~repro.obs.profile.ProbeTee`) so the feedback
  sink — when one exists — sees the identical call stream.  Forcing the
  tee routes the pump through its probe-timed branch, which is
  value-identical to the fast branch by the probe-neutrality pin.  The
  eager and per-element lowerings have no chunk boundaries; their
  per-stage story is the per-driver fold of their trace spans.
* **Cardinality**: EXPLAIN ANALYZE reports the physical plan's estimate
  next to the actual row count; on the eager path (which builds no
  physical plan) the estimate is recomputed observation-only from the
  planner's cardinality model, never written back into the context.
* **Parity rules**: profiling and metrics are *observation only* — a
  profiled run's values, order, and ``elements_fetched`` are bit-identical
  to the unprofiled run under every lowering, and an attached-hub engine's
  fault-free overhead is CI-gated by ``benchmarks/bench_observability.py``.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from ..errors import EvaluationError, UnboundVariableError
from ..records import Record, RecordDirectory
from ..values import (
    CBag,
    CList,
    CSet,
    Ref,
    UNIT_VALUE,
    Variant,
    _COLLECTION_CLASSES,
    empty_like,
    iter_collection,
    make_collection,
    union_like,
)
from . import ast as A
from .ast import free_variables
from .eval import (
    Closure,
    Environment,
    EvalContext,
    Evaluator,
    _CountingStream,
    cache_payload,
    iterate_source,
    materialise,
    materialise_source,
    require_join_condition,
    scan_stream,
)
from .prims import (
    fused_primitive_with_const,
    lookup_primitive,
    lookup_primitive_raw,
)
from .structural import proven_collection_kind

__all__ = [
    "ExecutionMode", "CompiledQuery", "CompiledClosure", "CompiledStream",
    "CompiledChunkedStream", "ChunkPolicy", "compile_term", "compile_stream",
    "compile_chunked", "register_compiler", "register_stream_compiler",
    "register_chunk_compiler", "supported_node_types",
    "streamable_node_types", "chunkable_node_types", "term_fingerprint",
]

_COLLECTIONS = (CSet, CBag, CList)


class ExecutionMode(enum.Enum):
    """How the Kleisli engine runs an optimized NRC term."""

    INTERPRET = "interpret"
    COMPILED = "compiled"

    @classmethod
    def coerce(cls, value: Union["ExecutionMode", str]) -> "ExecutionMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise EvaluationError(
                f"unknown execution mode {value!r}; "
                f"expected one of {[mode.value for mode in cls]}"
            ) from None


class _Unbound:
    """Marks a top-level frame slot whose name had no binding at call time.

    The interpreter raises :class:`UnboundVariableError` only if an unbound
    variable is actually *reached*; compiled queries preserve that by filling
    missing slots with a marker and checking it on access.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class CompiledClosure:
    """The run-time value of a compiled ``Lam``: a frame snapshot + body closure.

    Like an interpreter :class:`~repro.core.nrc.eval.Closure`, the *bindings*
    are fixed at creation but the ambient context (driver executor, cache,
    statistics) is the one of whoever applies it: :meth:`apply_in` takes the
    applying context, so a closure that outlives its run — stored in the
    subquery cache, returned to user code — charges statistics to, and
    resolves drivers through, the run that calls it.  ``__call__`` (the bare
    Python-callable protocol) falls back to the creation context.
    """

    __slots__ = ("body_fn", "frame", "context")

    def __init__(self, body_fn, frame, context):
        self.body_fn = body_fn
        self.frame = frame
        self.context = context

    def apply_in(self, arg: object, context: EvalContext) -> object:
        frame = list(self.frame)
        frame.append(arg)
        return self.body_fn(frame, context)

    def __call__(self, arg: object) -> object:
        return self.apply_in(arg, self.context)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "<compiled closure>"


def _apply_value(func: object, arg: object, context: EvalContext) -> object:
    """Apply a compiled closure, an interpreter closure, or a native callable."""
    if type(func) is CompiledClosure:
        return func.apply_in(arg, context)
    if isinstance(func, Closure):
        # An interpreter closure leaked across the boundary (e.g. out of a
        # fallback subtree or the subquery cache): evaluate it there.
        return Evaluator(context).apply_function(func, arg)
    if callable(func):
        return func(arg)
    raise EvaluationError(f"attempt to apply a non-function value {func!r}")


class _CompileState:
    """Per-``compile_term`` bookkeeping shared by the node compilers.

    ``fallbacks`` names subtrees delegated to the tree-walking interpreter
    (no eager compiler); ``eager`` names subtrees of a *streaming* lowering
    that had no pull-based form and were lowered eagerly instead; ``scalar``
    names subtrees of a *chunked* lowering that had no chunk-wise form and
    run at per-element granularity inside the chunked pipeline.
    """

    __slots__ = ("n_free", "fallbacks", "eager", "scalar")

    def __init__(self, n_free: int):
        self.n_free = n_free
        self.fallbacks: List[str] = []
        self.eager: List[str] = []
        self.scalar: List[str] = []


_Scope = Tuple[str, ...]
_CompiledFn = Callable[[list, EvalContext], object]
_COMPILERS: Dict[Type[A.Expr], Callable[[A.Expr, _Scope, _CompileState], _CompiledFn]] = {}


def register_compiler(node_type: Type[A.Expr]):
    """Register a closure compiler for an AST node type (extension hook).

    Dispatch is by *exact* type, so subclasses with different semantics (for
    example :class:`~repro.core.optimizer.parallel.ParallelExt`) are not
    silently compiled as their base class — they either register their own
    compiler with this decorator or fall back to the interpreter.

    A registered node type whose compiled form bakes in parameters beyond
    its structural children should also define ``fingerprint_extras()``
    returning those parameters, so :func:`term_fingerprint` (the engine's
    compile-cache key) can tell such terms apart; without it, terms
    containing the node are cached by identity only.
    """

    def decorator(function):
        _COMPILERS[node_type] = function
        return function

    return decorator


def supported_node_types() -> Tuple[str, ...]:
    """Names of node types with a native closure compiler (for docs and tests)."""
    return tuple(sorted(cls.__name__ for cls in _COMPILERS))


def _compile(expr: A.Expr, scope: _Scope, state: _CompileState) -> _CompiledFn:
    compiler = _COMPILERS.get(type(expr))
    if compiler is None:
        return _compile_fallback(expr, scope, state)
    return compiler(expr, scope, state)


def _compile_fallback(expr: A.Expr, scope: _Scope, state: _CompileState) -> _CompiledFn:
    """Delegate an unsupported subtree to the tree-walking interpreter."""
    state.fallbacks.append(type(expr).__name__)
    names = tuple(scope)

    def run(frame, context):
        context.statistics.compiled_fallbacks += 1
        bindings = {}
        for name, value in zip(names, frame):
            if type(value) is not _Unbound:
                bindings[name] = value
        return Evaluator(context)._eval(expr, Environment(bindings))

    return run


def _require_bool(cond: object) -> bool:
    """Reject non-boolean condition values (shared by both lowerings).

    The boolean-check policy must stay identical between the eager and
    streaming backends (and, eventually, the interpreter — see ROADMAP);
    keeping it in one place makes a coordinated change possible.
    """
    if cond is True or cond is False:
        return cond
    raise EvaluationError(
        f"condition must be a boolean, got {type(cond).__name__}"
    )


def _slot_of(scope: _Scope, name: str) -> Optional[int]:
    """Resolve ``name`` to its innermost slot (shadowing: scan from the end)."""
    for index in range(len(scope) - 1, -1, -1):
        if scope[index] == name:
            return index
    return None


def _extended(frame: list, value: object) -> list:
    new_frame = list(frame)
    new_frame.append(value)
    return new_frame


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------

@register_compiler(A.Const)
def _compile_const(expr: A.Const, scope, state):
    value = UNIT_VALUE if expr.value is None else expr.value
    return lambda frame, context: value


@register_compiler(A.Var)
def _compile_var(expr: A.Var, scope, state):
    slot = _slot_of(scope, expr.name)
    if slot is None:
        # Free variable outside even the top-level scope (cannot happen via
        # compile_term, which seeds the scope with all free names).
        name = expr.name

        def unbound(frame, context):
            raise UnboundVariableError(name)

        return unbound
    if slot < state.n_free:
        # A top-level free name: its slot may hold the "no binding" marker.
        name = expr.name

        def checked(frame, context, _slot=slot, _name=name):
            value = frame[_slot]
            if type(value) is _Unbound:
                raise UnboundVariableError(_name)
            return value

        return checked

    def run(frame, context, _slot=slot):
        return frame[_slot]

    return run


@register_compiler(A.Lam)
def _compile_lam(expr: A.Lam, scope, state):
    body_fn = _compile(expr.body, scope + (expr.param,), state)

    def run(frame, context):
        return CompiledClosure(body_fn, tuple(frame), context)

    return run


@register_compiler(A.Apply)
def _compile_apply(expr: A.Apply, scope, state):
    func_fn = _compile(expr.func, scope, state)
    arg_fn = _compile(expr.arg, scope, state)

    def run(frame, context):
        func = func_fn(frame, context)
        arg = arg_fn(frame, context)
        if type(func) is CompiledClosure:
            return func.apply_in(arg, context)
        return _apply_value(func, arg, context)

    return run


@register_compiler(A.RecordExpr)
def _compile_record(expr: A.RecordExpr, scope, state):
    labels = tuple(expr.fields.keys())
    # The label set is static, so the Remy directory is interned once at
    # compile time; each evaluation fills a value array directly instead of
    # building a dict and re-interning.  Fields still evaluate in source
    # order (side-effect order matches the interpreter).
    directory = RecordDirectory.for_labels(labels)
    slot_fns = tuple(
        (directory.slots[label], _compile(value, scope, state))
        for label, value in expr.fields.items()
    )
    width = len(directory)

    def run(frame, context):
        values = [None] * width
        for slot, fn in slot_fns:
            values[slot] = fn(frame, context)
        return Record(_directory=directory, _values=tuple(values))

    return run


@register_compiler(A.Project)
def _compile_project(expr: A.Project, scope, state):
    subject_fn = _compile(expr.expr, scope, state)
    label = expr.label
    # Inline Remy fast path: cache (directory, slot) as one tuple so the
    # closure stays safe when shared across scheduler threads.
    cache: List[Optional[tuple]] = [None]

    def run(frame, context):
        subject = subject_fn(frame, context)
        if isinstance(subject, Record):
            cached = cache[0]
            directory = subject.directory
            if cached is not None and cached[0] is directory:
                return subject.values[cached[1]]
            slot = directory.slot_of(label)
            cache[0] = (directory, slot)
            return subject.values[slot]
        if isinstance(subject, Ref):
            target = subject.deref()
            if isinstance(target, Record):
                return target.project(label)
            raise EvaluationError(
                f"dereferenced value of {subject!r} is not a record; "
                f"cannot project {label!r}"
            )
        raise EvaluationError(
            f"cannot project field {label!r} from {type(subject).__name__}"
        )

    return run


@register_compiler(A.VariantExpr)
def _compile_variant(expr: A.VariantExpr, scope, state):
    value_fn = _compile(expr.expr, scope, state)
    tag = expr.tag

    def run(frame, context):
        return Variant(tag, value_fn(frame, context))

    return run


@register_compiler(A.Case)
def _compile_case(expr: A.Case, scope, state):
    subject_fn = _compile(expr.subject, scope, state)
    branch_fns = tuple(
        (branch.tag, _compile(branch.body, scope + (branch.var,), state))
        for branch in expr.branches
    )
    default_fn = None
    if expr.default is not None:
        var, body = expr.default
        default_fn = _compile(body, scope + (var,), state)

    def run(frame, context):
        subject = subject_fn(frame, context)
        if not isinstance(subject, Variant):
            raise EvaluationError(
                f"case subject must be a variant, got {type(subject).__name__}"
            )
        for tag, body_fn in branch_fns:
            if tag == subject.tag:
                return body_fn(_extended(frame, subject.value), context)
        if default_fn is not None:
            return default_fn(_extended(frame, subject), context)
        raise EvaluationError(f"no case branch matches variant tag {subject.tag!r}")

    return run


@register_compiler(A.Empty)
def _compile_empty(expr: A.Empty, scope, state):
    value = empty_like(expr.kind)
    return lambda frame, context: value


@register_compiler(A.Singleton)
def _compile_singleton(expr: A.Singleton, scope, state):
    cls = _COLLECTION_CLASSES[expr.kind]
    value_fn = _compile(expr.expr, scope, state)

    def run(frame, context):
        return cls((value_fn(frame, context),))

    return run


@register_compiler(A.Union)
def _compile_union(expr: A.Union, scope, state):
    left_fn = _compile(expr.left, scope, state)
    right_fn = _compile(expr.right, scope, state)
    kind = expr.kind

    def run(frame, context):
        left = left_fn(frame, context)
        right = right_fn(frame, context)
        return union_like(kind, left, right)

    return run


def _filter_shape(body: A.Expr) -> Optional[Tuple[bool, A.Expr]]:
    """Detect the desugarer's filter shape in a loop body.

    Returns ``(emit_when, value_expr)`` for ``if c then Singleton(e) else
    Empty`` and its mirror, else ``None``.  Shared by the eager body emitter
    and the streaming body compiler so the two lowerings can never diverge
    on which bodies qualify.
    """
    if type(body) is not A.IfThenElse:
        return None
    then_branch, else_branch = body.then_branch, body.else_branch
    if type(then_branch) is A.Singleton and type(else_branch) is A.Empty:
        return (True, then_branch.expr)
    if type(then_branch) is A.Empty and type(else_branch) is A.Singleton:
        return (False, else_branch.expr)
    return None


def _compile_body_emitter(body: A.Expr, scope: _Scope, state: _CompileState):
    """Compile a loop body into ``emit(frame, context, elements)``.

    The generic form evaluates the body to a collection and splices its
    elements in.  Two shapes the desugarer and the rewrite rules produce for
    nearly every comprehension get specialized emitters that never build the
    intermediate one-element collection:

    * ``Singleton(e)`` — append ``e`` directly;
    * ``if c then Singleton(e) else Empty`` (a filter) and its mirror —
      test, then append directly.
    """
    if type(body) is A.Singleton:
        value_fn = _compile(body.expr, scope, state)

        def emit_singleton(frame, context, elements):
            elements.append(value_fn(frame, context))

        return emit_singleton

    if type(body) is A.IfThenElse:
        filter_shape = _filter_shape(body)
        if filter_shape is not None:
            emit_when, value_expr = filter_shape
            cond_fn = _compile(body.cond, scope, state)
            value_fn = _compile(value_expr, scope, state)

            def emit_filter(frame, context, elements):
                if _require_bool(cond_fn(frame, context)) is emit_when:
                    elements.append(value_fn(frame, context))

            return emit_filter

    body_fn = _compile(body, scope, state)

    def emit(frame, context, elements):
        value = body_fn(frame, context)
        if isinstance(value, _COLLECTIONS):
            elements.extend(value)
        else:
            elements.extend(iter_collection(materialise(value)))

    return emit


@register_compiler(A.Ext)
def _compile_ext(expr: A.Ext, scope, state):
    source_fn = _compile(expr.source, scope, state)
    emit = _compile_body_emitter(expr.body, scope + (expr.var,), state)
    kind = expr.kind
    slot = len(scope)

    def run(frame, context):
        source = source_fn(frame, context)
        stats = context.statistics
        token = context.cancellation
        budget = context.memory_budget
        elements: list = []
        # One loop frame, one slot, reused across iterations: the hot path
        # allocates no environment.  Escaping closures snapshot the frame.
        loop_frame = _extended(frame, None)
        iterations = 0
        charged = 0
        try:
            if token is None and budget is None:
                for item in iterate_source(source):
                    iterations += 1
                    loop_frame[slot] = item
                    emit(loop_frame, context, elements)
            else:
                # Governed loop: a cancellation checkpoint at the loop head
                # and quantum-batched budget charges for the element buffer.
                for item in iterate_source(source):
                    if token is not None:
                        token.raise_if_cancelled()
                    iterations += 1
                    loop_frame[slot] = item
                    emit(loop_frame, context, elements)
                    if budget is not None and len(elements) - charged >= 256:
                        budget.charge_elements(len(elements) - charged)
                        charged = len(elements)
        finally:
            # Batched counter update; the finally keeps partial counts on a
            # failing body identical to the interpreter's per-iteration ones.
            stats.ext_iterations += iterations
            stats.note_intermediate(len(elements))
        if budget is not None and len(elements) > charged:
            budget.charge_elements(len(elements) - charged)
        return make_collection(kind, elements)

    return run


@register_compiler(A.Fold)
def _compile_fold(expr: A.Fold, scope, state):
    func_fn = _compile(expr.func, scope, state)
    init_fn = _compile(expr.init, scope, state)
    source_fn = _compile(expr.source, scope, state)

    def run(frame, context):
        func = func_fn(frame, context)
        accumulator = init_fn(frame, context)
        stats = context.statistics
        token = context.cancellation
        source = source_fn(frame, context)
        iterations = 0
        try:
            if token is None:
                for item in iterate_source(source):
                    iterations += 1
                    accumulator = _apply_value(
                        _apply_value(func, accumulator, context), item, context)
            else:
                for item in iterate_source(source):
                    token.raise_if_cancelled()
                    iterations += 1
                    accumulator = _apply_value(
                        _apply_value(func, accumulator, context), item, context)
        finally:
            stats.fold_iterations += iterations
        return accumulator

    return run


@register_compiler(A.IfThenElse)
def _compile_if(expr: A.IfThenElse, scope, state):
    cond_fn = _compile(expr.cond, scope, state)
    then_fn = _compile(expr.then_branch, scope, state)
    else_fn = _compile(expr.else_branch, scope, state)

    def run(frame, context):
        if _require_bool(cond_fn(frame, context)):
            return then_fn(frame, context)
        return else_fn(frame, context)

    return run


@register_compiler(A.PrimCall)
def _compile_prim(expr: A.PrimCall, scope, state):
    try:
        function = lookup_primitive(expr.name)
    except EvaluationError:
        # Unknown primitive: the interpreter raises only when the node is
        # reached, so defer the lookup (and its error) to run time.
        function = None
    name = expr.name
    arg_fns = tuple(_compile(arg, scope, state) for arg in expr.args)

    if function is not None and len(arg_fns) == 1:
        only_fn = arg_fns[0]

        def run1(frame, context):
            return function(only_fn(frame, context))

        return run1

    if function is not None and len(arg_fns) == 2:
        first_fn, second_fn = arg_fns

        def run2(frame, context):
            return function(first_fn(frame, context), second_fn(frame, context))

        return run2

    def run(frame, context):
        target = function if function is not None else lookup_primitive(name)
        return target(*[fn(frame, context) for fn in arg_fns])

    return run


@register_compiler(A.Let)
def _compile_let(expr: A.Let, scope, state):
    value_fn = _compile(expr.value, scope, state)
    body_fn = _compile(expr.body, scope + (expr.var,), state)

    def run(frame, context):
        return body_fn(_extended(frame, value_fn(frame, context)), context)

    return run


@register_compiler(A.Deref)
def _compile_deref(expr: A.Deref, scope, state):
    ref_fn = _compile(expr.expr, scope, state)

    def run(frame, context):
        ref = ref_fn(frame, context)
        if not isinstance(ref, Ref):
            raise EvaluationError(f"cannot dereference {type(ref).__name__}")
        return ref.deref()

    return run


@register_compiler(A.Scan)
def _compile_scan(expr: A.Scan, scope, state):
    driver = expr.driver
    base_request = dict(expr.request)
    arg_fns = tuple((key, _compile(arg, scope, state))
                    for key, arg in expr.args.items())

    def run(frame, context):
        executor = context.driver_executor
        if executor is None:
            raise EvaluationError(
                f"no driver executor available to satisfy scan of driver {driver!r}"
            )
        request = dict(base_request)
        for key, fn in arg_fns:
            request[key] = fn(frame, context)
        stats = context.statistics
        stats.scan_requests += 1
        result = executor(driver, request)
        if isinstance(result, _COLLECTIONS):
            stats.scan_elements += len(result)
            return result
        # Lazy cursor: counted as consumed, and registered with the active
        # evaluation scope (if any) so abandoning a pipeline closes it.
        return scan_stream(result, context)

    return run


def _build_source(value, context):
    """The indexed join's build input (governed materialization point).

    Under a spill manager a lazy build side stays a one-pass iterator — the
    governed index built from it is the bounded structure, so materializing
    first would defeat the spill.  Otherwise the existing behavior:
    materialize (the zero-governance path, bit-for-bit as before).
    """
    if context.spill is not None and not isinstance(value, _COLLECTIONS):
        return iterate_source(value)
    return materialise_source(value)


def _materialise_build_side(value, context):
    """Materialize a blocked join's build (inner) side under governance.

    The inner side of a blocked join is iterated multiple times (once per
    outer element or block), so it must be a multi-pass sequence.  Under a
    spill manager a lazy inner becomes a disk-backed
    :class:`~repro.kleisli.spill.SpilledList` (bounded memory, exact order);
    under a budget alone the materialized size is charged; ungoverned — or
    when the value is already a collection (no new memory) — this is exactly
    ``materialise_source``.
    """
    spill = context.spill
    if spill is not None and not isinstance(value, _COLLECTIONS):
        spilled = spill.spilled_list()
        for item in iterate_source(value):
            spilled.append(item)
        return spilled
    result = materialise_source(value)
    budget = context.memory_budget
    if budget is not None and not isinstance(value, _COLLECTIONS):
        budget.charge_elements(len(result))
    return result


def _build_join_index(inner, inner_key_fn, frame, key_slot, context):
    """Build the hash index of an indexed join's inner (build) side.

    Shared by the eager and streaming join lowerings so the index layout
    and key evaluation cannot diverge; the key frame reuses one slot across
    inner elements exactly like a loop frame.  This is a governed
    materialization point: under a spill manager the index is the
    disk-backed :class:`~repro.kleisli.spill.SpilledIndex`; under a budget
    alone each indexed row is charged (quantum-batched).
    """
    key_frame = _extended(frame, None)
    spill = context.spill
    if spill is not None:
        spilled = spill.index()
        for inner_item in inner:
            key_frame[key_slot] = inner_item
            spilled.add(inner_key_fn(key_frame, context), inner_item)
        return key_frame, spilled
    index: Dict[object, list] = {}
    budget = context.memory_budget
    if budget is None:
        for inner_item in inner:
            key_frame[key_slot] = inner_item
            index.setdefault(inner_key_fn(key_frame, context), []).append(inner_item)
        return key_frame, index
    count = 0
    for inner_item in inner:
        key_frame[key_slot] = inner_item
        index.setdefault(inner_key_fn(key_frame, context), []).append(inner_item)
        count += 1
        if count % 256 == 0:
            budget.charge_elements(256)
    if count % 256:
        budget.charge_elements(count % 256)
    return key_frame, index


@register_compiler(A.Join)
def _compile_join(expr: A.Join, scope, state):
    outer_fn = _compile(expr.outer, scope, state)
    inner_fn = _compile(expr.inner, scope, state)
    pair_scope = scope + (expr.outer_var, expr.inner_var)
    emit = _compile_body_emitter(expr.body, pair_scope, state)
    cond_fn = None
    if expr.condition is not None:
        cond_fn = _compile(expr.condition, pair_scope, state)
    kind = expr.kind
    outer_slot = len(scope)
    inner_slot = outer_slot + 1

    if expr.method == "indexed":
        if expr.outer_key is None or expr.inner_key is None:
            def broken(frame, context):
                raise EvaluationError(
                    "indexed join requires outer and inner key expressions")
            return broken
        outer_key_fn = _compile(expr.outer_key, scope + (expr.outer_var,), state)
        inner_key_fn = _compile(expr.inner_key, scope + (expr.inner_var,), state)

        def run_indexed(frame, context):
            outer = materialise_source(outer_fn(frame, context))
            context.statistics.joins_indexed += 1
            inner = _build_source(inner_fn(frame, context), context)
            key_frame, index = _build_join_index(
                inner, inner_key_fn, frame, outer_slot, context)
            elements: list = []
            pair_frame = _extended(_extended(frame, None), None)
            for outer_item in outer:
                key_frame[outer_slot] = outer_item
                matches = index.get(outer_key_fn(key_frame, context))
                if not matches:
                    continue
                pair_frame[outer_slot] = outer_item
                for inner_item in matches:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    emit(pair_frame, context, elements)
            return make_collection(kind, elements)

        return run_indexed

    block_size = max(1, expr.block_size)

    if block_size == 1:
        def run_unit_blocked(frame, context):
            # Per-element probe: the inner side is materialized ONCE and
            # probed per outer element (like the indexed join), instead of
            # re-evaluated per one-element block — same policy as the
            # interpreter and the streamed lowering.
            outer = materialise_source(outer_fn(frame, context))
            context.statistics.joins_blocked += 1
            elements: list = []
            pair_frame = _extended(_extended(frame, None), None)
            inner = None
            for outer_item in outer:
                if inner is None:
                    inner = _materialise_build_side(
                        inner_fn(frame, context), context)
                pair_frame[outer_slot] = outer_item
                for inner_item in inner:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    emit(pair_frame, context, elements)
            return make_collection(kind, elements)

        return run_unit_blocked

    def run_blocked(frame, context):
        outer = materialise_source(outer_fn(frame, context))
        context.statistics.joins_blocked += 1
        elements: list = []
        pair_frame = _extended(_extended(frame, None), None)
        for start in range(0, len(outer), block_size):
            block = outer[start:start + block_size]
            # The inner side is re-evaluated once per outer block, exactly
            # like the interpreter (a driver stream can be consumed once);
            # emission is outer-major so the block size never shows in the
            # element sequence (see the interpreter's _blocked_join).
            inner = _materialise_build_side(inner_fn(frame, context), context)
            for outer_item in block:
                pair_frame[outer_slot] = outer_item
                for inner_item in inner:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    emit(pair_frame, context, elements)
        return make_collection(kind, elements)

    return run_blocked


@register_compiler(A.Cached)
def _compile_cached(expr: A.Cached, scope, state):
    inner_fn = _compile(expr.expr, scope, state)
    key = expr.key

    def run(frame, context):
        cache = context.cache
        stats = context.statistics
        if key in cache:
            stats.cache_hits += 1
            return cache[key]
        stats.cache_misses += 1
        value = cache_payload(inner_fn(frame, context))
        cache[key] = value
        return value

    return run


# ---------------------------------------------------------------------------
# The public entry point
# ---------------------------------------------------------------------------

def _build_frame(free_names: Tuple[str, ...], env: Optional[Environment]) -> list:
    """Read a query's free names out of ``env`` into the flat top-level frame.

    Shared by both lowering targets so unbound-name handling cannot diverge
    between ``execute`` and ``stream``: a missing binding becomes an
    :class:`_Unbound` marker, raising only if the variable is reached.
    """
    frame: list = []
    for name in free_names:
        try:
            frame.append(env.lookup(name) if env is not None
                         else _Unbound(name))
        except UnboundVariableError:
            frame.append(_Unbound(name))
    return frame


class CompiledQuery:
    """An NRC term lowered to nested closures, callable like the evaluator.

    ``free_names`` lists the term's free variables in slot order; calling the
    query reads them out of the supplied :class:`Environment` into the flat
    top-level frame.  ``fallback_nodes`` names the node types (if any) that
    had no native compiler and were delegated to the interpreter.
    """

    __slots__ = ("expr", "free_names", "fallback_nodes", "_fn")

    def __init__(self, expr: A.Expr):
        self.expr = expr
        self.free_names: Tuple[str, ...] = tuple(sorted(free_variables(expr)))
        state = _CompileState(n_free=len(self.free_names))
        self._fn = _compile(expr, self.free_names, state)
        self.fallback_nodes: Tuple[str, ...] = tuple(sorted(set(state.fallbacks)))

    @property
    def fully_compiled(self) -> bool:
        return not self.fallback_nodes

    def __call__(self, env: Optional[Environment] = None,
                 context: Optional[EvalContext] = None) -> object:
        context = context if context is not None else EvalContext()
        return self._fn(_build_frame(self.free_names, env), context)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "full" if self.fully_compiled else \
            "fallback: " + ", ".join(self.fallback_nodes)
        return f"<CompiledQuery ({status})>"


def compile_term(term: A.Expr) -> CompiledQuery:
    """Lower an (optimized) NRC term into nested closures.

    Returns a :class:`CompiledQuery`; call it with an
    :class:`~repro.core.nrc.eval.Environment` and an
    :class:`~repro.core.nrc.eval.EvalContext` to evaluate.
    """
    return CompiledQuery(term)


# ---------------------------------------------------------------------------
# Streaming (pull-based) lowering
# ---------------------------------------------------------------------------
#
# The second lowering target: instead of a closure returning a materialized
# collection, each node becomes a *generator pipeline* stage yielding
# elements as they are produced.  ``Ext``-of-``Ext`` chains, filters,
# the probe side of hash joins, ``Union`` under a kind proof and
# ``ParallelExt`` (registered in repro.core.optimizer.parallel) all pull
# from their source incrementally, so the first result of a remote-scan
# comprehension arrives after O(1) source elements.  Set-kind loop/join/
# union stages dedup as they go (see _dedup_set_stream), matching the eager
# CSet element-for-element.  Nodes with no pull-based form (Fold, PrimCall,
# arbitrary bodies, Union operands whose collection kind cannot be
# statically proven) are lowered *eagerly* inside the pipeline; those
# sections are named in ``CompiledStream.eager_nodes`` and counted at run
# time by ``EvalStatistics.stream_fallbacks``, mirroring the eager
# backend's interpreter fallback.

_StreamFn = Callable[[list, EvalContext], object]
_STREAM_COMPILERS: Dict[Type[A.Expr], Callable[[A.Expr, _Scope, _CompileState], _StreamFn]] = {}


def register_stream_compiler(node_type: Type[A.Expr]):
    """Register a pull-based (generator) lowering for an AST node type.

    Same exact-type dispatch contract as :func:`register_compiler`.  The
    registered function compiles ``expr`` to a *generator function*
    ``stream(frame, context)`` whose iterator yields the element sequence of
    the node's collection value; no work (including driver requests) may
    happen before the first ``next()``.
    """

    def decorator(function):
        _STREAM_COMPILERS[node_type] = function
        return function

    return decorator


def streamable_node_types() -> Tuple[str, ...]:
    """Names of node types with a native pull-based lowering."""
    return tuple(sorted(cls.__name__ for cls in _STREAM_COMPILERS))


def _iterate_streamed(value: object, context: EvalContext):
    """Iterate a collection or lazy stream produced by an eager section.

    Accepts exactly what :func:`~repro.core.nrc.eval.iterate_source` accepts
    (any iterable), so a term legal as a generator source under the eager
    backend is legal under the streaming one.  Lazy cursors that are not
    already scope-registered (``_CountingStream`` registers itself at
    creation) are registered with the active scope so an abandoned pipeline
    releases them deterministically.
    """
    if isinstance(value, _COLLECTIONS):
        return iter(value)
    if hasattr(value, "__iter__"):
        if not isinstance(value, _CountingStream):
            scope = context.scope
            if scope is not None and hasattr(value, "close"):
                scope.register(value)
                return _unregistering_iter(value, scope)
        return iter(value)
    raise EvaluationError(
        f"generator source must be a collection, got {type(value).__name__}"
    )


def _unregistering_iter(value: object, scope):
    """Iterate a scope-registered cursor, unregistering it when drained.

    Mirrors ``_CountingStream``'s self-unregistration: on natural
    exhaustion the scope stops tracking the dead cursor (so a long pipeline
    does not pin one per occurrence); on abandonment the ``yield from``
    never completes and the scope's close still reaches it.
    """
    yield from iter(value)
    scope.unregister(value)


def _compile_stream(expr: A.Expr, scope: _Scope, state: _CompileState) -> _StreamFn:
    compiler = _STREAM_COMPILERS.get(type(expr))
    if compiler is None:
        return _stream_via_eager(expr, scope, state)
    return compiler(expr, scope, state)


def _stream_via_eager(expr: A.Expr, scope: _Scope, state: _CompileState) -> _StreamFn:
    """Evaluate a non-streamable subtree eagerly, then yield its elements."""
    state.eager.append(type(expr).__name__)
    fn = _compile(expr, scope, state)

    def stream(frame, context):
        context.statistics.stream_fallbacks += 1
        yield from _iterate_streamed(fn(frame, context), context)

    return stream


def _stream_leaf(expr: A.Expr, scope: _Scope, state: _CompileState) -> _StreamFn:
    """A leaf in source position: evaluate (cheap), iterate lazily.

    Unlike :func:`_stream_via_eager` this is not a fallback — a bound
    collection or constant has no cheaper pull-based form — so it is not
    counted in ``eager_nodes``/``stream_fallbacks``.
    """
    fn = _compile(expr, scope, state)

    def stream(frame, context):
        yield from _iterate_streamed(fn(frame, context), context)

    return stream


register_stream_compiler(A.Var)(_stream_leaf)
register_stream_compiler(A.Const)(_stream_leaf)


@register_stream_compiler(A.Empty)
def _stream_empty(expr: A.Empty, scope, state):
    def stream(frame, context):
        return
        yield  # pragma: no cover - makes this a generator function

    return stream


@register_stream_compiler(A.Singleton)
def _stream_singleton(expr: A.Singleton, scope, state):
    value_fn = _compile(expr.expr, scope, state)

    def stream(frame, context):
        yield value_fn(frame, context)

    return stream


@register_stream_compiler(A.Union)
def _stream_union(expr: A.Union, scope, state):
    """The typed streaming union: chain the operand streams under a kind proof.

    ``union_like`` both deduplicates (sets) and type-checks the two
    operands' collection classes (all kinds).  When the static kind proof
    (:func:`~repro.core.nrc.structural.proven_collection_kind`) guarantees
    both operands produce this union's collection class, the run-time check
    is redundant and the union pipelines: the left operand's elements, then
    the right's — for sets under one seen-filter carried across both
    operands, which matches ``left.union(right)``'s first-occurrence order
    exactly (bag/list union is concatenation, so chaining is the semantics).

    Without a proof for either operand (a bound ``Var``, a ``Scan``, a
    ``Cached`` value — or a *provable mismatch*), the union stays an eager
    ``union_like`` section: chaining would silently accept terms ``execute``
    rejects.
    """
    kind = expr.kind
    if (proven_collection_kind(expr.left) != kind
            or proven_collection_kind(expr.right) != kind):
        return _stream_via_eager(expr, scope, state)
    left_fn = _compile_stream(expr.left, scope, state)
    right_fn = _compile_stream(expr.right, scope, state)
    if kind == "set":
        # The union's own seen-filter below provides all the dedup the
        # chain needs, so operands that dedup on their own (set-kind
        # Ext/Join/ParallelExt, nested unions) are unwrapped to their raw
        # stages — an N-level union chain then carries exactly one seen-set
        # instead of N+1 (operands without the wrapper stream as-is).
        left_fn = getattr(left_fn, "undeduped", left_fn)
        right_fn = getattr(right_fn, "undeduped", right_fn)

    def stream(frame, context):
        yield from left_fn(frame, context)
        yield from right_fn(frame, context)

    if kind == "set":
        return _dedup_set_stream(stream)
    return stream


@register_stream_compiler(A.IfThenElse)
def _stream_if(expr: A.IfThenElse, scope, state):
    cond_fn = _compile(expr.cond, scope, state)
    then_fn = _compile_stream(expr.then_branch, scope, state)
    else_fn = _compile_stream(expr.else_branch, scope, state)

    def stream(frame, context):
        if _require_bool(cond_fn(frame, context)):
            yield from then_fn(frame, context)
        else:
            yield from else_fn(frame, context)

    return stream


@register_stream_compiler(A.Let)
def _stream_let(expr: A.Let, scope, state):
    value_fn = _compile(expr.value, scope, state)
    body_fn = _compile_stream(expr.body, scope + (expr.var,), state)

    def stream(frame, context):
        yield from body_fn(_extended(frame, value_fn(frame, context)), context)

    return stream


@register_stream_compiler(A.Scan)
def _stream_scan(expr: A.Scan, scope, state):
    run = _compile_scan(expr, scope, state)

    def stream(frame, context):
        # The request fires on first next(); a lazy cursor is registered with
        # the evaluation scope inside the eager scan closure (scan_stream).
        yield from _iterate_streamed(run(frame, context), context)

    return stream


# A Cached node is a deliberate materialization point: the subquery cache
# stores whole collections (cache_payload), so the pipeline evaluates it
# eagerly (hitting the cache) and yields from the cached value — exactly
# the leaf treatment, and likewise not counted as a fallback.
register_stream_compiler(A.Cached)(_stream_leaf)


class _BudgetedSeenSet:
    """A dedup seen-set that charges the run's memory budget as it grows.

    Charges are quantum-batched (one hierarchical budget walk per
    :data:`QUANTUM` distinct elements, not per element) so the dedup hot
    path pays one counter increment per element; the at-most-one-quantum
    under-charge at stream end is bounded and released with the budget.
    """

    QUANTUM = 256

    __slots__ = ("_set", "_budget", "_pending")

    def __init__(self, budget):
        self._set: set = set()
        self._budget = budget
        self._pending = 0

    def __contains__(self, value) -> bool:
        return value in self._set

    def add(self, value) -> None:
        before = len(self._set)
        self._set.add(value)
        if len(self._set) != before:
            self._pending += 1
            if self._pending >= self.QUANTUM:
                self._budget.charge_elements(self._pending)
                self._pending = 0

    def __len__(self) -> int:
        return len(self._set)


def _make_seen_set(context: EvalContext):
    """The seen-set for a set-kind dedup stage (governed materialization point).

    Plain ``set()`` ungoverned (the zero-governance path), a disk-backed
    :class:`~repro.kleisli.spill.GovernedSeenSet` under a spill manager
    (bounded memory, exact dedup), a budget-charging set under a budget
    alone.  All three satisfy the ``in``/``add`` protocol the dedup loops
    use, so chunk sizes and values stay identical across the backends.
    """
    spill = context.spill
    if spill is not None:
        return spill.seen_set()
    budget = context.memory_budget
    if budget is not None:
        return _BudgetedSeenSet(budget)
    return set()


def _dedup_set_stream(stream_fn: _StreamFn) -> _StreamFn:
    """Dedup-as-you-go for set-kind pipelines.

    ``CSet`` iterates in first-occurrence insertion order, so suppressing
    repeats incrementally yields *exactly* the element sequence of the
    eagerly built set — laziness preserved, at O(distinct elements) memory
    (no worse than the eager result itself).

    The wrapper remembers the raw stage (``undeduped``) so an enclosing
    set-kind union can chain operand streams under ONE shared seen-filter:
    filtering the raw concatenation yields the same first-occurrence
    sequence as filtering pre-deduped operands, at one hash probe and one
    live seen-set per element instead of one per pipeline layer.
    """

    def stream(frame, context):
        seen = _make_seen_set(context)
        for element in stream_fn(frame, context):
            if element not in seen:
                seen.add(element)
                yield element

    stream.undeduped = stream_fn
    return stream


def _compile_stream_body(body: A.Expr, scope: _Scope, state: _CompileState):
    """Compile a loop body for streaming: ``('value', fn)``, ``('filter',
    (cond_fn, value_fn, emit_when))`` or ``('stream', stream_fn)``.

    Mirrors :func:`_compile_body_emitter`'s specializations so the common
    ``Singleton``/filter bodies cost one closure call per element instead of
    a nested generator.
    """
    if type(body) is A.Singleton:
        return ("value", _compile(body.expr, scope, state))
    filter_shape = _filter_shape(body)
    if filter_shape is not None:
        emit_when, value_expr = filter_shape
        cond_fn = _compile(body.cond, scope, state)
        value_fn = _compile(value_expr, scope, state)
        return ("filter", (cond_fn, value_fn, emit_when))
    return ("stream", _compile_stream(body, scope, state))


@register_stream_compiler(A.Ext)
def _stream_ext(expr: A.Ext, scope, state):
    source_fn = _compile_stream(expr.source, scope, state)
    mode, body = _compile_stream_body(expr.body, scope + (expr.var,), state)
    slot = len(scope)

    if mode == "value":
        value_fn = body

        def stream_fn(frame, context):
            stats = context.statistics
            loop_frame = _extended(frame, None)
            for item in source_fn(frame, context):
                stats.ext_iterations += 1
                loop_frame[slot] = item
                yield value_fn(loop_frame, context)

    elif mode == "filter":
        cond_fn, value_fn, emit_when = body

        def stream_fn(frame, context):
            stats = context.statistics
            loop_frame = _extended(frame, None)
            for item in source_fn(frame, context):
                stats.ext_iterations += 1
                loop_frame[slot] = item
                if _require_bool(cond_fn(loop_frame, context)) is emit_when:
                    yield value_fn(loop_frame, context)

    else:
        body_fn = body

        def stream_fn(frame, context):
            stats = context.statistics
            # The loop frame is safely reused across iterations: the body's
            # element stream for item N is exhausted before item N+1 is
            # pulled, and escaping closures snapshot the frame at creation.
            loop_frame = _extended(frame, None)
            for item in source_fn(frame, context):
                stats.ext_iterations += 1
                loop_frame[slot] = item
                yield from body_fn(loop_frame, context)

    if expr.kind == "set":
        return _dedup_set_stream(stream_fn)
    return stream_fn


def _stream_join_emit(mode, body, pair_frame, context):
    """Yield the body elements for one matched pair (streaming join helper)."""
    if mode == "value":
        yield body(pair_frame, context)
    elif mode == "filter":
        cond_fn, value_fn, emit_when = body
        if _require_bool(cond_fn(pair_frame, context)) is emit_when:
            yield value_fn(pair_frame, context)
    else:
        yield from body(pair_frame, context)


@register_stream_compiler(A.Join)
def _stream_join(expr: A.Join, scope, state):
    """Stream the probe (outer) side of a join; the build side materializes.

    The asymmetry is inherent: an indexed join's hash index (and a blocked
    join's per-block inner rescan) needs the whole inner collection, but the
    outer side can be consumed element-by-element (indexed) or block-by-block
    (blocked), so results flow before the outer source is exhausted.
    """
    outer_fn = _compile_stream(expr.outer, scope, state)
    inner_fn = _compile(expr.inner, scope, state)
    pair_scope = scope + (expr.outer_var, expr.inner_var)
    mode, body = _compile_stream_body(expr.body, pair_scope, state)
    cond_fn = None
    if expr.condition is not None:
        cond_fn = _compile(expr.condition, pair_scope, state)
    outer_slot = len(scope)
    inner_slot = outer_slot + 1

    if expr.method == "indexed":
        if expr.outer_key is None or expr.inner_key is None:
            def broken(frame, context):
                raise EvaluationError(
                    "indexed join requires outer and inner key expressions")
                yield  # pragma: no cover
            return broken
        outer_key_fn = _compile(expr.outer_key, scope + (expr.outer_var,), state)
        inner_key_fn = _compile(expr.inner_key, scope + (expr.inner_var,), state)

        def stream_indexed(frame, context):
            context.statistics.joins_indexed += 1
            outer = outer_fn(frame, context)
            # Build side: materialized into a hash index before probing.
            inner = _build_source(inner_fn(frame, context), context)
            key_frame, index = _build_join_index(
                inner, inner_key_fn, frame, outer_slot, context)
            pair_frame = _extended(_extended(frame, None), None)
            for outer_item in outer:
                key_frame[outer_slot] = outer_item
                matches = index.get(outer_key_fn(key_frame, context))
                if not matches:
                    continue
                pair_frame[outer_slot] = outer_item
                for inner_item in matches:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    yield from _stream_join_emit(mode, body, pair_frame, context)

        if expr.kind == "set":
            return _dedup_set_stream(stream_indexed)
        return stream_indexed

    block_size = max(1, expr.block_size)

    if block_size == 1:
        def stream_unit_blocked(frame, context):
            # Per-element probe (what the optimizer emits under the
            # streaming hint): pull one outer element, materialize the inner
            # side ONCE on first need, and yield that element's matches
            # immediately — the blocked join's time-to-first-result becomes
            # one outer element plus the build side, like the indexed join.
            context.statistics.joins_blocked += 1
            pair_frame = _extended(_extended(frame, None), None)
            inner = None
            for outer_item in outer_fn(frame, context):
                if inner is None:
                    inner = _materialise_build_side(
                        inner_fn(frame, context), context)
                pair_frame[outer_slot] = outer_item
                for inner_item in inner:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    yield from _stream_join_emit(mode, body, pair_frame, context)

        if expr.kind == "set":
            return _dedup_set_stream(stream_unit_blocked)
        return stream_unit_blocked

    def stream_blocked(frame, context):
        context.statistics.joins_blocked += 1
        pair_frame = _extended(_extended(frame, None), None)
        outer = iter(outer_fn(frame, context))
        while True:
            block = []
            for outer_item in outer:
                block.append(outer_item)
                if len(block) >= block_size:
                    break
            if not block:
                return
            # The inner side is re-evaluated once per outer block, exactly
            # like the eager lowering (a driver stream can be consumed
            # once); outer-major emission keeps the sequence block-size-
            # independent.
            inner = _materialise_build_side(inner_fn(frame, context), context)
            for outer_item in block:
                pair_frame[outer_slot] = outer_item
                for inner_item in inner:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    yield from _stream_join_emit(mode, body, pair_frame, context)

    if expr.kind == "set":
        return _dedup_set_stream(stream_blocked)
    return stream_blocked


class CompiledStream:
    """An NRC term lowered to a pull-based generator pipeline.

    Calling it returns an *iterator* over the elements of the term's
    collection value (a non-collection value is yielded as a single
    element, matching ``KleisliEngine.stream``).  The whole run happens
    inside a fresh :class:`~repro.core.nrc.eval.EvalScope` on the supplied
    context: every cursor the pipeline opens — source scans *and* body-level
    scans — is released when the iterator is exhausted or closed early.

    ``eager_nodes`` names node types that had no pull-based lowering and ran
    eagerly inside the pipeline; ``fallback_nodes`` names node types (inside
    those eager sections) delegated all the way back to the interpreter.
    """

    __slots__ = ("expr", "free_names", "fallback_nodes", "eager_nodes", "_fn")

    def __init__(self, expr: A.Expr):
        self.expr = expr
        self.free_names: Tuple[str, ...] = tuple(sorted(free_variables(expr)))
        state = _CompileState(n_free=len(self.free_names))
        self._fn = self._lower_toplevel(expr, self.free_names, state)
        self.fallback_nodes: Tuple[str, ...] = tuple(sorted(set(state.fallbacks)))
        self.eager_nodes: Tuple[str, ...] = tuple(sorted(set(state.eager)))

    @classmethod
    def _lower_toplevel(cls, expr: A.Expr, scope: _Scope, state: _CompileState) -> _StreamFn:
        """Top-level lowering: tolerates a non-collection result.

        A scalar query streams as a single element (matching the engine's
        historical ``stream`` contract), unlike source/body positions where
        a scalar is an error.  The tolerance follows the *transparent spine*
        — ``Let`` bodies, ``IfThenElse`` branches, and value leaves — so
        ``Let(x, Ext(...))`` still streams its comprehension while
        ``Let(x, x + 2)`` yields one element instead of raising.
        """
        node_type = type(expr)
        if node_type is A.Let:
            value_fn = _compile(expr.value, scope, state)
            body_fn = cls._lower_toplevel(expr.body, scope + (expr.var,), state)

            def stream_let(frame, context):
                yield from body_fn(_extended(frame, value_fn(frame, context)),
                                   context)

            return stream_let
        if node_type is A.IfThenElse:
            cond_fn = _compile(expr.cond, scope, state)
            then_fn = cls._lower_toplevel(expr.then_branch, scope, state)
            else_fn = cls._lower_toplevel(expr.else_branch, scope, state)

            def stream_if(frame, context):
                if _require_bool(cond_fn(frame, context)):
                    yield from then_fn(frame, context)
                else:
                    yield from else_fn(frame, context)

            return stream_if
        if node_type in (A.Var, A.Const, A.Cached):
            # Value leaves (and Cached, a materialization point): evaluate,
            # then stream elements — or the value itself when it is scalar.
            return cls._tolerant_stream(_compile(expr, scope, state),
                                        count_fallback=False)
        if node_type in _STREAM_COMPILERS:
            # Collection-producing nodes (Ext, Scan, Join, Union, ...): a
            # scalar cannot legally appear here, so stream directly.
            return _compile_stream(expr, scope, state)
        state.eager.append(node_type.__name__)
        return cls._tolerant_stream(_compile(expr, scope, state),
                                    count_fallback=True)

    @staticmethod
    def _tolerant_stream(fn: _CompiledFn, count_fallback: bool) -> _StreamFn:
        """Yield a value's elements if it is a CPL collection, else the value.

        Deliberately as strict as ``iter_collection``: a plain Python
        iterable (tuple, dict, generator) bound to a variable is *one*
        value, exactly as ``execute`` and the interpreted stream treat it —
        not an element sequence to explode.
        """

        def stream(frame, context):
            if count_fallback:
                context.statistics.stream_fallbacks += 1
            value = fn(frame, context)
            if isinstance(value, _COLLECTIONS):
                yield from value
            else:
                yield value

        return stream

    @property
    def fully_compiled(self) -> bool:
        """No interpreter fallback anywhere in the pipeline."""
        return not self.fallback_nodes

    @property
    def fully_streamed(self) -> bool:
        """Every node lowered pull-based (no eager sections)."""
        return not self.eager_nodes

    def __call__(self, env: Optional[Environment] = None,
                 context: Optional[EvalContext] = None):
        context = context if context is not None else EvalContext()
        return self._pump(_build_frame(self.free_names, env), context)

    def _pump(self, frame, context):
        # The scope spans the whole iteration: activated on first next(),
        # closed (releasing every registered cursor) when the pipeline is
        # exhausted, abandoned (GeneratorExit) or fails.
        with context.evaluation_scope():
            token = context.cancellation
            if token is None:
                yield from self._fn(frame, context)
                return
            # Governed pump: one cooperative checkpoint per element pull,
            # raised inside the scope so cancellation releases every cursor.
            for element in self._fn(frame, context):
                token.raise_if_cancelled()
                yield element

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        detail = "fully streamed" if self.fully_streamed else \
            "eager: " + ", ".join(self.eager_nodes)
        return f"<CompiledStream ({detail})>"


def compile_stream(term: A.Expr) -> CompiledStream:
    """Lower an (optimized) NRC term into a pull-based generator pipeline.

    Returns a :class:`CompiledStream`; call it with an
    :class:`~repro.core.nrc.eval.Environment` and an
    :class:`~repro.core.nrc.eval.EvalContext` to get the element iterator.
    """
    return CompiledStream(term)


# ---------------------------------------------------------------------------
# Chunked (morsel-at-a-time) lowering
# ---------------------------------------------------------------------------
#
# The third lowering target: stages exchange *lists* of at most K elements
# instead of single elements, so the per-element cost of a pipeline stage is
# one tight-loop iteration rather than a generator-frame suspend/resume.
# Adjacent Ext stages with map/filter bodies fuse into ONE chunk stage that
# runs each stage as a tight loop over the chunk; set-kind dedup, the typed
# union's shared seen-filter and both join probes have chunk-wise forms that
# preserve exact element-sequence parity with execute (see the module
# docstring's "Chunked semantics").  Chunk sizes ramp from 1 (first chunk =
# first element: TTFR parity with the per-element stream) doubling up to the
# ChunkPolicy maximum, read from the EvalContext at run time.


class ChunkPolicy:
    """Chunk-size policy for the chunked lowering (a run-time parameter).

    ``sizes_for(driver)`` returns the ``(initial, maximum)`` ramp bounds for
    a source: chunks start at ``initial`` (1 by default, protecting
    time-to-first-result) and double per chunk up to ``maximum``.  Remote
    drivers — decided by the ``is_remote`` callable, which
    ``KleisliEngine.stream`` wires to its
    :class:`~repro.kleisli.statistics.SourceStatisticsRegistry` — keep the
    smaller ``remote_max_chunk`` so one chunk never buffers more than a
    bounded slice of a slow cursor; local sources ramp to ``max_chunk``.

    ``parallel_chunk`` selects the granularity of a streamed
    ``ParallelExt``'s prefetcher: 1 (the default) keeps one in-flight task
    per source *element* — the right shape for overlapping remote latency,
    and exactly the per-element backend's bounding behavior — while a larger
    value submits one task per ``parallel_chunk`` source elements
    (``AdaptiveScheduler.prefetch``'s chunk-granular mode), amortizing task
    overhead when the body is cheap.
    """

    DEFAULT_MAX_CHUNK = 1024
    REMOTE_MAX_CHUNK = 32

    __slots__ = ("max_chunk", "remote_max_chunk", "initial_chunk",
                 "parallel_chunk", "is_remote", "adaptive_ramp")

    def __init__(self, max_chunk: int = DEFAULT_MAX_CHUNK,
                 remote_max_chunk: int = REMOTE_MAX_CHUNK,
                 initial_chunk: int = 1, parallel_chunk: int = 1,
                 is_remote: Optional[Callable[[str], bool]] = None,
                 adaptive_ramp: bool = False):
        for name, value in (("max_chunk", max_chunk),
                            ("remote_max_chunk", remote_max_chunk),
                            ("initial_chunk", initial_chunk),
                            ("parallel_chunk", parallel_chunk)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}")
        if initial_chunk > max_chunk:
            raise ValueError(
                f"initial_chunk ({initial_chunk}) must not exceed "
                f"max_chunk ({max_chunk}): the ramp only ever grows")
        self.max_chunk = max_chunk
        self.remote_max_chunk = remote_max_chunk
        self.initial_chunk = initial_chunk
        self.parallel_chunk = parallel_chunk
        self.is_remote = is_remote
        #: With the planner's cost-adaptive ramp, chunk sizes stop doubling
        #: when the marginal per-chunk cost stops improving (see _ChunkRamp).
        self.adaptive_ramp = adaptive_ramp

    def sizes_for(self, driver: Optional[str] = None) -> Tuple[int, int]:
        """The ``(initial, maximum)`` chunk-size ramp bounds for a source."""
        maximum = self.max_chunk
        if driver is not None and self.is_remote is not None \
                and self.is_remote(driver):
            maximum = self.remote_max_chunk
        return self.initial_chunk, max(self.initial_chunk, maximum)


#: The policy used when a context carries none (local ramp to 1024).
DEFAULT_CHUNK_POLICY = ChunkPolicy()


def _active_policy(context: EvalContext) -> ChunkPolicy:
    policy = getattr(context, "chunk_policy", None)
    return DEFAULT_CHUNK_POLICY if policy is None else policy


def _ramped_chunks(iterator, initial: int, maximum: int,
                   adaptive: bool = False):
    """Group an element iterator into ramping chunks: 1, 2, 4, ... maximum.

    Pulls exactly ``size`` elements before yielding a chunk — no lookahead
    beyond the chunk boundary, so a consumer that stops early never caused
    more source consumption than the chunk it is reading (the same bounding
    the per-element stream gives, at chunk granularity).  With ``adaptive``
    (the planner's cost-adaptive ramp) the doubling stops when the marginal
    per-chunk cost stops improving — see :class:`_ChunkRamp`.
    """
    if adaptive:
        yield from _ChunkRamp(initial, maximum, adaptive=True) \
            .emit_pulled(iterator)
        return
    size = max(1, initial)
    maximum = max(size, maximum)
    chunk: list = []
    append = chunk.append
    for item in iterator:
        append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            append = chunk.append
            if size < maximum:
                size = min(maximum, size * 2)
    if chunk:
        yield chunk


class _ChunkRamp:
    """A chunk-size ramp shared across several emission sites.

    The batched-scan stage emits one result's elements after another; a
    ramp that restarted at 1 for every result would re-pay tiny-chunk
    dispatch overhead per result.  This object carries the size across
    them: it still starts at ``initial`` (protecting the pipeline's very
    first chunk — TTFR) and doubles per emitted chunk to ``maximum``.

    With ``adaptive`` set (``ChunkPolicy.adaptive_ramp``, chosen by the
    planner) each chunk's *production* cost is measured — the time from
    resuming the producer to the chunk being ready, which excludes the
    consumer's own work between pulls.  Doubling amortizes per-chunk
    dispatch overhead; once a doubling fails to cut the per-element cost
    (``RAMP_IMPROVEMENT``), growing further only adds buffering and
    latency, so the ramp freezes at the current size.  Chunks cheaper than
    ``RAMP_COST_FLOOR`` carry no signal above timer noise and ramp exactly
    like the non-adaptive policy — with nothing measurable to amortize, a
    bigger chunk costs nothing — so an adaptive ramp over a fast local
    source is behaviourally identical to the geometric one.
    """

    #: A doubling must cut per-element production cost to below this
    #: fraction of the previous chunk's, or the ramp freezes.
    RAMP_IMPROVEMENT = 0.9
    #: Per-chunk production cost (seconds) below which there is no signal.
    RAMP_COST_FLOOR = 0.001

    __slots__ = ("size", "maximum", "adaptive", "_unit_cost", "_frozen")

    def __init__(self, initial: int, maximum: int, adaptive: bool = False):
        self.size = max(1, initial)
        self.maximum = max(self.size, maximum)
        self.adaptive = adaptive
        self._unit_cost: Optional[float] = None
        self._frozen = False

    def emit_sliced(self, elements):
        """Ramped chunks of an indexable sequence, by C-level slicing."""
        if self.adaptive:
            yield from self._emit_timed(iter(elements), sliced=elements)
            return
        start = 0
        total = len(elements)
        while start < total:
            yield list(elements[start:start + self.size])
            start += self.size
            self._grow()

    def emit_pulled(self, iterator):
        """Ramped chunks of a lazy cursor (no lookahead past the chunk)."""
        if self.adaptive:
            yield from self._emit_timed(iterator)
            return
        chunk: list = []
        append = chunk.append
        for item in iterator:
            append(item)
            if len(chunk) >= self.size:
                yield chunk
                chunk = []
                append = chunk.append
                self._grow()
        if chunk:
            yield chunk

    def _emit_timed(self, iterator, sliced=None):
        """The adaptive paths: per-chunk production timing feeds the ramp.

        ``sliced`` keeps the C-level slice cut for materialized sources
        (timing a slice is near-free, and near-free chunks keep doubling,
        so the fast path's behaviour is preserved).
        """
        if sliced is not None:
            start = 0
            total = len(sliced)
            while start < total:
                began = time.perf_counter()
                chunk = list(sliced[start:start + self.size])
                start += self.size
                self._note(len(chunk), time.perf_counter() - began)
                yield chunk
                self._grow()
            return
        chunk: list = []
        append = chunk.append
        began = time.perf_counter()
        for item in iterator:
            append(item)
            if len(chunk) >= self.size:
                self._note(len(chunk), time.perf_counter() - began)
                yield chunk
                chunk = []
                append = chunk.append
                self._grow()
                began = time.perf_counter()
        if chunk:
            yield chunk

    def _note(self, produced: int, elapsed: float) -> None:
        """Feed one chunk's production cost into the ramp decision."""
        if self._frozen or produced <= 0:
            return
        if elapsed < self.RAMP_COST_FLOOR:
            # Too cheap to measure: keep doubling (matches the blind ramp),
            # and leave the baseline untouched — a noise-era unit cost would
            # misread the first real chunk as a catastrophic regression.
            self._unit_cost = None
            return
        unit = elapsed / produced
        if self._unit_cost is not None \
                and unit > self._unit_cost * self.RAMP_IMPROVEMENT:
            # The last doubling did not improve marginal per-element cost:
            # the source is latency- or work-bound per element, and larger
            # chunks only buy buffering.  Stop here.
            self._frozen = True
        self._unit_cost = unit

    def _grow(self):
        if not self._frozen and self.size < self.maximum:
            self.size = min(self.maximum, self.size * 2)


def _sliced_chunks(elements, initial: int, maximum: int,
                   adaptive: bool = False):
    """Ramped chunks of an indexable sequence, cut by slicing.

    The fast path for *materialized* sources: a chunk is one C-level slice
    of the backing tuple/list, so chunking a local collection costs no
    per-element Python work at all (contrast :func:`_ramped_chunks`, which
    must pull cursor elements one by one).
    """
    if adaptive:
        yield from _ChunkRamp(initial, maximum, adaptive=True) \
            .emit_sliced(elements)
        return
    size = max(1, initial)
    maximum = max(size, maximum)
    total = len(elements)
    start = 0
    while start < total:
        end = start + size
        yield list(elements[start:end])
        start = end
        if size < maximum:
            size = min(maximum, size * 2)


def _chunk_elements(value: object, context: EvalContext,
                    initial: int, maximum: int, adaptive: bool = False):
    """Ramped chunks of an evaluated value: sliced when materialized,
    pulled element-wise when lazy (cursors stay scope-registered)."""
    if isinstance(value, _COLLECTIONS):
        return _sliced_chunks(value._elements, initial, maximum, adaptive)
    return _ramped_chunks(_iterate_streamed(value, context), initial, maximum,
                          adaptive)


_ChunkFn = Callable[[list, EvalContext], object]
_CHUNK_COMPILERS: Dict[Type[A.Expr], Callable[[A.Expr, _Scope, _CompileState], _ChunkFn]] = {}


def register_chunk_compiler(node_type: Type[A.Expr]):
    """Register a chunk-wise lowering for an AST node type.

    Same exact-type dispatch contract as :func:`register_stream_compiler`.
    The registered function compiles ``expr`` to a generator function
    ``chunks(frame, context)`` whose iterator yields non-empty **lists** of
    elements; the concatenation of the lists must equal the node's element
    sequence, and no work (including driver requests) may happen before the
    first ``next()``.
    """

    def decorator(function):
        _CHUNK_COMPILERS[node_type] = function
        return function

    return decorator


def chunkable_node_types() -> Tuple[str, ...]:
    """Names of node types with a native chunk-wise lowering."""
    return tuple(sorted(cls.__name__ for cls in _CHUNK_COMPILERS))


def _compile_chunk(expr: A.Expr, scope: _Scope, state: _CompileState) -> _ChunkFn:
    compiler = _CHUNK_COMPILERS.get(type(expr))
    if compiler is None:
        return _chunk_via_stream(expr, scope, state)
    return compiler(expr, scope, state)


def _scan_drivers(expr: A.Expr) -> Tuple[str, ...]:
    """Every driver name scanned anywhere in ``expr`` (for chunk sizing)."""
    names = set()
    if type(expr) is A.Scan:
        names.add(expr.driver)
    for child in expr.children():
        names.update(_scan_drivers(child))
    return tuple(sorted(names))


def _subtree_sizes(policy: ChunkPolicy, drivers: Tuple[str, ...]) -> Tuple[int, int]:
    """The most conservative ramp bounds over a subtree's scan drivers.

    A re-chunk point (scalar stage, eager section) sits downstream of
    whatever cursors its subtree opens; pulling a chunk pulls through them.
    Taking the minimum maximum over every driver the subtree can scan keeps
    the remote buffering bound ("one chunk never buffers more than a
    bounded slice of a slow cursor") intact across those points — a
    driver-free subtree gets the local sizes.
    """
    initial, maximum = policy.sizes_for()
    for driver in drivers:
        driver_initial, driver_maximum = policy.sizes_for(driver)
        initial = min(initial, driver_initial)
        maximum = min(maximum, driver_maximum)
    return initial, maximum


def _chunk_via_stream(expr: A.Expr, scope: _Scope, state: _CompileState) -> _ChunkFn:
    """Run a node with no chunk lowering at per-element granularity.

    The existing stream lowering produces the elements; they are re-chunked
    for the downstream (chunk-consuming) stages.  Correct for any node the
    per-element backend handles, just not vectorized — surfaced via
    ``CompiledChunkedStream.scalar_stages`` / ``EvalStatistics.scalar_stages``.
    """
    state.scalar.append(type(expr).__name__)
    stream_fn = _compile_stream(expr, scope, state)
    drivers = _scan_drivers(expr)

    def chunks(frame, context):
        context.statistics.scalar_stages += 1
        policy = _active_policy(context)
        initial, maximum = _subtree_sizes(policy, drivers)
        yield from _ramped_chunks(stream_fn(frame, context), initial, maximum,
                                  policy.adaptive_ramp)

    return chunks


def _chunk_via_eager(expr: A.Expr, scope: _Scope, state: _CompileState) -> _ChunkFn:
    """Evaluate a non-streamable subtree eagerly, then yield its chunks.

    The chunked counterpart of :func:`_stream_via_eager`: same accounting
    (``eager_nodes`` / ``stream_fallbacks``), same error behavior — the
    whole value is produced before the first chunk, so a term ``execute``
    rejects raises here exactly where it raises there.  The eager value can
    still be a lazy cursor (an eagerly compiled ``Scan``), so the ramp uses
    the subtree's conservative driver sizes like any re-chunk point.
    """
    state.eager.append(type(expr).__name__)
    fn = _compile(expr, scope, state)
    drivers = _scan_drivers(expr)

    def chunks(frame, context):
        context.statistics.stream_fallbacks += 1
        policy = _active_policy(context)
        initial, maximum = _subtree_sizes(policy, drivers)
        yield from _chunk_elements(fn(frame, context), context,
                                   initial, maximum, policy.adaptive_ramp)

    return chunks


def _chunk_leaf(expr: A.Expr, scope: _Scope, state: _CompileState) -> _ChunkFn:
    """A leaf in source position: evaluate (cheap), chunk lazily.

    Like :func:`_stream_leaf`, not a fallback — not counted anywhere.
    """
    fn = _compile(expr, scope, state)

    def chunks(frame, context):
        policy = _active_policy(context)
        initial, maximum = policy.sizes_for()
        yield from _chunk_elements(fn(frame, context), context,
                                   initial, maximum, policy.adaptive_ramp)

    return chunks


register_chunk_compiler(A.Var)(_chunk_leaf)
register_chunk_compiler(A.Const)(_chunk_leaf)
# Cached: a deliberate materialization point, chunked like a leaf (see the
# per-element lowering's treatment).
register_chunk_compiler(A.Cached)(_chunk_leaf)


@register_chunk_compiler(A.Empty)
def _chunk_empty(expr: A.Empty, scope, state):
    def chunks(frame, context):
        return
        yield  # pragma: no cover - makes this a generator function

    return chunks


@register_chunk_compiler(A.Singleton)
def _chunk_singleton(expr: A.Singleton, scope, state):
    value_fn = _compile(expr.expr, scope, state)

    def chunks(frame, context):
        yield [value_fn(frame, context)]

    return chunks


def _dedup_set_chunks(chunk_fn: _ChunkFn) -> _ChunkFn:
    """Chunk-wise dedup-as-you-go for set-kind pipelines.

    The seen-set is carried *across* chunk boundaries, so the concatenated
    output equals :func:`_dedup_set_stream`'s element sequence exactly —
    chunk sizes stay value-invisible.  Like the per-element wrapper, the raw
    stage is remembered (``undeduped``) so an enclosing set-kind union can
    chain operands under one shared seen-filter.
    """

    def chunks(frame, context):
        seen = _make_seen_set(context)
        add = seen.add
        for chunk in chunk_fn(frame, context):
            out = []
            append = out.append
            for element in chunk:
                if element not in seen:
                    add(element)
                    append(element)
            if out:
                yield out

    chunks.undeduped = chunk_fn
    return chunks


@register_chunk_compiler(A.Union)
def _chunk_union(expr: A.Union, scope, state):
    """The typed streaming union at chunk granularity (same kind proof)."""
    kind = expr.kind
    if (proven_collection_kind(expr.left) != kind
            or proven_collection_kind(expr.right) != kind):
        return _chunk_via_eager(expr, scope, state)
    left_fn = _compile_chunk(expr.left, scope, state)
    right_fn = _compile_chunk(expr.right, scope, state)
    if kind == "set":
        # One seen-set for the whole union chain (see _stream_union).
        left_fn = getattr(left_fn, "undeduped", left_fn)
        right_fn = getattr(right_fn, "undeduped", right_fn)

    def chunks(frame, context):
        yield from left_fn(frame, context)
        yield from right_fn(frame, context)

    if kind == "set":
        return _dedup_set_chunks(chunks)
    return chunks


@register_chunk_compiler(A.IfThenElse)
def _chunk_if(expr: A.IfThenElse, scope, state):
    cond_fn = _compile(expr.cond, scope, state)
    then_fn = _compile_chunk(expr.then_branch, scope, state)
    else_fn = _compile_chunk(expr.else_branch, scope, state)

    def chunks(frame, context):
        if _require_bool(cond_fn(frame, context)):
            yield from then_fn(frame, context)
        else:
            yield from else_fn(frame, context)

    return chunks


@register_chunk_compiler(A.Let)
def _chunk_let(expr: A.Let, scope, state):
    value_fn = _compile(expr.value, scope, state)
    body_fn = _compile_chunk(expr.body, scope + (expr.var,), state)

    def chunks(frame, context):
        yield from body_fn(_extended(frame, value_fn(frame, context)), context)

    return chunks


@register_chunk_compiler(A.Scan)
def _chunk_scan(expr: A.Scan, scope, state):
    run = _compile_scan(expr, scope, state)
    driver = expr.driver

    def chunks(frame, context):
        # The request fires on first next(); lazy cursors are registered
        # with the evaluation scope inside the eager scan closure.  Remote
        # drivers get the policy's smaller maximum chunk.
        policy = _active_policy(context)
        initial, maximum = policy.sizes_for(driver)
        yield from _chunk_elements(run(frame, context), context,
                                   initial, maximum, policy.adaptive_ramp)

    return chunks


def _execute_scan_batch(driver: str, requests: List[dict],
                        context: EvalContext) -> list:
    """Issue a chunk's worth of scan requests, batched where possible.

    Routes through ``EvalContext.driver_executor_batch`` (one
    ``Driver.execute_batch`` call for the whole chunk) when the engine
    provides it, else loops over the per-request executor.  Lazy results are
    scope-registered immediately — not on first consumption — so abandoning
    the pipeline mid-chunk releases cursors the batch opened but downstream
    never reached; eager collections are counted here like a single scan's.
    """
    executor = context.driver_executor
    batch_executor = context.driver_executor_batch
    if executor is None and batch_executor is None:
        raise EvaluationError(
            f"no driver executor available to satisfy scan of driver {driver!r}"
        )
    stats = context.statistics
    stats.scan_requests += len(requests)
    if batch_executor is not None:
        results = list(batch_executor(driver, requests))
    else:
        results = [executor(driver, request) for request in requests]
    prepared = []
    for result in results:
        if isinstance(result, _COLLECTIONS):
            stats.scan_elements += len(result)
            prepared.append(result)
        else:
            prepared.append(scan_stream(result, context))
    return prepared


def _chunk_ext_scan_batch(expr: A.Ext, scope: _Scope, state: _CompileState) -> _ChunkFn:
    """``Ext`` whose body is a ``Scan``: batch the chunk's driver fetches.

    The per-element stream issues one request per source element; here a
    whole batch of requests is built first and dispatched in one
    ``execute_batch`` call, then each result's elements are yielded in
    request order — the same element sequence and the same drained-run
    statistics, at one driver round-trip per batch.

    The batch size is bounded by the *scan driver's* policy maximum (not
    just the source's chunk size): a remote scan driver keeps small batches,
    so one ``execute_batch`` call never blocks on — or buffers the results
    of — more than ``remote_max_chunk`` round-trips, however large the
    (possibly local, fully ramped) source's chunks grow.
    """
    source_fn = _compile_chunk(expr.source, scope, state)
    scan = expr.body
    body_scope = scope + (expr.var,)
    driver = scan.driver
    base_request = dict(scan.request)
    arg_fns = tuple((key, _compile(arg, body_scope, state))
                    for key, arg in scan.args.items())
    slot = len(scope)

    def chunks(frame, context):
        stats = context.statistics
        loop_frame = _extended(frame, None)
        policy = _active_policy(context)
        initial, maximum = policy.sizes_for(driver)
        probe = context.plan_probe
        stage = "scan:" + driver
        # ONE ramp for the whole stage: it starts at 1 for the first chunk
        # (TTFR) and keeps its reached size across results, instead of
        # re-paying the tiny-chunk dispatch overhead per scan result.
        ramp = _ChunkRamp(initial, maximum, policy.adaptive_ramp)
        for chunk in source_fn(frame, context):
            stats.ext_iterations += len(chunk)
            for start in range(0, len(chunk), maximum):
                requests = []
                for item in chunk[start:start + maximum]:
                    loop_frame[slot] = item
                    request = dict(base_request)
                    for key, fn in arg_fns:
                        request[key] = fn(loop_frame, context)
                    requests.append(request)
                if probe is None:
                    results = _execute_scan_batch(driver, requests, context)
                else:
                    began = time.perf_counter()
                    results = _execute_scan_batch(driver, requests, context)
                    probe.note_chunk(stage, len(requests),
                                     time.perf_counter() - began)
                for result in results:
                    if isinstance(result, _COLLECTIONS):
                        yield from ramp.emit_sliced(result._elements)
                    else:
                        yield from ramp.emit_pulled(iter(result))

    if expr.kind == "set":
        return _dedup_set_chunks(chunks)
    return chunks


def _ident(item):
    """The identity item-function (also a marker enabling specializations)."""
    return item


def _item_plan(expr: A.Expr, scope: _Scope, state: _CompileState,
               slot: int) -> Optional[tuple]:
    """Compile a fused-stage body into an *item-plan*, or ``None``.

    An item-plan realizes (per pipeline activation, via :func:`_realize`)
    into a single ``fn(item)`` callable, so a fused chunk stage can run as
    one ``list(map(fn, chunk))`` / one list comprehension — no loop-frame
    store and no nested argument-closure calls per element.  Covered: the
    loop variable, literals, bound/free variable reads (free top-level names
    keep raising per element when unbound, like the frame form), 1- and
    2-ary primitives known at compile time, and ``Project`` with the inline
    Remy directory cache.  Anything else returns ``None`` and the stage
    falls back to the general loop-frame form — same values either way.

    Enclosing-binder reads are realized once per activation: sound because
    a fused stage's enclosing frame slots cannot change while the stage's
    generator is live (a body pipeline is drained before the next outer
    element is bound).
    """
    node_type = type(expr)
    if node_type is A.Var:
        var_slot = _slot_of(scope, expr.name)
        if var_slot is None:
            return None
        if var_slot == slot:
            return ("item",)
        if var_slot < state.n_free:
            name = expr.name

            def build_checked(frame, context, _slot=var_slot, _name=name):
                value = frame[_slot]
                if type(value) is _Unbound:
                    def raising(item):
                        raise UnboundVariableError(_name)
                    return raising
                return lambda item, _value=value: _value

            return ("call", build_checked)

        def build_read(frame, context, _slot=var_slot):
            value = frame[_slot]
            return lambda item, _value=value: _value

        return ("call", build_read)
    if node_type is A.Const:
        return ("const", UNIT_VALUE if expr.value is None else expr.value)
    if node_type is A.PrimCall:
        try:
            # The call-site arity is static here, so the checked wrapper's
            # per-call arity test is elided (lookup_primitive_raw).
            function = lookup_primitive_raw(expr.name, len(expr.args))
        except EvaluationError:
            return None
        if len(expr.args) not in (1, 2):
            return None
        plans = [_item_plan(arg, scope, state, slot) for arg in expr.args]
        if any(plan is None for plan in plans):
            return None
        if len(plans) == 1:
            plan, = plans
            if plan == ("item",):
                # fn(item) == function(item): apply the primitive directly.
                return ("call", lambda frame, context, _f=function: _f)

            def build1(frame, context, _plan=plan, _f=function):
                arg_fn = _realize(_plan, frame, context)
                return lambda item: _f(arg_fn(item))

            return ("call", build1)
        first, second = plans
        if first == ("item",) and second[0] == "const":
            # Constant operand: its value checks run HERE, at compile time
            # (fused_primitive_with_const), leaving one call per element.
            fused = fused_primitive_with_const(expr.name, second[1],
                                               const_is_second=True)
            if fused is not None:
                return ("call", lambda frame, context, _fn=fused: _fn)
            value = second[1]
            return ("call", lambda frame, context, _f=function, _v=value:
                    (lambda item: _f(item, _v)))
        if first[0] == "const" and second == ("item",):
            fused = fused_primitive_with_const(expr.name, first[1],
                                               const_is_second=False)
            if fused is not None:
                return ("call", lambda frame, context, _fn=fused: _fn)
            value = first[1]
            return ("call", lambda frame, context, _f=function, _v=value:
                    (lambda item: _f(_v, item)))

        def build2(frame, context, _first=first, _second=second, _f=function):
            first_fn = _realize(_first, frame, context)
            second_fn = _realize(_second, frame, context)
            return lambda item: _f(first_fn(item), second_fn(item))

        return ("call", build2)
    if node_type is A.Project:
        subject_plan = _item_plan(expr.expr, scope, state, slot)
        if subject_plan is None:
            return None
        label = expr.label

        def build_project(frame, context, _plan=subject_plan, _label=label):
            subject_fn = _realize(_plan, frame, context)
            direct = subject_fn is _ident
            cache: List[Optional[tuple]] = [None]

            def project(item):
                subject = item if direct else subject_fn(item)
                if isinstance(subject, Record):
                    cached = cache[0]
                    directory = subject.directory
                    if cached is not None and cached[0] is directory:
                        return subject.values[cached[1]]
                    value_slot = directory.slot_of(_label)
                    cache[0] = (directory, value_slot)
                    return subject.values[value_slot]
                if isinstance(subject, Ref):
                    target = subject.deref()
                    if isinstance(target, Record):
                        return target.project(_label)
                    raise EvaluationError(
                        f"dereferenced value of {subject!r} is not a record; "
                        f"cannot project {_label!r}")
                raise EvaluationError(
                    f"cannot project field {_label!r} from {type(subject).__name__}")

            return project

        return ("call", build_project)
    return None


def _realize(plan: tuple, frame: list, context: EvalContext):
    """Turn an item-plan into its per-activation ``fn(item)`` callable."""
    tag = plan[0]
    if tag == "item":
        return _ident
    if tag == "const":
        value = plan[1]
        return lambda item: value
    return plan[1](frame, context)




@register_chunk_compiler(A.Ext)
def _chunk_ext(expr: A.Ext, scope, state):
    """Chunked ``Ext``: fuse adjacent map/filter stages into one chunk stage.

    Walking down through directly nested ``Ext`` nodes whose bodies are the
    desugarer's ``Singleton``/filter shapes collects an op list (innermost
    first); every stage binds its loop variable at the *same* frame slot
    (each source is compiled in the enclosing scope), so one reused loop
    frame serves the whole fused segment.  At run time each chunk flows
    through the ops as tight loops — no generator frame per stage — with
    per-stage ``ext_iterations`` batched per chunk and set-kind stages
    deduping through a seen-set that persists across chunks.
    """
    slot = len(scope)
    stages = []  # outermost-first: (op, dedup_after)
    node = expr
    top = True
    while type(node) is A.Ext:  # exact type: ParallelExt has its own lowering
        body = node.body
        body_scope = scope + (node.var,)
        if type(body) is A.Singleton:
            plan = _item_plan(body.expr, body_scope, state, slot)
            if plan == ("item",):
                # Identity map: no transformation, only loop accounting.
                op = ("count",)
            elif plan is not None:
                op = ("vmap", plan)
            else:
                op = ("map", _compile(body.expr, body_scope, state))
        else:
            filter_shape = _filter_shape(body)
            if filter_shape is None:
                break
            emit_when, value_expr = filter_shape
            cond_plan = _item_plan(body.cond, body_scope, state, slot)
            value_plan = _item_plan(value_expr, body_scope, state, slot)
            if cond_plan is not None and value_plan is not None:
                op = ("vfilter", cond_plan, value_plan, emit_when)
            else:
                op = ("filter", _compile(body.cond, body_scope, state),
                      _compile(value_expr, body_scope, state), emit_when)
        # The top stage's set dedup is the wrapper below; an absorbed inner
        # stage's dedup becomes an op between it and the enclosing stage.
        stages.append((op, node.kind == "set" and not top))
        top = False
        node = node.source

    if not stages:
        if type(expr.body) is A.Scan:
            return _chunk_ext_scan_batch(expr, scope, state)
        return _chunk_ext_generic(expr, scope, state)

    source_fn = _compile_chunk(node, scope, state)
    op_list: List[tuple] = []
    for op, dedup_after in reversed(stages):  # innermost first
        op_list.append(op)
        if dedup_after:
            op_list.append(("dedup",))
    ops = tuple(op_list)

    def chunks(frame, context):
        stats = context.statistics
        loop_frame = _extended(frame, None)
        require_bool = _require_bool  # closure-local for the hot comprehensions
        # Realize the vectorized ops' item-functions once per activation
        # (enclosing-binder reads bind here; see _item_plan), so each hot
        # pass below is one list comprehension / one C-level map per chunk.
        realized = []
        for op in ops:
            tag = op[0]
            if tag == "vmap":
                realized.append((tag, _realize(op[1], frame, context)))
            elif tag == "vfilter":
                realized.append((tag, _realize(op[1], frame, context),
                                 _realize(op[2], frame, context), op[3]))
            elif tag == "dedup":
                realized.append((tag, _make_seen_set(context)))
            else:
                realized.append(op)
        for out in source_fn(frame, context):
            for op in realized:
                tag = op[0]
                if tag == "vmap":
                    stats.ext_iterations += len(out)
                    out = list(map(op[1], out))
                elif tag == "vfilter":
                    _, cond_fn, value_fn, emit_when = op
                    stats.ext_iterations += len(out)
                    if value_fn is _ident:
                        out = [item for item in out
                               if require_bool(cond_fn(item)) is emit_when]
                    else:
                        out = [value_fn(item) for item in out
                               if require_bool(cond_fn(item)) is emit_when]
                elif tag == "count":
                    stats.ext_iterations += len(out)
                elif tag == "map":
                    value_fn = op[1]
                    stats.ext_iterations += len(out)
                    nxt = []
                    append = nxt.append
                    for item in out:
                        loop_frame[slot] = item
                        append(value_fn(loop_frame, context))
                    out = nxt
                elif tag == "filter":
                    _, cond_fn, value_fn, emit_when = op
                    stats.ext_iterations += len(out)
                    nxt = []
                    append = nxt.append
                    for item in out:
                        loop_frame[slot] = item
                        if _require_bool(cond_fn(loop_frame, context)) is emit_when:
                            append(value_fn(loop_frame, context))
                    out = nxt
                else:  # dedup (an absorbed set-kind stage)
                    seen = op[1]
                    add = seen.add
                    nxt = []
                    append = nxt.append
                    for element in out:
                        if element not in seen:
                            add(element)
                            append(element)
                    out = nxt
                if not out:
                    break
            if out:
                yield out

    if expr.kind == "set":
        return _dedup_set_chunks(chunks)
    return chunks


def _chunk_ext_generic(expr: A.Ext, scope: _Scope, state: _CompileState) -> _ChunkFn:
    """Chunked ``Ext`` with an arbitrary (collection-producing) body.

    The body's own chunk stream passes through: its chunks become output
    chunks, consumed fully per source element before the next is bound (the
    loop-frame reuse argument of the per-element lowering applies verbatim).
    """
    source_fn = _compile_chunk(expr.source, scope, state)
    body_fn = _compile_chunk(expr.body, scope + (expr.var,), state)
    slot = len(scope)

    def chunks(frame, context):
        stats = context.statistics
        loop_frame = _extended(frame, None)
        for chunk in source_fn(frame, context):
            stats.ext_iterations += len(chunk)
            for item in chunk:
                loop_frame[slot] = item
                yield from body_fn(loop_frame, context)

    if expr.kind == "set":
        return _dedup_set_chunks(chunks)
    return chunks


@register_chunk_compiler(A.Join)
def _chunk_join(expr: A.Join, scope, state):
    """Chunk-wise join probing: per outer *chunk*, build side unchanged.

    The indexed join builds its hash index before the first outer pull and
    probes it per outer element within each chunk; a block-size-1 blocked
    join materializes the inner once on first need — both exactly the
    per-element lowering's build policy, emitting one output chunk per
    probed outer chunk.  Blocked joins with a larger block size keep the
    per-element lowering (their inner-rescan-per-block protocol is already
    block-granular; the optimizer's streaming plans emit block size 1).
    """
    if expr.method != "indexed" and max(1, expr.block_size) != 1:
        return _chunk_via_stream(expr, scope, state)
    outer_fn = _compile_chunk(expr.outer, scope, state)
    inner_fn = _compile(expr.inner, scope, state)
    pair_scope = scope + (expr.outer_var, expr.inner_var)
    mode, body = _compile_stream_body(expr.body, pair_scope, state)
    cond_fn = None
    if expr.condition is not None:
        cond_fn = _compile(expr.condition, pair_scope, state)
    outer_slot = len(scope)
    inner_slot = outer_slot + 1

    if expr.method == "indexed":
        if expr.outer_key is None or expr.inner_key is None:
            def broken(frame, context):
                raise EvaluationError(
                    "indexed join requires outer and inner key expressions")
                yield  # pragma: no cover
            return broken
        outer_key_fn = _compile(expr.outer_key, scope + (expr.outer_var,), state)
        inner_key_fn = _compile(expr.inner_key, scope + (expr.inner_var,), state)

        def chunks_indexed(frame, context):
            context.statistics.joins_indexed += 1
            # Build side first, like stream_indexed: the index exists before
            # the first outer element is pulled.
            inner = _build_source(inner_fn(frame, context), context)
            key_frame, index = _build_join_index(
                inner, inner_key_fn, frame, outer_slot, context)
            pair_frame = _extended(_extended(frame, None), None)
            for chunk in outer_fn(frame, context):
                out: list = []
                for outer_item in chunk:
                    key_frame[outer_slot] = outer_item
                    matches = index.get(outer_key_fn(key_frame, context))
                    if not matches:
                        continue
                    pair_frame[outer_slot] = outer_item
                    for inner_item in matches:
                        pair_frame[inner_slot] = inner_item
                        if cond_fn is not None and \
                                not require_join_condition(cond_fn(pair_frame, context)):
                            continue
                        out.extend(_stream_join_emit(mode, body, pair_frame, context))
                if out:
                    yield out

        if expr.kind == "set":
            return _dedup_set_chunks(chunks_indexed)
        return chunks_indexed

    def chunks_unit_blocked(frame, context):
        context.statistics.joins_blocked += 1
        pair_frame = _extended(_extended(frame, None), None)
        inner = None
        for chunk in outer_fn(frame, context):
            out: list = []
            for outer_item in chunk:
                if inner is None:
                    inner = _materialise_build_side(
                        inner_fn(frame, context), context)
                pair_frame[outer_slot] = outer_item
                for inner_item in inner:
                    pair_frame[inner_slot] = inner_item
                    if cond_fn is not None and \
                            not require_join_condition(cond_fn(pair_frame, context)):
                        continue
                    out.extend(_stream_join_emit(mode, body, pair_frame, context))
            if out:
                yield out

    if expr.kind == "set":
        return _dedup_set_chunks(chunks_unit_blocked)
    return chunks_unit_blocked


class CompiledChunkedStream:
    """An NRC term lowered to a chunk-at-a-time generator pipeline.

    Calling it returns an *iterator over elements* (chunks are an internal
    exchange format; the engine's ``stream`` contract is element-wise) —
    use :meth:`chunks` to observe the chunk boundaries.  Like
    :class:`CompiledStream`, the whole run happens inside a fresh
    :class:`~repro.core.nrc.eval.EvalScope` on the supplied context, so
    exhaustion, abandonment or failure releases every cursor — including
    those behind buffered-but-unconsumed chunk elements.

    ``scalar_stages`` names node types with no chunk-wise lowering that run
    at per-element granularity inside the pipeline; ``eager_nodes`` and
    ``fallback_nodes`` keep their :class:`CompiledStream` meanings.
    """

    __slots__ = ("expr", "free_names", "fallback_nodes", "eager_nodes",
                 "scalar_stages", "_fn")

    def __init__(self, expr: A.Expr):
        self.expr = expr
        self.free_names: Tuple[str, ...] = tuple(sorted(free_variables(expr)))
        state = _CompileState(n_free=len(self.free_names))
        self._fn = self._lower_toplevel(expr, self.free_names, state)
        self.fallback_nodes: Tuple[str, ...] = tuple(sorted(set(state.fallbacks)))
        self.eager_nodes: Tuple[str, ...] = tuple(sorted(set(state.eager)))
        self.scalar_stages: Tuple[str, ...] = tuple(sorted(set(state.scalar)))

    @classmethod
    def _lower_toplevel(cls, expr: A.Expr, scope: _Scope,
                        state: _CompileState) -> _ChunkFn:
        """Top-level lowering: the same transparent spine and scalar
        tolerance as :meth:`CompiledStream._lower_toplevel`."""
        node_type = type(expr)
        if node_type is A.Let:
            value_fn = _compile(expr.value, scope, state)
            body_fn = cls._lower_toplevel(expr.body, scope + (expr.var,), state)

            def chunk_let(frame, context):
                yield from body_fn(_extended(frame, value_fn(frame, context)),
                                   context)

            return chunk_let
        if node_type is A.IfThenElse:
            cond_fn = _compile(expr.cond, scope, state)
            then_fn = cls._lower_toplevel(expr.then_branch, scope, state)
            else_fn = cls._lower_toplevel(expr.else_branch, scope, state)

            def chunk_if(frame, context):
                if _require_bool(cond_fn(frame, context)):
                    yield from then_fn(frame, context)
                else:
                    yield from else_fn(frame, context)

            return chunk_if
        if node_type in (A.Var, A.Const, A.Cached):
            return cls._tolerant_chunks(_compile(expr, scope, state),
                                        count_fallback=False)
        if node_type in _CHUNK_COMPILERS:
            return _compile_chunk(expr, scope, state)
        if node_type in _STREAM_COMPILERS:
            # A collection producer with a pull-based form but no chunk-wise
            # one: run it per-element, re-chunked (a scalar stage).
            return _chunk_via_stream(expr, scope, state)
        state.eager.append(node_type.__name__)
        return cls._tolerant_chunks(_compile(expr, scope, state),
                                    count_fallback=True)

    @staticmethod
    def _tolerant_chunks(fn: _CompiledFn, count_fallback: bool) -> _ChunkFn:
        """Chunk a value's elements if it is a CPL collection, else yield the
        value as a one-element chunk (same strictness as
        :meth:`CompiledStream._tolerant_stream`)."""

        def chunks(frame, context):
            if count_fallback:
                context.statistics.stream_fallbacks += 1
            value = fn(frame, context)
            if isinstance(value, _COLLECTIONS):
                policy = _active_policy(context)
                initial, maximum = policy.sizes_for()
                yield from _sliced_chunks(value._elements, initial, maximum,
                                          policy.adaptive_ramp)
            else:
                yield [value]

        return chunks

    @property
    def fully_compiled(self) -> bool:
        """No interpreter fallback anywhere in the pipeline."""
        return not self.fallback_nodes

    @property
    def fully_streamed(self) -> bool:
        """Every node lowered pull-based (no eager sections)."""
        return not self.eager_nodes

    @property
    def fully_chunked(self) -> bool:
        """Every node lowered chunk-wise (no eager or per-element sections)."""
        return not self.eager_nodes and not self.scalar_stages

    def __call__(self, env: Optional[Environment] = None,
                 context: Optional[EvalContext] = None):
        context = context if context is not None else EvalContext()
        return self._pump(_build_frame(self.free_names, env), context)

    def chunks(self, env: Optional[Environment] = None,
               context: Optional[EvalContext] = None):
        """Iterate the pipeline's chunks (lists) instead of its elements."""
        context = context if context is not None else EvalContext()
        return self._pump_chunks(_build_frame(self.free_names, env), context)

    def _pump_chunks(self, frame, context):
        with context.evaluation_scope():
            token = context.cancellation
            if token is None:
                yield from self._fn(frame, context)
                return
            for chunk in self._fn(frame, context):
                token.raise_if_cancelled()
                yield chunk

    def _pump(self, frame, context):
        # The scope spans the whole iteration, exactly like CompiledStream:
        # activated on first next(), closed when the pipeline is exhausted,
        # abandoned (GeneratorExit) or fails — releasing cursors even when
        # chunk elements were buffered but never consumed.
        probe = context.plan_probe
        token = context.cancellation
        budget = context.memory_budget
        with context.evaluation_scope():
            if probe is None and token is None and budget is None:
                for chunk in self._fn(frame, context):
                    yield from chunk
                return
            if probe is None:
                # Governed pump: a cancellation checkpoint at every chunk
                # boundary, and the chunk buffer charged transiently (the
                # chunk is in memory from production until consumed).
                for chunk in self._fn(frame, context):
                    if token is not None:
                        token.raise_if_cancelled()
                    if budget is None:
                        yield from chunk
                    else:
                        budget.charge_elements(len(chunk))
                        try:
                            yield from chunk
                        finally:
                            budget.release_elements(len(chunk))
                return
            # Feedback probing: time each chunk's *production* (the stretch
            # from resuming the pipeline to the chunk being ready — consumer
            # time between pulls is excluded) under the "pipeline" stage,
            # and commit the true output cardinality only when the run
            # drains normally, so an abandoned stream never records a
            # partial count as the query's cardinality.
            iterator = self._fn(frame, context)
            total = 0
            while True:
                began = time.perf_counter()
                try:
                    chunk = next(iterator)
                except StopIteration:
                    break
                probe.note_chunk("pipeline", len(chunk),
                                 time.perf_counter() - began)
                if token is not None:
                    token.raise_if_cancelled()
                total += len(chunk)
                if budget is None:
                    yield from chunk
                else:
                    budget.charge_elements(len(chunk))
                    try:
                        yield from chunk
                    finally:
                        budget.release_elements(len(chunk))
            probe.complete(total)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.fully_chunked:
            detail = "fully chunked"
        else:
            parts = []
            if self.scalar_stages:
                parts.append("scalar: " + ", ".join(self.scalar_stages))
            if self.eager_nodes:
                parts.append("eager: " + ", ".join(self.eager_nodes))
            detail = "; ".join(parts) or "fully chunked"
        return f"<CompiledChunkedStream ({detail})>"


def compile_chunked(term: A.Expr) -> CompiledChunkedStream:
    """Lower an (optimized) NRC term into a chunk-at-a-time pipeline.

    Returns a :class:`CompiledChunkedStream`; call it with an
    :class:`~repro.core.nrc.eval.Environment` and an
    :class:`~repro.core.nrc.eval.EvalContext` (whose ``chunk_policy``
    governs the chunk-size ramp) to get the element iterator.
    """
    return CompiledChunkedStream(term)


# ---------------------------------------------------------------------------
# Term fingerprints (compile-cache identity)
# ---------------------------------------------------------------------------

def _const_token(value: object) -> Tuple:
    """A type-exact token for a literal.

    Structural ``Expr`` equality uses Python ``==``, under which
    ``Const(True) == Const(1) == Const(1.0)`` — fine for rewrite fixpoints,
    unsound as a compile-cache key (the closure bakes the literal in).
    """
    try:
        hash(value)
    except TypeError:
        return ("unhashable", id(value))
    return (type(value).__name__, value)


def _freeze_request_value(value: object) -> object:
    if isinstance(value, dict):
        return ("dict", tuple(sorted(
            (key, _freeze_request_value(item)) for key, item in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze_request_value(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(_freeze_request_value(item) for item in value))
    return _const_token(value)


def term_fingerprint(expr: A.Expr, _scope: _Scope = ()) -> Tuple:
    """A hashable identity of a term suitable for caching compiled queries.

    Differs from structural equality in exactly the ways a compile cache
    needs:

    * **stricter** where closures bake detail in — literal *types*
      (``True`` vs ``1``), ``Cached.key``, ``Join.block_size``;
    * **looser** where compiled code is interchangeable — bound variables
      are de-Bruijn-indexed, so terms that differ only in the fresh binder
      names the desugarer mints share one compiled query.  Free names stay
      literal (they select top-level frame slots by name).
    """
    node_type = type(expr)
    name = node_type.__name__

    def sub(child: A.Expr, scope: _Scope = _scope) -> Tuple:
        return term_fingerprint(child, scope)

    if node_type is A.Const:
        return (name, _const_token(expr.value))
    if node_type is A.Var:
        for index in range(len(_scope) - 1, -1, -1):
            if _scope[index] == expr.name:
                return (name, len(_scope) - 1 - index)
        return (name, "free", expr.name)
    if node_type is A.Lam:
        return (name, sub(expr.body, _scope + (expr.param,)))
    if node_type is A.Apply:
        return (name, sub(expr.func), sub(expr.arg))
    if node_type is A.RecordExpr:
        return (name, tuple((label, sub(value))
                            for label, value in expr.fields.items()))
    if node_type is A.Project:
        return (name, expr.label, sub(expr.expr))
    if node_type is A.VariantExpr:
        return (name, expr.tag, sub(expr.expr))
    if node_type is A.Case:
        branches = tuple((branch.tag, sub(branch.body, _scope + (branch.var,)))
                         for branch in expr.branches)
        default = None
        if expr.default is not None:
            default = sub(expr.default[1], _scope + (expr.default[0],))
        return (name, sub(expr.subject), branches, default)
    if node_type is A.Empty:
        return (name, expr.kind)
    if node_type is A.Singleton:
        return (name, expr.kind, sub(expr.expr))
    if node_type is A.Union:
        return (name, expr.kind, sub(expr.left), sub(expr.right))
    if node_type is A.Ext:
        return (name, expr.kind, sub(expr.source),
                sub(expr.body, _scope + (expr.var,)))
    if isinstance(expr, A.Ext):
        # An Ext subclass: its compiled loop may bake in parameters this
        # function cannot know about.  Subclasses declare them via a
        # ``fingerprint_extras()`` method (ParallelExt: scheduler settings);
        # without one, fall through to the sound identity key below.
        extras = getattr(expr, "fingerprint_extras", None)
        if extras is not None:
            return (name, expr.kind, sub(expr.source),
                    sub(expr.body, _scope + (expr.var,)), tuple(extras()))
    if node_type is A.Fold:
        return (name, sub(expr.func), sub(expr.init), sub(expr.source))
    if node_type is A.IfThenElse:
        return (name, sub(expr.cond), sub(expr.then_branch), sub(expr.else_branch))
    if node_type is A.PrimCall:
        return (name, expr.name, tuple(sub(arg) for arg in expr.args))
    if node_type is A.Let:
        return (name, sub(expr.value), sub(expr.body, _scope + (expr.var,)))
    if node_type is A.Deref:
        return (name, sub(expr.expr))
    if node_type is A.Scan:
        # args stay in insertion order: the compiled closure evaluates them
        # in that order, so it is part of the baked-in behavior.
        return (name, expr.driver, expr.kind,
                _freeze_request_value(expr.request),
                tuple((key, sub(arg)) for key, arg in expr.args.items()))
    if node_type is A.Cached:
        return (name, expr.key, sub(expr.expr))
    if node_type is A.Join:
        pair_scope = _scope + (expr.outer_var, expr.inner_var)
        return (name, expr.method, expr.kind, expr.block_size,
                sub(expr.outer), sub(expr.inner),
                None if expr.condition is None else sub(expr.condition, pair_scope),
                sub(expr.body, pair_scope),
                None if expr.outer_key is None
                else sub(expr.outer_key, _scope + (expr.outer_var,)),
                None if expr.inner_key is None
                else sub(expr.inner_key, _scope + (expr.inner_var,)))
    # Unknown node type (no native compiler): structural equality is too
    # loose to key a compile cache (it conflates True/1 and may ignore
    # baked-in attributes), so key on object identity — always sound, at the
    # price of never sharing across rebuilt terms.  The id stays valid
    # because the memoized CompiledQuery keeps its term alive.
    return (name, "identity", id(expr))
