"""Run-time feedback for the planner: observed cardinalities and stage costs.

"We have found it problematic to obtain such statistics on the fly from
remote sites" — but a query the system has *already run* is its own best
statistic.  The chunked runtime probes each drained pipeline (per-chunk
production cost per stage, true output cardinality) and folds the numbers
into this ledger, keyed by the same
:func:`~repro.core.nrc.compile.term_fingerprint` the engine's compile cache
uses — so the next compilation of the same query re-plans from observed
numbers, and a *structurally similar* query (same shape, different literals:
the parametrised-query pattern) inherits them through a constant-blind
secondary index (:func:`shape_fingerprint`).

Thread-safety mirrors the engine's ``_CompileCache``: scheduler worker
threads stream subqueries through the one engine, so every ledger operation
holds a lock, and the ledger is LRU-bounded the same way.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["PlanFeedback", "PlanObservation", "PlanProbe", "shape_fingerprint"]


def shape_fingerprint(fingerprint: Tuple) -> Tuple:
    """A constant-blind view of a term fingerprint.

    ``Const`` leaves are wildcarded (their token dropped), so two runs of
    the same query shape with different literals — the common "same view,
    different parameter" session pattern — share one feedback key.  Scan
    request templates are *kept*: the table/division they name is structure
    (a different table is a different source), not a parameter.
    """
    if not isinstance(fingerprint, tuple):
        return fingerprint
    if len(fingerprint) == 2 and fingerprint[0] == "Const":
        return ("Const",)
    return tuple(shape_fingerprint(part) for part in fingerprint)


class _StageRecord:
    """Accumulated per-stage numbers (EMA across runs)."""

    __slots__ = ("rows", "seconds", "chunks")

    def __init__(self, rows: float, seconds: float, chunks: float):
        self.rows = rows
        self.seconds = seconds
        self.chunks = chunks

    def fold(self, rows: float, seconds: float, chunks: float,
             weight: float) -> None:
        keep = 1.0 - weight
        self.rows = self.rows * keep + rows * weight
        self.seconds = self.seconds * keep + seconds * weight
        self.chunks = self.chunks * keep + chunks * weight


class PlanObservation:
    """What the ledger knows about one (shape of) query.

    ``cardinality`` is the observed output row count of a *drained* run;
    ``unit_cost(stage)`` the observed per-element production cost of a
    stage (``"pipeline"`` is the whole-pipeline stage the chunked pump
    probes; batched scans report under ``"scan:<driver>"``).
    """

    __slots__ = ("cardinality", "runs", "updated", "_stages")

    def __init__(self) -> None:
        self.cardinality = 0.0
        self.runs = 0
        # When this observation last folded a run (or, for a restored
        # entry, when its persisted source was recorded) — the staleness
        # clock the plan store's decay runs on.  Kept through
        # snapshot/restore so compaction never resets an entry's age.
        self.updated = 0.0
        self._stages: Dict[str, _StageRecord] = {}

    def unit_cost(self, stage: str = "pipeline") -> Optional[float]:
        record = self._stages.get(stage)
        if record is None or record.rows <= 0.0:
            return None
        return record.seconds / record.rows

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stages))

    def _snapshot(self) -> "PlanObservation":
        """A consistent read-only copy (taken under the ledger lock).

        The ledger mutates observations in place under its lock; handing a
        reader the live object would let a concurrent ``record`` tear its
        view (seconds from one run, rows from another — a skewed unit
        cost).  Lookups therefore return snapshots.
        """
        copy = PlanObservation()
        copy.cardinality = self.cardinality
        copy.runs = self.runs
        copy.updated = self.updated
        copy._stages = {name: _StageRecord(record.rows, record.seconds,
                                           record.chunks)
                        for name, record in self._stages.items()}
        return copy

    def _to_state(self) -> Dict:
        """A plain-data export (floats/ints/strings only) for persistence."""
        return {"cardinality": self.cardinality,
                "runs": self.runs,
                "stages": {name: [record.rows, record.seconds, record.chunks]
                           for name, record in self._stages.items()}}

    @classmethod
    def _from_state(cls, state: Dict, updated: float) -> "PlanObservation":
        observation = cls()
        observation.cardinality = float(state["cardinality"])
        observation.runs = int(state["runs"])
        observation.updated = updated
        observation._stages = {
            name: _StageRecord(float(numbers[0]), float(numbers[1]),
                               float(numbers[2]))
            for name, numbers in state["stages"].items()}
        return observation

    def _fold(self, stages: Dict[str, Tuple[float, float, float]],
              cardinality: float, weight: float) -> None:
        if self.runs == 0:
            self.cardinality = cardinality
        else:
            self.cardinality = (self.cardinality * (1.0 - weight)
                                + cardinality * weight)
        self.runs += 1
        for name, (rows, seconds, chunks) in stages.items():
            record = self._stages.get(name)
            if record is None:
                self._stages[name] = _StageRecord(rows, seconds, chunks)
            else:
                record.fold(rows, seconds, chunks, weight)


class PlanProbe:
    """Per-run accumulator the chunked runtime reports into.

    ``note_chunk`` is called once per produced chunk per probed stage;
    ``complete`` — only when the pipeline drained normally — folds the run
    into the ledger (an abandoned or failing run never records a partial
    "cardinality").  Probes are single-run objects owned by one pipeline,
    but ``note_chunk`` may be reached from scheduler worker threads (a
    batched scan inside a ParallelExt body), so accumulation locks.
    """

    __slots__ = ("_feedback", "_fingerprint", "_stages", "_lock", "_done")

    def __init__(self, feedback: "PlanFeedback", fingerprint: Tuple):
        self._feedback = feedback
        self._fingerprint = fingerprint
        self._stages: Dict[str, list] = {}
        self._lock = threading.Lock()
        self._done = False

    def note_chunk(self, stage: str, rows: int, seconds: float) -> None:
        with self._lock:
            record = self._stages.get(stage)
            if record is None:
                self._stages[stage] = [float(rows), seconds, 1.0]
            else:
                record[0] += rows
                record[1] += seconds
                record[2] += 1.0

    def complete(self, cardinality: Optional[int] = None) -> None:
        """Fold a *drained* run into the ledger (idempotent)."""
        with self._lock:
            if self._done:
                return
            self._done = True
            stages = {name: tuple(record)
                      for name, record in self._stages.items()}
        if cardinality is None:
            pipeline = stages.get("pipeline")
            cardinality = int(pipeline[0]) if pipeline else 0
        self._feedback.record(self._fingerprint, stages, float(cardinality))


class PlanFeedback:
    """The LRU-bounded, lock-guarded ledger of observed query behaviour."""

    #: How many distinct query fingerprints the ledger retains.
    LIMIT = 256
    #: Weight of one new run against the accumulated EMA.
    EMA_WEIGHT = 0.5

    def __init__(self, limit: int = LIMIT,
                 clock: Callable[[], float] = time.time):
        self.limit = limit
        self.clock = clock
        self.recordings = 0
        self.lookups = 0
        self.hits = 0
        # Write-through persistence hook: called as
        # ``on_record(fingerprint, observation_state, updated_ts)`` after
        # every fold, OUTSIDE the ledger lock (the callee does I/O; holding
        # the lock across a disk write would stall every concurrent
        # lookup).  The state is a consistent copy taken under the lock.
        self.on_record: Optional[Callable[[Tuple, Dict, float], None]] = None
        self._entries: "OrderedDict[Tuple, PlanObservation]" = OrderedDict()
        self._shapes: Dict[Tuple, Tuple] = {}
        self._lock = threading.Lock()

    def probe(self, fingerprint: Tuple) -> PlanProbe:
        """A fresh per-run accumulator for a pipeline keyed ``fingerprint``."""
        return PlanProbe(self, fingerprint)

    def record(self, fingerprint: Tuple,
               stages: Dict[str, Tuple[float, float, float]],
               cardinality: float) -> None:
        shape = shape_fingerprint(fingerprint)
        state = None
        updated = self.clock()
        with self._lock:
            self.recordings += 1
            observation = self._entries.get(fingerprint)
            if observation is None:
                observation = PlanObservation()
                self._entries[fingerprint] = observation
            self._entries.move_to_end(fingerprint)
            observation._fold(stages, cardinality, self.EMA_WEIGHT)
            observation.updated = updated
            self._shapes[shape] = fingerprint
            while len(self._entries) > self.limit:
                evicted, _ = self._entries.popitem(last=False)
                evicted_shape = shape_fingerprint(evicted)
                if self._shapes.get(evicted_shape) == evicted:
                    del self._shapes[evicted_shape]
            hook = self.on_record
            if hook is not None:
                state = observation._to_state()
        if hook is not None and state is not None:
            try:
                hook(fingerprint, state, updated)
            except Exception:
                # Persistence must never break the run that just finished.
                pass

    def lookup(self, fingerprint: Tuple) -> Optional[PlanObservation]:
        """One planner lookup: the exact observation, else the most recent
        structurally-similar one — counted as ONE lookup (and at most one
        hit), unlike calling :meth:`observation` then :meth:`similar`,
        which would double-count and skew the ledger's hit rate."""
        with self._lock:
            self.lookups += 1
            key = fingerprint
            observation = self._entries.get(key)
            if observation is None:
                key = self._shapes.get(shape_fingerprint(fingerprint))
                observation = None if key is None else self._entries.get(key)
            if observation is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return observation._snapshot()

    def observation(self, fingerprint: Tuple) -> Optional[PlanObservation]:
        """A snapshot of the exact-fingerprint observation, if this query
        ran before."""
        with self._lock:
            self.lookups += 1
            observation = self._entries.get(fingerprint)
            if observation is None:
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return observation._snapshot()

    def similar(self, fingerprint: Tuple) -> Optional[PlanObservation]:
        """A snapshot of the most recent observation of a structurally-
        similar query (same :func:`shape_fingerprint`; literals differ)."""
        shape = shape_fingerprint(fingerprint)
        with self._lock:
            self.lookups += 1
            key = self._shapes.get(shape)
            if key is None:
                return None
            observation = self._entries.get(key)
            if observation is None:
                return None
            # A shape-index hit is a USE: refresh the backing entry's LRU
            # position, or a parametrised workload consulted only through
            # the index would age out under churn while actively planned.
            self._entries.move_to_end(key)
            self.hits += 1
            return observation._snapshot()

    def snapshot(self) -> List[Tuple[Tuple, Dict, float]]:
        """A consistent plain-data export of every entry, oldest-first.

        ``[(fingerprint, observation_state, updated_ts), ...]`` in LRU
        order, copied under the ledger lock so the store (compaction, the
        periodic flush) never reads mutating state.
        """
        with self._lock:
            return [(fingerprint, observation._to_state(),
                     observation.updated)
                    for fingerprint, observation in self._entries.items()]

    def restore(self, entries: List[Tuple[Tuple, Dict, float]]) -> int:
        """Load persisted entries, *without* clobbering live knowledge.

        Entries are inserted oldest-first below any existing entries'
        recency; a fingerprint the ledger already holds is skipped (what
        this process observed itself always outranks history).  Malformed
        entries are skipped, not raised — persisted state is advisory.
        Returns how many entries were restored.
        """
        restored = []
        for entry in entries:
            try:
                fingerprint, state, updated = entry
                restored.append((fingerprint,
                                 PlanObservation._from_state(state,
                                                             float(updated))))
            except (KeyError, TypeError, ValueError):
                continue
        with self._lock:
            live = self._entries
            if live:
                fresh: "OrderedDict[Tuple, PlanObservation]" = OrderedDict()
                for fingerprint, observation in restored:
                    if fingerprint not in live:
                        fresh[fingerprint] = observation
                fresh.update(live)
                self._entries = fresh
                count = len(fresh) - len(live)
            else:
                for fingerprint, observation in restored:
                    live[fingerprint] = observation
                count = len(live)
            # Fill the constant-blind index for restored shapes (newest
            # restored entry wins) without clobbering live mappings.
            restored_shapes: Dict[Tuple, Tuple] = {}
            for fingerprint, _observation in restored:
                if fingerprint in self._entries:
                    restored_shapes[shape_fingerprint(fingerprint)] = \
                        fingerprint
            for shape, fingerprint in restored_shapes.items():
                if shape not in self._shapes:
                    self._shapes[shape] = fingerprint
            while len(self._entries) > self.limit:
                evicted, _ = self._entries.popitem(last=False)
                evicted_shape = shape_fingerprint(evicted)
                if self._shapes.get(evicted_shape) == evicted:
                    del self._shapes[evicted_shape]
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._shapes.clear()
