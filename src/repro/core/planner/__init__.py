"""Cost-based adaptive planning for the Kleisli reproduction.

The paper's optimizer "chooses among physical strategies using knowledge
about the sources"; this package is that chooser for the reproduction's
three lowering targets:

* :mod:`~repro.core.planner.cardinality` — structural row-count estimates
  over optimized NRC terms, seeded by the statistics registry;
* :mod:`~repro.core.planner.cost` — the cost model (estimated rows x
  per-driver latency x observed per-item costs);
* :mod:`~repro.core.planner.feedback` — the run-time feedback ledger
  (per-stage per-chunk costs and true cardinalities, keyed by term
  fingerprint, with a constant-blind similarity index);
* :mod:`~repro.core.planner.plan` — :class:`PhysicalPlan` (the per-query
  knob set) and :class:`QueryPlanner` (the chooser the engine and the
  optimizer rule sets consult).
"""

from .cardinality import CardinalityEstimator, collect_scans, scan_collection
from .cost import CostModel, pow2ceil
from .feedback import PlanFeedback, PlanObservation, PlanProbe, shape_fingerprint
from .plan import PhysicalPlan, QueryPlanner

__all__ = [
    "CardinalityEstimator", "collect_scans", "scan_collection",
    "CostModel", "pow2ceil",
    "PlanFeedback", "PlanObservation", "PlanProbe", "shape_fingerprint",
    "PhysicalPlan", "QueryPlanner",
]
