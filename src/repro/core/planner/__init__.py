"""Cost-based adaptive planning for the Kleisli reproduction.

The paper's optimizer "chooses among physical strategies using knowledge
about the sources"; this package is that chooser for the reproduction's
three lowering targets:

* :mod:`~repro.core.planner.cardinality` — structural row-count estimates
  over optimized NRC terms, seeded by the statistics registry;
* :mod:`~repro.core.planner.cost` — the cost model (estimated rows x
  per-driver latency x observed per-item costs);
* :mod:`~repro.core.planner.feedback` — the run-time feedback ledger
  (per-stage per-chunk costs and true cardinalities, keyed by term
  fingerprint, with a constant-blind similarity index);
* :mod:`~repro.core.planner.plan` — :class:`PhysicalPlan` (the per-query
  knob set) and :class:`QueryPlanner` (the chooser the engine and the
  optimizer rule sets consult);
* :mod:`~repro.core.planner.store` — :class:`PlanStore`, crash-safe
  persistence for the ledger and the statistics registry's learned state.

Persistence
===========

:class:`PlanStore` makes the learned state survive the process.  One store
is one directory: an atomic ``snapshot.kjs`` plus append-only per-process
``journal-<pid>-<id>.kjl`` files.  Every record is length-prefixed and
CRC32-checksummed (the :mod:`repro.net.framing` discipline, hardened for
disk: 4-byte big-endian length, 4-byte CRC32 of the payload, UTF-8 JSON
payload, :data:`~repro.core.planner.store.MAX_RECORD_BYTES` cap).  Journals
open with a header record carrying the store schema version *and* a
fingerprint-algorithm probe hash; a journal or snapshot written under a
different version of either is skipped wholesale — a stale store can serve
no keys that no longer match.  Recovery is paranoid: a truncated tail, a
bit-flipped record, or outright garbage stops that one file's read at the
anomaly (nothing after an unverifiable frame is trusted, so records are
never invented), the skipped bytes are counted in the store's books, and
planning proceeds from what survived.  Loading merges the snapshot and
every sibling journal newest-timestamp-wins per key, applies staleness
decay (entry ``runs`` weight halves per
:data:`~repro.core.planner.store.PlanStore.DECAY_HALF_LIFE`; entries past
``MAX_AGE`` drop), and compaction folds live state into a fresh snapshot
via write-tmp -> fsync -> ``os.replace`` under a file lock.

The **zero-knowledge contract** carries over from the planner itself: an
engine attached to a missing, empty, or arbitrarily corrupted store loads
nothing, and every plan it produces is bit-for-bit identical to a
storeless engine's (differential-pinned in
``tests/kleisli/test_store_differential.py``).  Persistence failures never
surface in query execution — a full disk or torn write degrades to a
disabled writer and a book entry, not an exception.
"""

from .cardinality import CardinalityEstimator, collect_scans, scan_collection
from .cost import CostModel, pow2ceil
from .feedback import PlanFeedback, PlanObservation, PlanProbe, shape_fingerprint
from .plan import PhysicalPlan, QueryPlanner
from .store import PlanStore, PlanStoreState

__all__ = [
    "CardinalityEstimator", "collect_scans", "scan_collection",
    "CostModel", "pow2ceil",
    "PlanFeedback", "PlanObservation", "PlanProbe", "shape_fingerprint",
    "PhysicalPlan", "QueryPlanner",
    "PlanStore", "PlanStoreState",
]
