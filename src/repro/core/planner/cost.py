"""The planner's cost model: estimated rows x observed per-item costs.

Kleisli "chooses among physical strategies using knowledge about the
sources"; this module turns that knowledge — registered/observed driver
latencies from the statistics registry, per-chunk pipeline costs from the
:class:`~repro.core.planner.feedback.PlanFeedback` ledger, and a handful of
calibrated interpreter-overhead constants — into comparable costs in
seconds, so the :class:`~repro.core.planner.plan.QueryPlanner` can pick the
cheapest knob setting instead of a hard-coded one.

The constants are deliberately coarse (they only need to rank knob
candidates whose true costs differ by integer factors); observed numbers
always override them when the feedback ledger has a measurement.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["CostModel", "pow2ceil"]


def pow2ceil(value: float) -> int:
    """The smallest power of two >= ``value`` (and >= 1)."""
    n = max(1, int(math.ceil(value)))
    return 1 << (n - 1).bit_length()


class CostModel:
    """Cost estimates combining cardinalities, latencies and observed costs."""

    #: Per-element CPU cost of one fused pipeline stage (calibration
    #: constant; feedback measurements override it).
    PER_ITEM_CPU = 2e-6
    #: Per-task overhead of a scheduler submission (future + ordering).
    TASK_OVERHEAD = 2e-4
    #: Per-chunk dispatch overhead of a pipeline stage boundary.
    CHUNK_DISPATCH = 5e-6
    #: Driver round-trip latency above which batching round-trips dominates
    #: the cost of a scan-batched stage (and is worth re-planning for).
    BATCH_LATENCY_THRESHOLD = 0.005
    #: Driver latency above which a loop body is latency-bound: prefetch
    #: should stay element-granular and start wide.
    REMOTE_PARALLEL_LATENCY = 0.005

    def __init__(self, statistics, feedback=None):
        self.statistics = statistics
        self.feedback = feedback

    # -- per-source numbers -------------------------------------------------

    def driver_latency(self, driver: str) -> float:
        """Best per-request latency estimate (registered wins, else EMA)."""
        return float(self.statistics.latency(driver))

    def unit_cost(self, observation, stage: str = "pipeline") -> Optional[float]:
        """Observed per-element cost of a stage from a feedback observation."""
        if observation is None:
            return None
        return observation.unit_cost(stage)

    # -- composite costs ----------------------------------------------------

    def batched_scan_cost(self, rows: float, batch: int, latency: float) -> float:
        """Cost of fetching ``rows`` scan results in batches of ``batch``
        through a single-round-trip ``execute_batch`` driver: one latency
        per batch, plus the per-item buffering/dispatch work."""
        batches = math.ceil(max(rows, 1.0) / max(1, batch))
        return batches * latency + rows * self.PER_ITEM_CPU \
            + batches * self.CHUNK_DISPATCH

    def blocked_join_cost(self, outer: float, inner: float, block: int,
                          inner_pull_cost: float) -> float:
        """Cost of a blocked nested-loop join at ``block``: the inner side
        is re-fetched once per outer block (``inner_pull_cost`` per inner
        element — driver latency for remote/lazy inners, CPU otherwise)
        on top of the block-size-independent condition evaluations."""
        blocks = math.ceil(max(outer, 1.0) / max(1, block))
        return blocks * inner * inner_pull_cost \
            + outer * inner * self.PER_ITEM_CPU

    def parallel_chunk_for(self, unit_cost: Optional[float]) -> int:
        """Task granularity for a ParallelExt body of ``unit_cost`` seconds
        per element: enough elements per task to amortize TASK_OVERHEAD,
        one element when the body is expensive (or unmeasured)."""
        if unit_cost is None or unit_cost <= 0.0:
            return 1
        if unit_cost >= self.TASK_OVERHEAD:
            return 1
        return min(256, pow2ceil(self.TASK_OVERHEAD / unit_cost))
