"""Cardinality estimation over optimized NRC terms.

"Several of the rules for join optimizations require statistics about the
size of files ..." — the statistics registry holds the per-source numbers;
this module *propagates* them structurally through an optimized term, so the
planner can reason about whole pipelines, not just their leaves:

* a ``Scan`` contributes the registered (driver, collection) cardinality;
* an ``Ext`` multiplies its source estimate by the per-element output of its
  body (a filter shape ``if cond then {e} else {}`` contributes its
  selectivity, a plain singleton contributes one);
* a ``Union`` adds its operands (an upper bound for set kind);
* a ``Join`` applies an equality selectivity (indexed method — on average
  one match per probe) or a residual-condition selectivity (blocked method).

Estimates are deliberately coarse — the planner needs *orders of magnitude*
(pick a chunk size, bound a join block), not exact counts — but they obey
one invariant the property tests pin: adding a filter can only shrink an
estimate (selectivities are at most 1), so plan choices degrade
monotonically with selectivity rather than oscillating.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ..nrc import ast as A
from ..values import iter_collection

__all__ = ["CardinalityEstimator", "scan_collection", "collect_scans"]

#: Request keys that name the collection a Scan draws from, in the order the
#: engine has always probed them (table for relational drivers, class for
#: object stores, db for flat-file/Entrez divisions).
SCAN_COLLECTION_KEYS = ("table", "class", "db")


def scan_collection(request: Mapping[str, object]) -> str:
    """The collection name a Scan request addresses (``""`` if unnamed)."""
    for key in SCAN_COLLECTION_KEYS:
        value = request.get(key)
        if value:
            return str(value)
    return ""


def collect_scans(expr: A.Expr) -> Tuple[Tuple[str, str], ...]:
    """Every ``(driver, collection)`` pair scanned anywhere in ``expr``."""
    pairs: List[Tuple[str, str]] = []
    seen = set()

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.Scan):
            pair = (node.driver, scan_collection(node.request))
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        for child in node.children():
            walk(child)

    walk(expr)
    return tuple(pairs)


class CardinalityEstimator:
    """Structural row-count estimates for collection-valued NRC terms.

    ``statistics`` is anything with the
    :class:`~repro.kleisli.statistics.SourceStatisticsRegistry` read
    interface (``cardinality(driver, collection)`` and
    ``DEFAULT_CARDINALITY``); the estimator never mutates it.
    """

    #: Fraction of elements assumed to survive a filter (``if c then {e}
    #: else {}``) when nothing better is known.  Must be <= 1.0: the
    #: monotonicity property (filtering never grows an estimate) rests on it.
    FILTER_SELECTIVITY = 0.5
    #: Fraction of the cross product assumed to survive a blocked join's
    #: residual (non-equality) condition.
    CONDITION_SELECTIVITY = 0.25

    def __init__(self, statistics):
        self.statistics = statistics

    def _default(self) -> float:
        return float(getattr(self.statistics, "DEFAULT_CARDINALITY", 1000))

    def estimate(self, expr: A.Expr) -> float:
        """Estimated element count of ``expr`` iterated as a collection.

        Scalar-producing nodes estimate as one element (what iterating them
        through the stream backends yields); unknown node types fall back to
        the registry default, exactly like an unregistered source.
        """
        node_type = type(expr)
        if node_type is A.Const:
            try:
                return float(len(list(iter_collection(expr.value))))
            except Exception:
                return 1.0
        if node_type is A.Empty:
            return 0.0
        if node_type is A.Singleton:
            return 1.0
        if node_type is A.Scan:
            return float(self.statistics.cardinality(
                expr.driver, scan_collection(expr.request)))
        if node_type is A.Cached:
            return self.estimate(expr.expr)
        if node_type is A.Let:
            return self.estimate(expr.body)
        if node_type is A.Union:
            # Exact for bag/list; an upper bound for set kind (duplicates
            # collapse) — upper bounds are the safe direction for sizing
            # buffers and blocks.
            return self.estimate(expr.left) + self.estimate(expr.right)
        if node_type is A.IfThenElse:
            if isinstance(expr.else_branch, A.Empty):
                # The desugarer's filter shape: selectivity times the
                # surviving branch.
                return self.FILTER_SELECTIVITY * self.estimate(expr.then_branch)
            return max(self.estimate(expr.then_branch),
                       self.estimate(expr.else_branch))
        if isinstance(expr, A.Ext):  # includes ParallelExt
            return self.estimate(expr.source) * self.estimate(expr.body)
        if node_type is A.Join:
            outer = self.estimate(expr.outer)
            inner = self.estimate(expr.inner)
            per_pair = self.estimate(expr.body)
            if expr.method == "indexed":
                # Equality selectivity ~ 1/|inner|: on average one inner
                # match per probed outer element.
                matches = outer
            else:
                matches = outer * inner
            if expr.condition is not None:
                matches *= self.CONDITION_SELECTIVITY
            return matches * per_pair
        if node_type is A.Fold:
            return 1.0
        if node_type in (A.PrimCall, A.Project, A.RecordExpr, A.VariantExpr,
                         A.Lam, A.Apply, A.Deref, A.Case):
            return 1.0
        # A Var (whose binding the planner cannot see) or an unknown node
        # type: assume the registry default, like an unregistered source.
        return self._default()
