"""The physical-plan chooser: per-query knobs from statistics and feedback.

"The optimizer chooses among physical strategies using knowledge about the
sources."  Before this module every physical knob of the reproduction — the
blocked-join block size, the chunk ramp bounds, the ParallelExt prefetch
granularity — was a hand-set constant.  :class:`QueryPlanner` replaces the
constants with per-query choices:

* **compile-time knobs** (join block size, whether/ how wide to introduce
  ``ParallelExt``) are wired into the optimizer rule sets as cost-gate
  callbacks (``make_join_rule_set(block_size_for=...)``,
  ``make_parallel_rule_set(workers_for=...)``);
* **run-time knobs** (the :class:`~repro.core.nrc.compile.ChunkPolicy` ramp
  bounds, ``parallel_chunk`` granularity, the prefetch window hint, the
  cost-adaptive ramp switch) travel on a :class:`PhysicalPlan` the engine
  attaches to the evaluation context per streamed run.

The contract the differential tests pin: with **zero statistics** (nothing
registered, nothing observed, no feedback) every choice reproduces the
historical defaults bit-for-bit — the planner only ever *adds* knowledge,
never changes the uninformed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..nrc import ast as A
from ..nrc.compile import ChunkPolicy, term_fingerprint
from ..values import iter_collection
from .cardinality import CardinalityEstimator, collect_scans, scan_collection
from .cost import CostModel, pow2ceil
from .feedback import PlanFeedback, PlanObservation

__all__ = ["PhysicalPlan", "QueryPlanner"]


@dataclass(frozen=True)
class PhysicalPlan:
    """One query's physical knobs (immutable; defaults == the constants
    every run used before the planner existed)."""

    join_block_size: int = 256
    initial_chunk: int = 1
    max_chunk: int = ChunkPolicy.DEFAULT_MAX_CHUNK
    remote_max_chunk: int = ChunkPolicy.REMOTE_MAX_CHUNK
    parallel_chunk: int = 1
    #: ``None`` leaves the parallel rule set's configured worker count.
    parallel_workers: Optional[int] = None
    #: Initial prefetch window for adaptive schedulers (``None`` = probe
    #: up from one worker, the uninformed default).
    prefetch_window: Optional[int] = None
    #: Whether the chunk ramp adapts to observed per-chunk cost.
    adaptive_ramp: bool = False
    #: Where the knobs came from: ``default`` | ``statistics`` | ``feedback``.
    source: str = "default"
    estimated_rows: Optional[float] = None

    @classmethod
    def default(cls, join_block_size: int = 256) -> "PhysicalPlan":
        """The uninformed plan: today's constants, exactly."""
        return cls(join_block_size=join_block_size)

    @property
    def is_default(self) -> bool:
        return self.source == "default"

    def chunk_policy(self, is_remote: Optional[Callable[[str], bool]] = None
                     ) -> ChunkPolicy:
        """The plan's knobs as a run-time :class:`ChunkPolicy`."""
        return ChunkPolicy(max_chunk=self.max_chunk,
                           remote_max_chunk=self.remote_max_chunk,
                           initial_chunk=self.initial_chunk,
                           parallel_chunk=self.parallel_chunk,
                           is_remote=is_remote,
                           adaptive_ramp=self.adaptive_ramp)

    def describe(self) -> Dict[str, object]:
        """A plain-dict view for benchmarks and the experiment log."""
        return {
            "source": self.source,
            "join_block_size": self.join_block_size,
            "initial_chunk": self.initial_chunk,
            "max_chunk": self.max_chunk,
            "remote_max_chunk": self.remote_max_chunk,
            "parallel_chunk": self.parallel_chunk,
            "parallel_workers": self.parallel_workers,
            "prefetch_window": self.prefetch_window,
            "adaptive_ramp": self.adaptive_ramp,
            "estimated_rows": self.estimated_rows,
        }


class QueryPlanner:
    """Chooses a :class:`PhysicalPlan` per query from statistics + feedback.

    ``statistics`` is the engine's
    :class:`~repro.kleisli.statistics.SourceStatisticsRegistry`;
    ``feedback`` the shared :class:`PlanFeedback` ledger;
    ``batches_natively`` an optional callable saying whether a driver's
    ``execute_batch`` is one wire round-trip (what makes raising
    ``remote_max_chunk`` pay — without it a bigger batch is the same number
    of round-trips).
    """

    #: Largest block the blocked-join chooser will buffer on the outer side.
    MAX_JOIN_BLOCK = 4096
    #: Outer cardinality below which the join block is left at the default
    #: (rescans are already few; re-planning would churn plans for nothing).
    JOIN_REPLAN_FLOOR = 2048
    #: Modeled seconds of rescan cost a bigger block must save to justify
    #: deviating from the default — a cheap-to-rescan inner (a local
    #: constant, a fast cursor) never clears it, however large the outer.
    JOIN_REPLAN_SAVING = 0.05
    #: Largest local chunk the planner will ramp to.
    MAX_LOCAL_CHUNK = 4096
    #: Candidate remote batch caps (bounded: one batch must never buffer an
    #: unbounded slice of a slow source, however good the latency math).
    REMOTE_CHUNK_CANDIDATES = (32, 64, 128, 256)
    #: Candidate-walk tie-breaker shared by the block-size and remote-cap
    #: choosers: take the SMALLEST candidate whose modeled cost is within
    #: this factor of the cheapest — savings justify buffering, buffering
    #: alone justifies nothing.
    REPLAN_SLACK = 1.05
    #: Sources with fewer estimated elements than this gain nothing from a
    #: parallel loop (the pool costs more than the overlap).
    MIN_PARALLEL_SOURCE = 2

    def __init__(self, statistics, feedback: Optional[PlanFeedback] = None,
                 default_block_size: int = 256,
                 parallel_max_workers: int = 5,
                 batches_natively: Optional[Callable[[str], bool]] = None):
        self.statistics = statistics
        self.feedback = feedback
        self.default_block_size = default_block_size
        self.parallel_max_workers = parallel_max_workers
        self.batches_natively = batches_natively or (lambda driver: False)
        self.cardinality = CardinalityEstimator(statistics)
        self.cost = CostModel(statistics, feedback)
        #: How many plans were chosen, and how many left the defaults.
        self.plans_chosen = 0
        self.plans_default = 0

    # -- knowledge tests -----------------------------------------------------

    def _lookup(self, fingerprint: Tuple) -> Optional[PlanObservation]:
        if self.feedback is None:
            return None
        return self.feedback.lookup(fingerprint)

    def _has_source_statistics(self, scans) -> bool:
        for driver, collection in scans:
            if self.statistics.has_cardinality(driver, collection):
                return True
            if self.statistics.has_latency(driver):
                return True
        return False

    def _exact_rows(self, expr: A.Expr) -> Optional[float]:
        """A cardinality the planner *trusts* (registered or literal), or
        ``None``.  Compile-time gates key on this rather than the structural
        estimate so an uninformed query can never flip a compile-time knob."""
        node_type = type(expr)
        if node_type is A.Const:
            try:
                return float(len(list(iter_collection(expr.value))))
            except Exception:
                return None
        if node_type is A.Cached:
            return self._exact_rows(expr.expr)
        if node_type is A.Scan:
            collection = scan_collection(expr.request)
            if self.statistics.has_cardinality(expr.driver, collection):
                return float(self.statistics.cardinality(expr.driver, collection))
            return None
        return None

    # -- compile-time hooks (wired into the optimizer rule sets) -------------

    def join_block_size(self, outer: A.Expr, inner: A.Expr) -> Optional[int]:
        """Cost-gated blocked-join block size; ``None`` keeps the default.

        Only fires with *trusted* cardinalities on BOTH sides — a
        registered/literal outer past the re-plan floor, and an inner
        whose rescan cost the model can actually price (registered rows,
        or a registered/observed driver latency).  An uninformed side can
        never flip a compile-time knob; guessing the inner at the registry
        default would let pure ignorance change the emitted plan.

        Among bounded power-of-two candidates the chooser takes the
        SMALLEST block whose modeled cost sits within
        :data:`REPLAN_SLACK` of the cheapest — rescan savings justify
        outer-side buffering, buffering alone justifies nothing — and
        deviates only when the saving over the default block is *material*
        (:data:`JOIN_REPLAN_SAVING`): a huge outer over a cheap-to-rescan
        inner keeps the default, because the model says there is nothing
        worth saving.
        """
        outer_rows = self._exact_rows(outer)
        if outer_rows is None or outer_rows < self.JOIN_REPLAN_FLOOR:
            return None
        inner_rows = self._exact_rows(inner)
        inner_latent = any(self.statistics.has_latency(driver)
                           for driver, _collection in collect_scans(inner))
        if inner_rows is None and not inner_latent:
            return None  # nothing trustworthy about the inner's rescan cost
        if inner_rows is None:
            inner_rows = self.cardinality.estimate(inner)
        inner_pull = self.cost.PER_ITEM_CPU
        for driver, _collection in collect_scans(inner):
            inner_pull = max(inner_pull, self.cost.driver_latency(driver))
        costs = {}
        block = self.default_block_size
        costs[block] = self.cost.blocked_join_cost(outer_rows, inner_rows,
                                                   block, inner_pull)
        while block < self.MAX_JOIN_BLOCK:
            block *= 2
            costs[block] = self.cost.blocked_join_cost(
                outer_rows, inner_rows, block, inner_pull)
        floor = min(costs.values())
        best = min(size for size, cost in costs.items()
                   if cost <= floor * self.REPLAN_SLACK)
        if best == self.default_block_size \
                or costs[self.default_block_size] - costs[best] \
                < self.JOIN_REPLAN_SAVING:
            return None
        return best

    def _batched_scan_requests(self, expr: A.Expr, drivers) -> float:
        """Estimated requests the batched-scan stages will issue.

        The remote cap governs the ``Ext``-over-``Scan`` batching stage,
        whose request count is the *source* cardinality of each such site
        — NOT the query's output estimate (a selective downstream filter
        shrinks the output without removing a single scan request).
        Returns the largest such source estimate, 0.0 when no batching
        site exists.
        """
        requests = 0.0

        def walk(node: A.Expr) -> None:
            nonlocal requests
            if isinstance(node, A.Ext) and type(node.body) is A.Scan \
                    and node.body.driver in drivers:
                requests = max(requests, self.cardinality.estimate(node.source))
            for child in node.children():
                walk(child)

        walk(expr)
        return requests

    def parallel_workers(self, expr: A.Expr) -> Optional[int]:
        """Cost gate for introducing ``ParallelExt`` around ``expr``.

        ``0`` vetoes the rewrite (a source known to hold fewer than
        :data:`MIN_PARALLEL_SOURCE` elements cannot benefit from request
        overlap); ``None`` keeps the rule set's configured worker count.
        """
        rows = self._exact_rows(expr.source)
        if rows is not None and rows < self.MIN_PARALLEL_SOURCE:
            return 0
        return None

    # -- the per-query run-time plan -----------------------------------------

    def plan_for(self, expr: A.Expr,
                 fingerprint: Optional[Tuple] = None) -> PhysicalPlan:
        """Choose run-time knobs for one (optimized) query.

        With no applicable knowledge the historical defaults come back
        unchanged (``plan.is_default``); with knowledge, every deviation is
        a cost-model choice — see the field-by-field notes inline.
        ``fingerprint`` lets a caller that already fingerprinted the term
        (the engine shares one with its feedback probe) skip the walk.
        """
        self.plans_chosen += 1
        if fingerprint is None:
            fingerprint = term_fingerprint(expr)
        observation = self._lookup(fingerprint)
        scans = collect_scans(expr)
        if observation is None and not self._has_source_statistics(scans):
            self.plans_default += 1
            return PhysicalPlan.default(self.default_block_size)

        rows = (observation.cardinality if observation is not None
                and observation.cardinality > 0
                else self.cardinality.estimate(expr))
        latency = 0.0
        batching_drivers = set()
        available = getattr(self.statistics, "is_available", None)
        for driver, _collection in scans:
            driver_latency = self.cost.driver_latency(driver)
            latency = max(latency, driver_latency)
            if (driver_latency >= self.cost.BATCH_LATENCY_THRESHOLD
                    and self.batches_natively(driver)
                    # A tripped breaker (registry availability) vetoes the
                    # batching-aggressive cap: routing bigger batches at a
                    # source the breaker proved down just buffers more
                    # elements behind the next rejection.
                    and (available is None or available(driver))):
                batching_drivers.add(driver)

        # Local ramp bound: raised past the old constant for known-huge
        # pipelines (up to MAX_LOCAL_CHUNK), never *lowered* — ``rows`` is
        # the OUTPUT estimate, but the bound governs every stage including
        # the source scan, and a selective query's small output says
        # nothing about how many source rows its scan must chunk through
        # (a lowered cap would self-throttle exactly such queries through
        # the feedback loop).  Small outputs simply never reach the cap.
        max_chunk = ChunkPolicy.DEFAULT_MAX_CHUNK
        if rows > 0:
            max_chunk = max(max_chunk,
                            min(self.MAX_LOCAL_CHUNK, pow2ceil(rows)))

        # Remote batch cap: when the slow driver ships a batch in ONE wire
        # round-trip, round-trip count dominates — take the SMALLEST
        # candidate whose modeled fetch cost sits within REPLAN_SLACK of
        # the cheapest (a fetch whose requests already fit a small batch
        # keeps the small, buffering-friendly cap; a big one earns the big
        # cap).  The request count is the batching stage's SOURCE estimate
        # (_batched_scan_requests) — the output estimate would undersize
        # the cap for selective queries.  A default-looping driver keeps
        # the bounded default: bigger batches would be the same round-trips.
        remote_max_chunk = ChunkPolicy.REMOTE_MAX_CHUNK
        if batching_drivers:
            requests = self._batched_scan_requests(expr, batching_drivers)
            if requests <= 0.0:
                # No Ext-over-Scan batching site: the cap would govern only
                # plain scan-cursor chunking, where batching never fires.
                requests = rows
            costs = {size: self.cost.batched_scan_cost(requests, size, latency)
                     for size in self.REMOTE_CHUNK_CANDIDATES}
            floor = min(costs.values())
            remote_max_chunk = min(
                size for size, cost in costs.items()
                if cost <= floor * self.REPLAN_SLACK)

        # ParallelExt task granularity: latency-bound bodies keep
        # element-granular prefetch (overlap is the point); a measured cheap
        # body gets chunk-granular tasks sized to amortize task overhead.
        parallel_chunk = 1
        unit_cost = self.cost.unit_cost(observation)
        if latency < self.cost.REMOTE_PARALLEL_LATENCY:
            parallel_chunk = self.cost.parallel_chunk_for(unit_cost)

        # Prefetch window hint: with a known-slow source, start the adaptive
        # window at the server cap instead of probing up from one — the
        # bandwidth-delay product at these latencies always exceeds the cap.
        prefetch_window = None
        if latency >= self.cost.REMOTE_PARALLEL_LATENCY:
            prefetch_window = self.parallel_max_workers

        # join_block_size stays the default here deliberately: block sizes
        # are a COMPILE-time knob, applied through the optimizer hook
        # (:meth:`join_block_size`) and baked into the Join node — a
        # run-time plan reporting a different number would describe a knob
        # execution never reads.
        return PhysicalPlan(
            join_block_size=self.default_block_size,
            initial_chunk=1,
            max_chunk=max_chunk,
            remote_max_chunk=remote_max_chunk,
            parallel_chunk=parallel_chunk,
            parallel_workers=None,
            prefetch_window=prefetch_window,
            adaptive_ramp=True,
            source="feedback" if observation is not None else "statistics",
            estimated_rows=rows,
        )
