"""Crash-safe persistence for the planner's learned state.

PR 5's :class:`~repro.core.planner.feedback.PlanFeedback` ledger and the
statistics registry's observed latency EMAs die with the process; this
module is the durable warm start: an append-only, per-record-checksummed
journal plus an atomic snapshot, stdlib only, built so that **no on-disk
state can ever poison a plan** — a truncated tail, a bit-flipped record, a
wrong-version snapshot, or a missing store each degrade to "skip what is
unreadable, surface books, plan from what survives".

Layout (one directory per store)::

    snapshot.kjs            one framed record holding the compacted state
    journal-<pid>-<id>.kjl  this process's append-only journal
    journal-...             sibling journals of other (live or dead) workers
    lock                    the compaction file lock

A *record* reuses the :mod:`repro.net.framing` discipline, hardened for
disk::

    +----------------+----------------+----------------------------+
    | 4-byte length  | 4-byte CRC32   |  UTF-8 JSON payload        |
    |  (big-endian)  |  (of payload)  |  (exactly `length` bytes)  |
    +----------------+----------------+----------------------------+

The reader is paranoid by construction: it stops at the first frame whose
header is short, whose length is implausible, whose payload is truncated,
or whose CRC does not match — everything before the anomaly loads,
everything after is skipped and *counted*, and nothing is ever invented
(a record either round-trips its checksum or does not exist).  The loader
never raises on bad data; I/O and decode problems become numbers in
:meth:`PlanStore.books`.

Writers are single-writer-per-file: every process appends only to its own
journal, so concurrent workers never interleave bytes.  Convergence across
workers happens at load time (and compaction time): all journals plus the
snapshot are merged entry-wise, newest timestamp wins per key.  Compaction
(write-tmp -> fsync -> ``os.replace``) folds the live state into a fresh
snapshot under a best-effort file lock and truncates only the *own*
journal — sibling journals stay untouched until they age out.

Version guards: every journal header and snapshot carries the store schema
version *and* a fingerprint-algorithm probe (a hash of
:func:`~repro.core.nrc.compile.term_fingerprint` applied to a fixed term),
so a store written by a build whose fingerprint encoding changed is
skipped wholesale rather than serving keys that can no longer match.

The zero-knowledge contract of PR 5 carries over bit-for-bit: an engine
attached to a missing, empty, or arbitrarily corrupted store loads nothing
and therefore plans exactly as a storeless engine does.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import time
import uuid
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import PlanStoreError

__all__ = [
    "PlanStore",
    "PlanStoreState",
    "MAX_RECORD_BYTES",
    "SCHEMA_VERSION",
    "decode_record",
    "encode_record",
    "fingerprint_algorithm_version",
    "frame_payload",
    "read_journal",
    "unframe_payload",
]

#: On-disk schema version; bump on incompatible record/layout changes.
SCHEMA_VERSION = 1

#: Hard cap on one record's payload (a corrupted length field must never
#: make the loader buffer gigabytes before the CRC can reject it).
MAX_RECORD_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)

_SNAPSHOT_NAME = "snapshot.kjs"
_JOURNAL_PREFIX = "journal-"
_JOURNAL_SUFFIX = ".kjl"
_LOCK_NAME = "lock"

try:  # POSIX file locking guards compaction; degrade to O_EXCL elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


# ---------------------------------------------------------------------------
# value codec: faithful JSON round-trip for fingerprint keys
# ---------------------------------------------------------------------------
#
# Term fingerprints are nested tuples whose leaves are the hashable scalar
# types literals use (str/int/float/bool/None, occasionally bytes) plus
# frozensets minted by request freezing.  Plain JSON would flatten tuples
# and frozensets into lists; the tagged encoding below keeps every shape
# distinct so decode(encode(x)) == x *exactly* — a key that cannot be
# encoded faithfully is refused (and simply not persisted) rather than
# approximated, because an approximate key could serve another query's
# observations.

def _encode_value(value: object) -> object:
    if isinstance(value, tuple):
        return ["t"] + [_encode_value(item) for item in value]
    if isinstance(value, frozenset):
        encoded = [_encode_value(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["fs"] + encoded
    if isinstance(value, bytes):
        return ["y", value.hex()]
    if isinstance(value, list):
        return ["l"] + [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise PlanStoreError(
        f"value of type {type(value).__name__} has no faithful journal "
        f"encoding")


def _decode_value(encoded: object) -> object:
    if isinstance(encoded, list):
        if not encoded or not isinstance(encoded[0], str):
            raise ValueError("untagged list in journal value")
        tag, items = encoded[0], encoded[1:]
        if tag == "t":
            return tuple(_decode_value(item) for item in items)
        if tag == "fs":
            return frozenset(_decode_value(item) for item in items)
        if tag == "l":
            return [_decode_value(item) for item in items]
        if tag == "y":
            if len(items) != 1 or not isinstance(items[0], str):
                raise ValueError("malformed bytes tag")
            return bytes.fromhex(items[0])
        raise ValueError(f"unknown journal value tag {tag!r}")
    return encoded


# ---------------------------------------------------------------------------
# record framing: length + CRC32 + JSON payload
# ---------------------------------------------------------------------------

def frame_payload(payload: bytes,
                  max_bytes: int = MAX_RECORD_BYTES) -> bytes:
    """Frame an opaque payload: 4-byte length, 4-byte CRC32, the payload.

    The raw framing codec under :func:`encode_record`, exposed so other
    disk formats (the query governor's spill runs) can reuse the exact
    length+CRC32 discipline for non-JSON payloads.
    """
    if len(payload) > max_bytes:
        raise PlanStoreError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte cap")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unframe_payload(data: bytes, offset: int = 0,
                    max_bytes: int = MAX_RECORD_BYTES
                    ) -> Tuple[Optional[bytes], int]:
    """Verify and extract one framed payload at ``offset``.

    Returns ``(payload, next_offset)``, or ``(None, offset)`` on any
    anomaly — short header, implausible length, truncated payload, CRC
    mismatch.  Never raises: a payload either round-trips its checksum or
    does not exist.
    """
    end = offset + _HEADER.size
    if end > len(data):
        return None, offset
    length, crc = _HEADER.unpack_from(data, offset)
    if length > max_bytes or end + length > len(data):
        return None, offset
    payload = data[end:end + length]
    if zlib.crc32(payload) != crc:
        return None, offset
    return payload, end + length


def encode_record(record: dict) -> bytes:
    """Frame one record: 4-byte length, 4-byte CRC32, JSON payload."""
    try:
        payload = json.dumps(record, separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise PlanStoreError(f"record is not JSON-serializable: {error}")
    return frame_payload(payload)


def decode_record(data: bytes, offset: int = 0) -> Tuple[Optional[dict], int]:
    """Decode one framed record at ``offset``.

    Returns ``(record, next_offset)``, or ``(None, offset)`` on *any*
    anomaly — short header, implausible length, truncated payload, CRC
    mismatch, undecodable JSON, non-object payload.  Never raises: a
    record either verifies end-to-end or does not exist.
    """
    payload, next_offset = unframe_payload(data, offset)
    if payload is None:
        return None, offset
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None, offset
    if not isinstance(record, dict):
        return None, offset
    return record, next_offset


def read_journal(data: bytes) -> Tuple[List[dict], int]:
    """Decode every verifiable record from the head of ``data``.

    Returns ``(records, skipped_bytes)``.  Reading stops at the first
    anomaly: after a bad length or flipped bit the frame boundaries can no
    longer be trusted, and resynchronising heuristically could *invent*
    records — skipping the tail can only lose observations, which the
    planner tolerates by design.
    """
    records: List[dict] = []
    offset = 0
    while offset < len(data):
        record, next_offset = decode_record(data, offset)
        if record is None:
            break
        records.append(record)
        offset = next_offset
    return records, len(data) - offset


_FINGERPRINT_VERSION: Optional[str] = None


def fingerprint_algorithm_version() -> str:
    """A hash identifying the *current* fingerprint encoding.

    Computed by fingerprinting a fixed probe term: if
    :func:`~repro.core.nrc.compile.term_fingerprint` ever changes how it
    encodes terms, this hash changes with it, and stores written by the
    old encoding are skipped as wrong-version instead of serving keys
    that can never match again.
    """
    global _FINGERPRINT_VERSION
    if _FINGERPRINT_VERSION is None:
        from ..nrc import ast as A
        from ..nrc import builder as B
        from ..nrc.compile import term_fingerprint

        probe = B.ext(
            "x",
            B.singleton(B.prim("add", B.var("x"), B.const(1)), "list"),
            A.Scan("probe", {"table": "t"}, kind="list"),
            kind="list")
        digest = hashlib.sha256(
            repr(term_fingerprint(probe)).encode("utf-8")).hexdigest()
        _FINGERPRINT_VERSION = digest[:12]
    return _FINGERPRINT_VERSION


# ---------------------------------------------------------------------------
# loaded state
# ---------------------------------------------------------------------------

class PlanStoreState:
    """What a load recovered: feedback entries + statistics, merged.

    ``feedback`` is ``[(fingerprint, observation_state, timestamp)]``
    ordered oldest-first (ready for
    :meth:`~repro.core.planner.feedback.PlanFeedback.restore`);
    ``statistics`` is the fill-gaps state for
    :meth:`~repro.kleisli.statistics.SourceStatisticsRegistry.restore`.
    """

    __slots__ = ("feedback", "statistics")

    def __init__(self, feedback: List[Tuple[Tuple, dict, float]],
                 statistics: Dict[str, object]):
        self.feedback = feedback
        self.statistics = statistics

    @property
    def empty(self) -> bool:
        return not self.feedback and not any(self.statistics.values())


def _valid_observation_state(state: object) -> bool:
    """Shape-check one persisted observation before it may enter a ledger."""
    if not isinstance(state, dict):
        return False
    if not isinstance(state.get("cardinality"), (int, float)) \
            or isinstance(state.get("cardinality"), bool):
        return False
    runs = state.get("runs")
    if not isinstance(runs, int) or isinstance(runs, bool) or runs < 0:
        return False
    stages = state.get("stages")
    if not isinstance(stages, dict):
        return False
    for name, numbers in stages.items():
        if not isinstance(name, str):
            return False
        if not isinstance(numbers, (list, tuple)) or len(numbers) != 3:
            return False
        if not all(isinstance(part, (int, float)) and not isinstance(part, bool)
                   for part in numbers):
            return False
    return True


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class PlanStore:
    """A crash-safe, versioned, multi-process store for planner state.

    One instance is one process's handle: it appends to its own journal
    (single writer per file), loads by merging the snapshot plus *every*
    journal in the directory, and compacts under a file lock.  All methods
    are thread-safe; none of the load/append paths ever raises on corrupt
    or unwritable storage — failures surface in :meth:`books`.

    ``state_provider`` (set by the engine at attach time) supplies the
    full live state for compaction: a callable returning
    ``(feedback_entries, statistics_state)`` in the
    :meth:`~repro.core.planner.feedback.PlanFeedback.snapshot` /
    :meth:`~repro.kleisli.statistics.SourceStatisticsRegistry.snapshot`
    shapes.
    """

    #: Half-life (seconds) of a persisted observation's ``runs`` weight:
    #: a day-old entry counts half as many runs, so fresh reality overtakes
    #: stale history in a couple of recordings instead of dozens.
    DECAY_HALF_LIFE = 24 * 3600.0
    #: Entries older than this are dropped at load (counted ``expired``).
    MAX_AGE = 7 * 24 * 3600.0
    #: Own-journal size that triggers an automatic compaction on append.
    COMPACT_BYTES = 256 * 1024
    #: Seconds between piggybacked statistics appends (latency EMAs are
    #: sampled per request — far too hot for write-through — so they ride
    #: along with feedback appends at most this often, plus every flush).
    STATS_INTERVAL = 30.0
    #: Consecutive append failures after which the writer disables itself
    #: (a full disk must not turn every drained query into an I/O error).
    MAX_APPEND_FAILURES = 3

    def __init__(self, path: str, *,
                 clock: Callable[[], float] = time.time,
                 opener: Callable = open,
                 half_life: float = DECAY_HALF_LIFE,
                 max_age: float = MAX_AGE,
                 compact_bytes: int = COMPACT_BYTES,
                 stats_interval: float = STATS_INTERVAL,
                 durability: str = "flush"):
        if durability not in ("flush", "fsync"):
            raise PlanStoreError(
                f"durability must be 'flush' or 'fsync', got {durability!r}")
        self.path = os.fspath(path)
        self.clock = clock
        self.opener = opener
        self.half_life = half_life
        self.max_age = max_age
        self.compact_bytes = compact_bytes
        self.stats_interval = stats_interval
        self.durability = durability
        self.state_provider: Optional[Callable[[], Tuple[list, dict]]] = None
        self._journal_name = (f"{_JOURNAL_PREFIX}{os.getpid()}-"
                              f"{uuid.uuid4().hex[:8]}{_JOURNAL_SUFFIX}")
        self._file = None
        self._journal_bytes = 0
        self._writer_failures = 0
        self._writer_disabled = False
        self._last_stats_append = 0.0
        self._closed = False
        self._lock = threading.RLock()
        self._books: Dict[str, float] = {
            "records_loaded": 0,
            "entries_loaded": 0,
            "records_skipped_corrupt": 0,
            "records_expired": 0,
            "skipped_bytes": 0,
            "journals_merged": 0,
            "journals_skipped_version": 0,
            "snapshot_loaded": 0,
            "io_errors": 0,
            "records_appended": 0,
            "append_failures": 0,
            "unpersistable": 0,
            "flushes": 0,
            "compactions": 0,
            "compactions_skipped": 0,
            "journals_swept": 0,
            "records_rescued": 0,
        }
        self._snapshot_ts: Optional[float] = None

    # -- paths ---------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, self._journal_name)

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.path, _SNAPSHOT_NAME)

    def _journal_paths(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.path))
        except OSError:
            return []
        return [os.path.join(self.path, name) for name in names
                if name.startswith(_JOURNAL_PREFIX)
                and name.endswith(_JOURNAL_SUFFIX)]

    # -- books ---------------------------------------------------------------

    def books(self) -> Dict[str, object]:
        """The persistence account: what loaded, what was refused, what
        was written — the ``persistence`` section of ``engine.health()``."""
        with self._lock:
            books = dict(self._books)
        books["attached"] = True
        books["journal_bytes"] = self._journal_size()
        books["writer_disabled"] = self._writer_disabled
        if self._snapshot_ts is not None:
            books["snapshot_age_seconds"] = max(
                0.0, self.clock() - self._snapshot_ts)
        else:
            books["snapshot_age_seconds"] = None
        return books

    def _journal_size(self) -> int:
        try:
            return os.path.getsize(self.journal_path)
        except OSError:
            return 0

    def _count(self, key: str, amount: float = 1) -> None:
        with self._lock:
            self._books[key] += amount

    # -- header / version guard ----------------------------------------------

    def _header_record(self) -> dict:
        return {"kind": "header", "version": SCHEMA_VERSION,
                "fpv": fingerprint_algorithm_version(),
                "pid": os.getpid(), "ts": self.clock()}

    @staticmethod
    def _version_ok(record: dict) -> bool:
        return (record.get("version") == SCHEMA_VERSION
                and record.get("fpv") == fingerprint_algorithm_version())

    # -- loading ---------------------------------------------------------------

    def load(self) -> PlanStoreState:
        """Merge the snapshot and every journal into one recovered state.

        Never raises on bad storage: unreadable files, torn tails, flipped
        bits, wrong versions, and malformed entries are skipped and
        counted.  Entry merge is newest-timestamp-wins per fingerprint
        (and per statistics key), then staleness decay halves old entries'
        ``runs`` weight per :data:`DECAY_HALF_LIFE` and drops entries past
        :data:`MAX_AGE` entirely.
        """
        now = self.clock()
        feedback: Dict[Tuple, Tuple[float, dict]] = {}
        cardinalities: Dict[Tuple[str, str], Tuple[float, int]] = {}
        latencies: Dict[str, Tuple[float, float]] = {}

        def merge_feedback(key: Tuple, state: dict, ts: float) -> None:
            known = feedback.get(key)
            if known is None or ts >= known[0]:
                feedback[key] = (ts, state)

        def merge_statistics(record: dict, ts: float) -> None:
            for entry in record.get("cardinalities") or []:
                if (isinstance(entry, (list, tuple)) and len(entry) == 3
                        and isinstance(entry[0], str)
                        and isinstance(entry[1], str)
                        and isinstance(entry[2], int)
                        and not isinstance(entry[2], bool)):
                    key = (entry[0], entry[1])
                    known = cardinalities.get(key)
                    if known is None or ts >= known[0]:
                        cardinalities[key] = (ts, entry[2])
                else:
                    self._count("records_skipped_corrupt")
            observed = record.get("observed_latency")
            if isinstance(observed, dict):
                for driver, ema in observed.items():
                    if isinstance(driver, str) and _is_number(ema) \
                            and ema >= 0.0:
                        known = latencies.get(driver)
                        if known is None or ts >= known[0]:
                            latencies[driver] = (ts, float(ema))
                    else:
                        self._count("records_skipped_corrupt")

        def absorb(record: dict) -> None:
            kind = record.get("kind")
            ts = record.get("ts")
            if not _is_number(ts):
                self._count("records_skipped_corrupt")
                return
            ts = float(ts)
            if kind == "feedback":
                state = record.get("obs")
                if not _valid_observation_state(state):
                    self._count("records_skipped_corrupt")
                    return
                try:
                    key = _decode_value(record.get("key"))
                except (ValueError, TypeError):
                    self._count("records_skipped_corrupt")
                    return
                merge_feedback(key, state, ts)
            elif kind == "statistics":
                merge_statistics(record, ts)
            else:
                self._count("records_skipped_corrupt")

        # 1. the snapshot (if any, and only if its versions check out)
        snapshot = self._read_snapshot()
        if snapshot is not None:
            self._snapshot_ts = float(snapshot["ts"]) \
                if _is_number(snapshot.get("ts")) else None
            for entry in snapshot.get("feedback") or []:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 3
                        and _is_number(entry[2])):
                    self._count("records_skipped_corrupt")
                    continue
                encoded_key, state, ts = entry
                if not _valid_observation_state(state):
                    self._count("records_skipped_corrupt")
                    continue
                try:
                    key = _decode_value(encoded_key)
                except (ValueError, TypeError):
                    self._count("records_skipped_corrupt")
                    continue
                merge_feedback(key, state, float(ts))
                self._count("records_loaded")
            statistics = snapshot.get("statistics")
            if isinstance(statistics, dict):
                stats_ts = statistics.get("ts")
                merge_statistics(statistics,
                                 float(stats_ts) if _is_number(stats_ts)
                                 else (self._snapshot_ts or 0.0))

        # 2. every journal in the directory, own and siblings alike
        for path in self._journal_paths():
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._count("io_errors")
                continue
            records, skipped = read_journal(data)
            if skipped:
                self._count("skipped_bytes", skipped)
                self._count("records_skipped_corrupt")
            if not records:
                continue
            header = records[0]
            if header.get("kind") != "header" or not self._version_ok(header):
                self._count("journals_skipped_version")
                continue
            self._count("journals_merged")
            for record in records[1:]:
                self._count("records_loaded")
                absorb(record)

        # 3. staleness: expire past MAX_AGE, decay runs by half-life
        entries: List[Tuple[float, Tuple, dict]] = []
        for key, (ts, state) in feedback.items():
            age = max(0.0, now - ts)
            if age > self.max_age:
                self._count("records_expired")
                continue
            if age > 0.0 and self.half_life > 0.0:
                decayed = int(round(state["runs"] * 0.5 ** (age / self.half_life)))
                state = dict(state)
                state["runs"] = max(1, decayed)
            entries.append((ts, key, state))
        entries.sort(key=lambda item: item[0])

        observed_latency: Dict[str, float] = {}
        survived_cardinalities: List[List[object]] = []
        for driver, (ts, ema) in sorted(latencies.items()):
            if now - ts > self.max_age:
                self._count("records_expired")
                continue
            observed_latency[driver] = ema
        for (driver, collection), (ts, rows) in sorted(cardinalities.items()):
            if now - ts > self.max_age:
                self._count("records_expired")
                continue
            survived_cardinalities.append([driver, collection, rows])

        state = PlanStoreState(
            feedback=[(key, obs, ts) for ts, key, obs in entries],
            statistics={"cardinalities": survived_cardinalities,
                        "observed_latency": observed_latency})
        self._count("entries_loaded",
                    len(state.feedback) + len(observed_latency)
                    + len(survived_cardinalities))
        return state

    def _read_snapshot(self) -> Optional[dict]:
        """The snapshot record, or ``None`` if absent/corrupt/wrong-version."""
        try:
            with open(self.snapshot_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            self._count("io_errors")
            return None
        record, _offset = decode_record(data)
        if record is None:
            self._count("records_skipped_corrupt")
            return None
        if record.get("kind") != "snapshot" or not self._version_ok(record):
            self._count("journals_skipped_version")
            return None
        self._count("snapshot_loaded")
        return record

    # -- appending -------------------------------------------------------------

    def append_feedback(self, fingerprint: Tuple, state: dict,
                        ts: Optional[float] = None) -> bool:
        """Journal one folded observation (write-through from the ledger).

        Returns whether the record reached the journal; an unpersistable
        fingerprint or a failing disk degrades to ``False`` and a book
        entry, never an exception — persistence must not break execution.
        """
        try:
            key = _encode_value(fingerprint)
        except PlanStoreError:
            self._count("unpersistable")
            return False
        record = {"kind": "feedback", "ts": self.clock() if ts is None else ts,
                  "key": key, "obs": state}
        written = self._append(record)
        if written:
            self._maybe_piggyback_statistics()
            self._maybe_compact()
        return written

    def append_statistics(self, state: dict,
                          ts: Optional[float] = None) -> bool:
        """Journal one statistics-registry snapshot (EMAs + cardinalities)."""
        record = {"kind": "statistics",
                  "ts": self.clock() if ts is None else ts,
                  "cardinalities": [
                      [driver, collection, rows]
                      for driver, collection, rows
                      in state.get("cardinalities") or []],
                  "observed_latency": dict(state.get("observed_latency") or {})}
        written = self._append(record)
        if written:
            with self._lock:
                self._last_stats_append = self.clock()
        return written

    def _maybe_piggyback_statistics(self) -> None:
        provider = self.state_provider
        if provider is None:
            return
        with self._lock:
            due = (self.clock() - self._last_stats_append
                   >= self.stats_interval)
        if not due:
            return
        try:
            _feedback, statistics = provider()
        except Exception:
            return
        self.append_statistics(statistics)

    def _append(self, record: dict) -> bool:
        """Append one framed record to the own journal; never raises.

        A failed write attempts to truncate back to the pre-write offset
        (so the journal tail stays parseable for the next loader); if even
        that fails — or failures repeat — the writer disables itself and
        every later append is counted, not attempted.
        """
        try:
            frame = encode_record(record)
        except PlanStoreError:
            self._count("unpersistable")
            return False
        with self._lock:
            if self._closed or self._writer_disabled:
                self._books["append_failures"] += 1
                return False
            try:
                handle = self._ensure_writer_locked()
                offset = self._journal_bytes
                handle.write(frame)
                handle.flush()
                if self.durability == "fsync":
                    os.fsync(handle.fileno())
                self._journal_bytes = offset + len(frame)
                self._books["records_appended"] += 1
                self._writer_failures = 0
                return True
            except (OSError, ValueError):
                self._books["append_failures"] += 1
                self._writer_failures += 1
                self._repair_or_disable_locked()
                return False

    def _ensure_writer_locked(self):
        if self._file is None:
            os.makedirs(self.path, exist_ok=True)
            self._file = self.opener(self.journal_path, "ab")
            self._journal_bytes = self._file.tell() if hasattr(
                self._file, "tell") else 0
            if self._journal_bytes == 0:
                header = encode_record(self._header_record())
                self._file.write(header)
                self._file.flush()
                self._journal_bytes = len(header)
        return self._file

    def _repair_or_disable_locked(self) -> None:
        """After a torn write: truncate back to the last good offset, or
        stop writing altogether — a journal we cannot keep well-formed
        must not keep growing garbage."""
        try:
            self._file.flush()
        except Exception:
            pass
        try:
            self._file.truncate(self._journal_bytes)
        except (OSError, AttributeError, TypeError, ValueError):
            self._writer_disabled = True
            try:
                self._file.close()
            except Exception:
                pass
            self._file = None
            return
        if self._writer_failures >= self.MAX_APPEND_FAILURES:
            self._writer_disabled = True
            try:
                self._file.close()
            except Exception:
                pass
            self._file = None

    # -- flush / compaction ----------------------------------------------------

    def flush(self, statistics: Optional[dict] = None) -> None:
        """Durably flush the journal, appending fresh statistics first.

        With no explicit ``statistics`` the ``state_provider`` (when set)
        supplies them — this is the periodic/shutdown flush the engine and
        the server drain call.
        """
        if statistics is None and self.state_provider is not None:
            try:
                _feedback, statistics = self.state_provider()
            except Exception:
                statistics = None
        if statistics is not None:
            self.append_statistics(statistics)
        with self._lock:
            self._books["flushes"] += 1
            if self._file is not None:
                try:
                    self._file.flush()
                    os.fsync(self._file.fileno())
                except (OSError, ValueError):
                    self._books["io_errors"] += 1

    def _maybe_compact(self) -> None:
        if self.compact_bytes and self._journal_bytes >= self.compact_bytes \
                and self.state_provider is not None:
            self.compact()

    def compact(self) -> bool:
        """Fold the live state into a fresh snapshot, atomically.

        Write-tmp -> fsync -> ``os.replace`` under a best-effort file
        lock, then truncate the *own* journal back to a bare header
        (its contents now live in the snapshot).  Sibling journals are
        left for their owners — except provably-dead writers' journals
        (rescued and swept immediately) and any others past
        :data:`MAX_AGE`.  Returns whether a snapshot was written; lock
        contention or failures degrade to ``False`` plus a book entry.
        """
        provider = self.state_provider
        if provider is None:
            return False
        try:
            feedback_entries, statistics = provider()
        except Exception:
            self._count("compactions_skipped")
            return False
        with self._lock:
            if self._closed:
                return False
            lock_handle = self._acquire_dir_lock()
            if lock_handle is None:
                self._books["compactions_skipped"] += 1
                return False
            try:
                return self._compact_locked(feedback_entries, statistics)
            finally:
                self._release_dir_lock(lock_handle)

    def _compact_locked(self, feedback_entries, statistics) -> bool:
        now = self.clock()
        encoded_feedback = []
        for entry in feedback_entries:
            key, state, ts = entry
            try:
                encoded_feedback.append(
                    [_encode_value(key), state, ts if ts else now])
            except PlanStoreError:
                self._books["unpersistable"] += 1
        record = self._header_record()
        record["kind"] = "snapshot"
        record["feedback"] = encoded_feedback
        record["statistics"] = {
            "ts": now,
            "cardinalities": [
                [driver, collection, rows] for driver, collection, rows
                in statistics.get("cardinalities") or []],
            "observed_latency": dict(
                statistics.get("observed_latency") or {})}
        tmp_path = (f"{self.snapshot_path}.tmp-{os.getpid()}-"
                    f"{uuid.uuid4().hex[:6]}")
        try:
            frame = encode_record(record)
        except PlanStoreError:
            self._books["compactions_skipped"] += 1
            return False
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.snapshot_path)
            self._fsync_dir()
        except OSError:
            self._books["io_errors"] += 1
            self._books["compactions_skipped"] += 1
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self._snapshot_ts = now
        self._books["compactions"] += 1
        self._reset_journal_locked()
        self._sweep_locked(now)
        return True

    def _reset_journal_locked(self) -> None:
        """Truncate the own journal to a bare header (contents are now in
        the snapshot).  Crash-safe: a crash before the truncate merely
        leaves duplicates, and the timestamped merge is idempotent."""
        if self._file is not None:
            try:
                self._file.close()
            except Exception:
                pass
            self._file = None
        try:
            header = encode_record(self._header_record())
            handle = self.opener(self.journal_path, "wb")
            try:
                handle.write(header)
                handle.flush()
            finally:
                handle.close()
            self._journal_bytes = len(header)
            self._file = self.opener(self.journal_path, "ab")
        except (OSError, ValueError):
            self._books["io_errors"] += 1
            self._writer_disabled = True
            self._file = None

    @staticmethod
    def _journal_pid(path: str) -> Optional[int]:
        """The writer PID baked into a journal filename, or ``None``."""
        name = os.path.basename(path)
        if not (name.startswith(_JOURNAL_PREFIX)
                and name.endswith(_JOURNAL_SUFFIX)):
            return None
        stem = name[len(_JOURNAL_PREFIX):-len(_JOURNAL_SUFFIX)]
        pid_part = stem.split("-", 1)[0]
        try:
            pid = int(pid_part)
        except ValueError:
            return None
        return pid if pid > 0 else None

    @staticmethod
    def _pid_is_dead(pid: int) -> bool:
        """Whether ``pid`` is provably gone (signal-0 probe).

        ``PermissionError`` means the process exists but belongs to someone
        else — alive.  Anything other than a definite ``ProcessLookupError``
        is treated as alive: sweeping is an optimization, and a false
        "alive" merely defers to the age-out.
        """
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (OSError, AttributeError, ValueError):
            return False
        return False

    def _sweep_dead_journal_locked(self, path: str) -> bool:
        """Fold a dead writer's verifiable records into the own journal,
        then remove the orphan.

        Runs under the compaction dir lock, *after* the snapshot was
        written and the own journal reset — so the rescue appends land in a
        fresh journal.  Rescuing before unlinking means a crashed writer's
        post-load observations survive the sweep; the timestamped
        newest-wins merge makes re-appending already-known records
        harmless.  Any read failure leaves the file for the age-out.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._books["io_errors"] += 1
            return False
        records, _skipped = read_journal(data)
        rescued = 0
        if records:
            header = records[0]
            if header.get("kind") == "header" and self._version_ok(header):
                for record in records[1:]:
                    if self._append(record):
                        rescued += 1
        try:
            os.unlink(path)
        except OSError:
            return False
        self._books["journals_swept"] += 1
        self._books["records_rescued"] += rescued
        return True

    def _sweep_locked(self, now: float) -> None:
        """Remove dead siblings' journals and abandoned snapshot temps.

        A sibling journal whose writer PID is provably dead is swept
        immediately (its verifiable records are first folded into the own
        journal — the crashed writer's torn tail no longer lingers for the
        age-out); journals of live or indeterminate writers wait for
        :data:`MAX_AGE` as before.
        """
        own = self.journal_path
        for path in self._journal_paths():
            if path == own:
                continue
            pid = self._journal_pid(path)
            if pid is not None and pid != os.getpid() \
                    and self._pid_is_dead(pid):
                if self._sweep_dead_journal_locked(path):
                    continue
            try:
                if now - os.path.getmtime(path) > self.max_age:
                    os.unlink(path)
            except OSError:
                pass
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            if name.startswith(_SNAPSHOT_NAME + ".tmp-"):
                path = os.path.join(self.path, name)
                try:
                    if now - os.path.getmtime(path) > self.max_age:
                        os.unlink(path)
                except OSError:
                    pass

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- the compaction lock ---------------------------------------------------

    def _acquire_dir_lock(self):
        lock_path = os.path.join(self.path, _LOCK_NAME)
        try:
            os.makedirs(self.path, exist_ok=True)
        except OSError:
            return None
        if fcntl is not None:
            try:
                handle = open(lock_path, "a+b")
            except OSError:
                return None
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
                return ("flock", handle)
            except OSError:
                handle.close()
                return None
        # O_EXCL fallback where flock is unavailable
        excl_path = lock_path + ".excl"
        try:
            fd = os.open(excl_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return None
        os.close(fd)
        return ("excl", excl_path)

    def _release_dir_lock(self, handle) -> None:
        kind, token = handle
        if kind == "flock":
            try:
                fcntl.flock(token.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - teardown race
                pass
            token.close()
        else:
            try:
                os.unlink(token)
            except OSError:  # pragma: no cover - teardown race
                pass

    # -- lifecycle ---------------------------------------------------------------

    def close(self, compact: bool = False) -> None:
        """Flush (optionally compact) and release the journal handle."""
        if compact:
            self.compact()
        self.flush()
        with self._lock:
            self._closed = True
            if self._file is not None:
                try:
                    self._file.close()
                except Exception:
                    pass
                self._file = None

    def __enter__(self) -> "PlanStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
