"""The CPL value model.

Mirrors the type system in :mod:`repro.core.types`: booleans, integers,
floats, strings, the unit value, and the constructors

* :class:`CSet` — sets (duplicate-eliminating, order-insensitive equality),
* :class:`CBag` — bags/multisets (duplicate-preserving, order-insensitive),
* :class:`CList` — lists (duplicate-preserving, order-sensitive),
* :class:`Record` (re-exported from :mod:`repro.core.records`),
* :class:`Variant` — tagged values,
* :class:`Ref` — object identities, used by the ACE driver.

All collection values are immutable and hashable, so nesting them arbitrarily
(sets of records of lists of variants ...) works without special cases, which
is the whole point of the paper's data model.

The module also provides :func:`from_python` / :func:`to_python` conversions
(drivers hand Kleisli plain Python data) and :func:`infer_type`, which computes
the CPL type of a value — used when registering data sources and in tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from . import types as T
from .errors import EvaluationError
from .records import Record, RecordDirectory

__all__ = [
    "CSet",
    "CBag",
    "CList",
    "Record",
    "Variant",
    "Ref",
    "UNIT_VALUE",
    "Unit",
    "from_python",
    "to_python",
    "infer_type",
    "empty_like",
    "singleton_like",
    "union_like",
    "iter_collection",
    "make_collection",
]


class Unit:
    """The single value of type ``unit``."""

    _instance: Optional["Unit"] = None

    def __new__(cls) -> "Unit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unit)

    def __hash__(self) -> int:
        return hash("unit-value")


UNIT_VALUE = Unit()


class CSet:
    """An immutable set value iterating in first-occurrence insertion order.

    Iteration order is deterministic for a given construction order, which
    keeps query results stable across runs — important for tests and for the
    printer.  The first-occurrence order is **load-bearing**: the streaming
    backend's set-kind dedup-as-you-go (``compile._dedup_set_stream``) yields
    elements in production order and relies on the eagerly built set
    iterating identically; changing this order breaks stream/execute parity
    for every set-kind pipeline.
    """

    __slots__ = ("_elements", "_hash")
    kind = "set"

    def __init__(self, elements: Iterable[object] = ()):
        unique: Dict[object, None] = {}
        for element in elements:
            unique.setdefault(element, None)
        self._elements: Tuple[object, ...] = tuple(unique.keys())
        self._hash: Optional[int] = None

    def __iter__(self) -> Iterator[object]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, item: object) -> bool:
        return item in self._elements if len(self._elements) < 16 else item in set(self._elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSet):
            return NotImplemented
        return frozenset(self._elements) == frozenset(other._elements)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._elements))
        return self._hash

    def __repr__(self) -> str:
        return "{%s}" % ", ".join(repr(element) for element in self._elements)

    def union(self, other: "CSet") -> "CSet":
        return CSet(self._elements + tuple(other))

    def map(self, function) -> "CSet":
        return CSet(function(element) for element in self._elements)

    def filter(self, predicate) -> "CSet":
        return CSet(element for element in self._elements if predicate(element))


class CBag:
    """An immutable bag (multiset) value; equality ignores order but keeps counts."""

    __slots__ = ("_elements", "_hash")
    kind = "bag"

    def __init__(self, elements: Iterable[object] = ()):
        self._elements: Tuple[object, ...] = tuple(elements)
        self._hash: Optional[int] = None

    def __iter__(self) -> Iterator[object]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, item: object) -> bool:
        return item in self._elements

    def counts(self) -> Dict[object, int]:
        counts: Dict[object, int] = {}
        for element in self._elements:
            counts[element] = counts.get(element, 0) + 1
        return counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CBag):
            return NotImplemented
        return self.counts() == other.counts()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self.counts().items()))
        return self._hash

    def __repr__(self) -> str:
        return "{|%s|}" % ", ".join(repr(element) for element in self._elements)

    def union(self, other: "CBag") -> "CBag":
        return CBag(self._elements + tuple(other))

    def map(self, function) -> "CBag":
        return CBag(function(element) for element in self._elements)

    def filter(self, predicate) -> "CBag":
        return CBag(element for element in self._elements if predicate(element))


class CList:
    """An immutable list value; equality is order-sensitive."""

    __slots__ = ("_elements", "_hash")
    kind = "list"

    def __init__(self, elements: Iterable[object] = ()):
        self._elements: Tuple[object, ...] = tuple(elements)
        self._hash: Optional[int] = None

    def __iter__(self) -> Iterator[object]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, item: object) -> bool:
        return item in self._elements

    def __getitem__(self, index: int) -> object:
        return self._elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CList):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._elements)
        return self._hash

    def __repr__(self) -> str:
        return "[|%s|]" % ", ".join(repr(element) for element in self._elements)

    def union(self, other: "CList") -> "CList":
        """List 'union' is concatenation (the list monad's plus)."""
        return CList(self._elements + tuple(other))

    def map(self, function) -> "CList":
        return CList(function(element) for element in self._elements)

    def filter(self, predicate) -> "CList":
        return CList(element for element in self._elements if predicate(element))


class Variant:
    """A tagged value ``<tag = value>`` of a variant type."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: str, value: object = UNIT_VALUE):
        self.tag = tag
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variant):
            return NotImplemented
        return self.tag == other.tag and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.tag, self.value))

    def __repr__(self) -> str:
        if isinstance(self.value, Unit):
            return f"<{self.tag}>"
        return f"<{self.tag}={self.value!r}>"


class Ref:
    """An object identity: a (class, identifier) pair optionally resolvable via a store.

    The paper extends CPL with a reference type, a dereferencing operation and
    a reference pattern for sources (like ACE) with object identity; it does
    *not* allow creating or updating references from the language, so ``Ref``
    is immutable and resolution goes through the store it was minted by.
    """

    __slots__ = ("class_name", "identifier", "_store")

    def __init__(self, class_name: str, identifier: object, store: Optional[object] = None):
        self.class_name = class_name
        self.identifier = identifier
        self._store = store

    def deref(self) -> object:
        """Return the value this reference points at."""
        if self._store is None:
            raise EvaluationError(
                f"reference {self} is not attached to a store and cannot be dereferenced"
            )
        return self._store.resolve(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ref):
            return NotImplemented
        return (self.class_name, self.identifier) == (other.class_name, other.identifier)

    def __hash__(self) -> int:
        return hash((self.class_name, self.identifier))

    def __repr__(self) -> str:
        return f"#{self.class_name}:{self.identifier}"


# ---------------------------------------------------------------------------
# Collection polymorphism helpers (used by the NRC evaluator)
# ---------------------------------------------------------------------------

_COLLECTION_CLASSES = {"set": CSet, "bag": CBag, "list": CList}


def empty_like(kind: str):
    """Return the empty collection of the given kind ('set' | 'bag' | 'list')."""
    try:
        return _COLLECTION_CLASSES[kind]()
    except KeyError:
        raise EvaluationError(f"unknown collection kind {kind!r}")


def singleton_like(kind: str, value: object):
    """Return the singleton collection of the given kind containing ``value``."""
    try:
        return _COLLECTION_CLASSES[kind]((value,))
    except KeyError:
        raise EvaluationError(f"unknown collection kind {kind!r}")


def union_like(kind: str, left, right):
    """Union/append two collections of the same kind."""
    cls = _COLLECTION_CLASSES.get(kind)
    if cls is None:
        raise EvaluationError(f"unknown collection kind {kind!r}")
    if not isinstance(left, cls) or not isinstance(right, cls):
        raise EvaluationError(
            f"union of {kind} expects two {cls.__name__} values, "
            f"got {type(left).__name__} and {type(right).__name__}"
        )
    return left.union(right)


def make_collection(kind: str, elements: Iterable[object]):
    """Build a collection of the given kind from ``elements``."""
    cls = _COLLECTION_CLASSES.get(kind)
    if cls is None:
        raise EvaluationError(f"unknown collection kind {kind!r}")
    return cls(elements)


def iter_collection(value) -> Iterator[object]:
    """Iterate any CPL collection value (or raise if it is not a collection)."""
    if isinstance(value, (CSet, CBag, CList)):
        return iter(value)
    raise EvaluationError(f"expected a collection value, got {type(value).__name__}")


def collection_kind(value) -> str:
    """Return 'set', 'bag' or 'list' for a collection value."""
    if isinstance(value, (CSet, CBag, CList)):
        return value.kind
    raise EvaluationError(f"expected a collection value, got {type(value).__name__}")


# ---------------------------------------------------------------------------
# Conversion to and from plain Python data
# ---------------------------------------------------------------------------

def from_python(data: object, list_as: str = "list") -> object:
    """Convert plain Python data into CPL values.

    * ``dict`` → :class:`Record`
    * ``set`` / ``frozenset`` → :class:`CSet`
    * ``list`` / ``tuple`` → list (or the collection named by ``list_as``)
    * 2-tuple ``("<tag>", value)`` is *not* special-cased; build variants explicitly.
    * scalars pass through.

    Drivers use this to lift the data they fetched into the Kleisli data model.
    """
    if isinstance(data, (Record, CSet, CBag, CList, Variant, Ref, Unit)):
        return data
    if isinstance(data, Mapping):
        return Record({key: from_python(value, list_as) for key, value in data.items()})
    if isinstance(data, (set, frozenset)):
        return CSet(from_python(element, list_as) for element in data)
    if isinstance(data, (list, tuple)):
        converted = (from_python(element, list_as) for element in data)
        return make_collection(list_as, converted)
    if data is None:
        return UNIT_VALUE
    if isinstance(data, (bool, int, float, str, bytes)):
        return data
    raise EvaluationError(f"cannot convert {type(data).__name__} into a CPL value")


def to_python(value: object) -> object:
    """Convert a CPL value back into plain Python data (records → dicts, etc.)."""
    if isinstance(value, Record):
        return {label: to_python(field) for label, field in value.items()}
    if isinstance(value, CSet):
        return [to_python(element) for element in value]
    if isinstance(value, (CBag, CList)):
        return [to_python(element) for element in value]
    if isinstance(value, Variant):
        return {"<tag>": value.tag, "<value>": to_python(value.value)}
    if isinstance(value, Ref):
        return {"<ref>": value.class_name, "<id>": value.identifier}
    if isinstance(value, Unit):
        return None
    return value


def infer_type(value: object) -> T.Type:
    """Compute the CPL type of a value.

    Heterogeneous collections unify their element types where possible (open
    records absorb extra fields); an empty collection gets a fresh element
    type variable.
    """
    if isinstance(value, bool):
        return T.BOOL
    if isinstance(value, int):
        return T.INT
    if isinstance(value, float):
        return T.FLOAT
    if isinstance(value, (str, bytes)):
        return T.STRING
    if isinstance(value, Unit):
        return T.UNIT
    if isinstance(value, Record):
        return T.RecordType({label: infer_type(field) for label, field in value.items()})
    if isinstance(value, Variant):
        return T.VariantType({value.tag: infer_type(value.value)}, row=T.fresh_row_var())
    if isinstance(value, Ref):
        return T.RefType(T.fresh_type_var())
    if isinstance(value, (CSet, CBag, CList)):
        element_types = [infer_type(element) for element in value]
        if element_types:
            element = _merge_element_types(element_types)
        else:
            element = T.fresh_type_var()
        constructor = {"set": T.SetType, "bag": T.BagType, "list": T.ListType}[value.kind]
        return constructor(element)
    raise EvaluationError(f"cannot infer a CPL type for {type(value).__name__}")


def _merge_element_types(element_types: List[T.Type]) -> T.Type:
    """Merge element types of a collection, tolerating variant-case differences."""
    merged = element_types[0]
    subst: T.Substitution = {}
    for ty in element_types[1:]:
        try:
            subst = T.unify(merged, ty, subst)
            merged = T.apply_substitution(merged, subst)
        except Exception:
            # Heterogeneous in an irreconcilable way (e.g. different variant
            # tags with closed rows): fall back to a fresh variable rather than
            # failing; drivers dealing with loose external data rely on this.
            return T.fresh_type_var()
    return T.apply_substitution(merged, subst)
