"""The CPL type system.

The paper's type grammar (Section 2) is::

    tau := bool | int | string | ...
         | {tau}            -- set
         | {| tau |}        -- bag (multiset)
         | [| tau |]        -- list
         | [l1: tau1, ..., ln: taun]    -- record
         | <l1: tau1, ..., ln: taun>    -- variant (tagged union)

We add ``float``, ``unit``, function types (CPL allows function definition),
reference types (for object identity, Section 2 "Object Identity"), and type
variables plus *row variables* so that open record patterns written with
``...`` can be given principal types during inference.

Types are immutable, hashable, and compare structurally.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .errors import CPLTypeError

__all__ = [
    "Type",
    "BoolType",
    "IntType",
    "FloatType",
    "StringType",
    "UnitType",
    "SetType",
    "BagType",
    "ListType",
    "RecordType",
    "VariantType",
    "FunctionType",
    "RefType",
    "TypeVar",
    "RowVar",
    "BOOL",
    "INT",
    "FLOAT",
    "STRING",
    "UNIT",
    "fresh_type_var",
    "fresh_row_var",
    "unify",
    "Substitution",
    "apply_substitution",
    "free_type_vars",
    "parse_type",
]


class Type:
    """Base class for all CPL types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class _BaseType(Type):
    """A built-in scalar type, identified by its name."""

    name = "base"

    def __str__(self) -> str:
        return self.name

    def _key(self) -> Tuple:
        return (self.name,)


class BoolType(_BaseType):
    name = "bool"


class IntType(_BaseType):
    name = "int"


class FloatType(_BaseType):
    name = "float"


class StringType(_BaseType):
    name = "string"


class UnitType(_BaseType):
    name = "unit"


BOOL = BoolType()
INT = IntType()
FLOAT = FloatType()
STRING = StringType()
UNIT = UnitType()


class SetType(Type):
    """``{tau}`` — a set of elements of type ``element``."""

    def __init__(self, element: Type):
        self.element = element

    def __str__(self) -> str:
        return "{%s}" % self.element

    def _key(self) -> Tuple:
        return (self.element,)


class BagType(Type):
    """``{| tau |}`` — a bag (multiset) of elements of type ``element``."""

    def __init__(self, element: Type):
        self.element = element

    def __str__(self) -> str:
        return "{|%s|}" % self.element

    def _key(self) -> Tuple:
        return (self.element,)


class ListType(Type):
    """``[| tau |]`` — a list of elements of type ``element``."""

    def __init__(self, element: Type):
        self.element = element

    def __str__(self) -> str:
        return "[|%s|]" % self.element

    def _key(self) -> Tuple:
        return (self.element,)


COLLECTION_TYPES = (SetType, BagType, ListType)


class RecordType(Type):
    """``[l1: tau1, ..., ln: taun]`` with an optional row variable.

    ``row`` is ``None`` for a *closed* record type; a :class:`RowVar` means the
    record is known to have *at least* these fields (it arose from an open
    pattern such as ``[name = \\n, ...]``).
    """

    def __init__(self, fields: Mapping[str, Type], row: Optional["RowVar"] = None):
        self.fields: Dict[str, Type] = dict(sorted(fields.items()))
        self.row = row

    def __str__(self) -> str:
        inner = ", ".join(f"{label}: {ty}" for label, ty in self.fields.items())
        if self.row is not None:
            inner = f"{inner}, ..." if inner else "..."
        return f"[{inner}]"

    def _key(self) -> Tuple:
        return (tuple(self.fields.items()), self.row)

    @property
    def is_open(self) -> bool:
        return self.row is not None

    def field(self, label: str) -> Type:
        try:
            return self.fields[label]
        except KeyError:
            raise CPLTypeError(f"record type {self} has no field {label!r}")


class VariantType(Type):
    """``<l1: tau1, ..., ln: taun>`` with an optional row variable for open variants."""

    def __init__(self, cases: Mapping[str, Type], row: Optional["RowVar"] = None):
        self.cases: Dict[str, Type] = dict(sorted(cases.items()))
        self.row = row

    def __str__(self) -> str:
        inner = ", ".join(f"{label}: {ty}" for label, ty in self.cases.items())
        if self.row is not None:
            inner = f"{inner}, ..." if inner else "..."
        return f"<{inner}>"

    def _key(self) -> Tuple:
        return (tuple(self.cases.items()), self.row)

    @property
    def is_open(self) -> bool:
        return self.row is not None

    def case(self, label: str) -> Type:
        try:
            return self.cases[label]
        except KeyError:
            raise CPLTypeError(f"variant type {self} has no case {label!r}")


class FunctionType(Type):
    """``tau1 -> tau2``."""

    def __init__(self, argument: Type, result: Type):
        self.argument = argument
        self.result = result

    def __str__(self) -> str:
        return f"({self.argument} -> {self.result})"

    def _key(self) -> Tuple:
        return (self.argument, self.result)


class RefType(Type):
    """``ref tau`` — a reference (object identity) to a value of type ``target``."""

    def __init__(self, target: Type):
        self.target = target

    def __str__(self) -> str:
        return f"ref {self.target}"

    def _key(self) -> Tuple:
        return (self.target,)


class TypeVar(Type):
    """A unification variable standing for an unknown type."""

    def __init__(self, name: str):
        self.name = name

    def __str__(self) -> str:
        return f"'{self.name}"

    def _key(self) -> Tuple:
        return (self.name,)


class RowVar:
    """A row variable standing for "the rest of the fields" of an open record/variant."""

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("row", self.name))

    def __repr__(self) -> str:
        return f"...{self.name}"


_type_var_counter = itertools.count(1)
_row_var_counter = itertools.count(1)


def fresh_type_var(prefix: str = "t") -> TypeVar:
    """Return a fresh, globally unique type variable."""
    return TypeVar(f"{prefix}{next(_type_var_counter)}")


def fresh_row_var(prefix: str = "r") -> RowVar:
    """Return a fresh, globally unique row variable."""
    return RowVar(f"{prefix}{next(_row_var_counter)}")


# ---------------------------------------------------------------------------
# Substitutions and unification
# ---------------------------------------------------------------------------

Substitution = Dict[object, object]
"""Maps :class:`TypeVar` -> :class:`Type` and :class:`RowVar` -> (fields, RowVar|None)."""


def apply_substitution(ty: Type, subst: Substitution) -> Type:
    """Apply ``subst`` to ``ty``, returning a new type."""
    if isinstance(ty, TypeVar):
        replacement = subst.get(ty)
        if replacement is None:
            return ty
        return apply_substitution(replacement, subst)
    if isinstance(ty, _BaseType):
        return ty
    if isinstance(ty, SetType):
        return SetType(apply_substitution(ty.element, subst))
    if isinstance(ty, BagType):
        return BagType(apply_substitution(ty.element, subst))
    if isinstance(ty, ListType):
        return ListType(apply_substitution(ty.element, subst))
    if isinstance(ty, RefType):
        return RefType(apply_substitution(ty.target, subst))
    if isinstance(ty, FunctionType):
        return FunctionType(
            apply_substitution(ty.argument, subst),
            apply_substitution(ty.result, subst),
        )
    if isinstance(ty, RecordType):
        fields = {label: apply_substitution(t, subst) for label, t in ty.fields.items()}
        row = ty.row
        while row is not None and row in subst:
            extra_fields, row = subst[row]
            for label, t in extra_fields.items():
                fields[label] = apply_substitution(t, subst)
        return RecordType(fields, row)
    if isinstance(ty, VariantType):
        cases = {label: apply_substitution(t, subst) for label, t in ty.cases.items()}
        row = ty.row
        while row is not None and row in subst:
            extra_cases, row = subst[row]
            for label, t in extra_cases.items():
                cases[label] = apply_substitution(t, subst)
        return VariantType(cases, row)
    raise CPLTypeError(f"cannot apply substitution to {ty!r}")


def free_type_vars(ty: Type) -> set:
    """Return the set of type variables and row variables occurring in ``ty``."""
    result: set = set()
    _collect_free_vars(ty, result)
    return result


def _collect_free_vars(ty: Type, acc: set) -> None:
    if isinstance(ty, TypeVar):
        acc.add(ty)
    elif isinstance(ty, (SetType, BagType, ListType)):
        _collect_free_vars(ty.element, acc)
    elif isinstance(ty, RefType):
        _collect_free_vars(ty.target, acc)
    elif isinstance(ty, FunctionType):
        _collect_free_vars(ty.argument, acc)
        _collect_free_vars(ty.result, acc)
    elif isinstance(ty, RecordType):
        for t in ty.fields.values():
            _collect_free_vars(t, acc)
        if ty.row is not None:
            acc.add(ty.row)
    elif isinstance(ty, VariantType):
        for t in ty.cases.values():
            _collect_free_vars(t, acc)
        if ty.row is not None:
            acc.add(ty.row)


def _occurs(var: TypeVar, ty: Type, subst: Substitution) -> bool:
    ty = apply_substitution(ty, subst)
    return var in free_type_vars(ty)


def unify(left: Type, right: Type, subst: Optional[Substitution] = None) -> Substitution:
    """Unify ``left`` and ``right`` under ``subst``; return the extended substitution.

    Raises :class:`CPLTypeError` when the types cannot be made equal.  Open
    records/variants unify with closed ones by binding the row variable to the
    missing fields, which is what gives ``...`` patterns their flexibility.
    """
    if subst is None:
        subst = {}
    left = apply_substitution(left, subst)
    right = apply_substitution(right, subst)

    if isinstance(left, TypeVar):
        return _bind_type_var(left, right, subst)
    if isinstance(right, TypeVar):
        return _bind_type_var(right, left, subst)

    if isinstance(left, _BaseType) and isinstance(right, _BaseType):
        if left.name != right.name:
            raise CPLTypeError(f"cannot unify {left} with {right}")
        return subst

    for collection in (SetType, BagType, ListType):
        if isinstance(left, collection) and isinstance(right, collection):
            return unify(left.element, right.element, subst)

    if isinstance(left, RefType) and isinstance(right, RefType):
        return unify(left.target, right.target, subst)

    if isinstance(left, FunctionType) and isinstance(right, FunctionType):
        subst = unify(left.argument, right.argument, subst)
        return unify(left.result, right.result, subst)

    if isinstance(left, RecordType) and isinstance(right, RecordType):
        return _unify_rows(left, right, subst, kind="record")

    if isinstance(left, VariantType) and isinstance(right, VariantType):
        return _unify_rows(left, right, subst, kind="variant")

    raise CPLTypeError(f"cannot unify {left} with {right}")


def _bind_type_var(var: TypeVar, ty: Type, subst: Substitution) -> Substitution:
    if isinstance(ty, TypeVar) and ty == var:
        return subst
    if _occurs(var, ty, subst):
        raise CPLTypeError(f"occurs check failed: {var} in {ty}")
    new_subst = dict(subst)
    new_subst[var] = ty
    return new_subst


def _unify_rows(left, right, subst: Substitution, kind: str) -> Substitution:
    # Resolve the current row bindings first so repeated unifications compose.
    left = apply_substitution(left, subst)
    right = apply_substitution(right, subst)
    left_fields = left.fields if kind == "record" else left.cases
    right_fields = right.fields if kind == "record" else right.cases
    shared = set(left_fields) & set(right_fields)
    only_left = {k: v for k, v in left_fields.items() if k not in shared}
    only_right = {k: v for k, v in right_fields.items() if k not in shared}

    for label in shared:
        subst = unify(left_fields[label], right_fields[label], subst)

    left_row = left.row
    right_row = right.row

    # Fields present on one side only must be absorbed by the other side's row.
    if only_right and left_row is None:
        raise CPLTypeError(
            f"cannot unify {left} with {right}: missing {sorted(only_right)}"
        )
    if only_left and right_row is None:
        raise CPLTypeError(
            f"cannot unify {left} with {right}: missing {sorted(only_left)}"
        )

    if left_row is None and right_row is None:
        return subst
    if left_row is not None and right_row is None:
        return _bind_row(left_row, only_right, None, subst)
    if right_row is not None and left_row is None:
        return _bind_row(right_row, only_left, None, subst)

    # Both sides are open.  The same row variable on both sides is fine only
    # when neither side has fields the other lacks.
    if left_row == right_row:
        if only_left or only_right:
            raise CPLTypeError(f"cannot unify {left} with {right}: row occurs twice")
        return subst
    # Different row variables: introduce one fresh tail shared by both, so the
    # substitution stays acyclic (binding them to each other directly would
    # create a loop that apply_substitution could never resolve).
    fresh = fresh_row_var()
    subst = _bind_row(left_row, only_right, fresh, subst)
    return _bind_row(right_row, only_left, fresh, subst)


def _bind_row(row: RowVar, fields: Dict[str, Type], rest, subst: Substitution) -> Substitution:
    if rest is not None and rest == row:
        rest = None
    if row in subst:
        existing_fields, existing_rest = subst[row]
        merged = dict(existing_fields)
        for label, ty in fields.items():
            if label in merged:
                subst = unify(merged[label], ty, subst)
            else:
                merged[label] = ty
        new_subst = dict(subst)
        new_subst[row] = (merged, existing_rest if existing_rest is not None else rest)
        return new_subst
    new_subst = dict(subst)
    new_subst[row] = (dict(fields), rest)
    return new_subst


# ---------------------------------------------------------------------------
# A small concrete syntax for types (used by drivers and tests)
# ---------------------------------------------------------------------------

def parse_type(text: str) -> Type:
    """Parse the paper's type notation.

    Examples::

        parse_type("{[title: string, year: int]}")
        parse_type("<uncontrolled: string, controlled: <medline-jta: string>>")
        parse_type("[|int|]")
    """
    parser = _TypeParser(text)
    ty = parser.parse_type()
    parser.expect_end()
    return ty


class _TypeParser:
    """Hand-written recursive-descent parser for the type notation."""

    _BASE = {
        "bool": BOOL,
        "int": INT,
        "float": FLOAT,
        "real": FLOAT,
        "string": STRING,
        "unit": UNIT,
    }

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self, n: int = 1) -> str:
        self._skip_ws()
        return self.text[self.pos:self.pos + n]

    def _consume(self, token: str) -> None:
        self._skip_ws()
        if not self.text.startswith(token, self.pos):
            raise CPLTypeError(
                f"expected {token!r} at position {self.pos} in type {self.text!r}"
            )
        self.pos += len(token)

    def _try(self, token: str) -> bool:
        self._skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect_end(self) -> None:
        self._skip_ws()
        if self.pos != len(self.text):
            raise CPLTypeError(
                f"unexpected trailing text {self.text[self.pos:]!r} in type"
            )

    def parse_type(self) -> Type:
        self._skip_ws()
        if self._try("{|"):
            element = self.parse_type()
            self._consume("|}")
            return BagType(element)
        if self._try("{"):
            element = self.parse_type()
            self._consume("}")
            return SetType(element)
        if self._try("[|"):
            element = self.parse_type()
            self._consume("|]")
            return ListType(element)
        if self._try("["):
            return self._parse_fields("]", RecordType)
        if self._try("<"):
            return self._parse_fields(">", VariantType)
        if self._try("ref "):
            return RefType(self.parse_type())
        return self._parse_base()

    def _parse_fields(self, closer: str, constructor) -> Type:
        fields: Dict[str, Type] = {}
        row: Optional[RowVar] = None
        if self._try(closer):
            return constructor(fields)
        while True:
            if self._try("..."):
                row = fresh_row_var()
                break
            label = self._parse_label()
            self._consume(":")
            fields[label] = self.parse_type()
            if not self._try(","):
                break
        self._consume(closer)
        return constructor(fields, row)

    def _parse_label(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        if start == self.pos:
            raise CPLTypeError(f"expected a label at position {start} in type {self.text!r}")
        return self.text[start:self.pos]

    def _parse_base(self) -> Type:
        name = self._parse_label()
        try:
            return self._BASE[name]
        except KeyError:
            raise CPLTypeError(f"unknown base type {name!r}")


def record_of(**fields: Type) -> RecordType:
    """Convenience constructor: ``record_of(name=STRING, year=INT)``."""
    return RecordType(fields)


def variant_of(**cases: Type) -> VariantType:
    """Convenience constructor: ``variant_of(uncontrolled=STRING)``."""
    return VariantType(cases)


def common_element_type(types: Iterable[Type]) -> Type:
    """Return the unified element type of an iterable of types (used for literals)."""
    result: Optional[Type] = None
    subst: Substitution = {}
    for ty in types:
        if result is None:
            result = ty
        else:
            subst = unify(result, ty, subst)
            result = apply_substitution(result, subst)
    if result is None:
        return fresh_type_var()
    return result
