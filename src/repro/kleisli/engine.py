"""The Kleisli engine: drivers + optimizer + evaluator.

"CPL is implemented on top of an extensible query system called Kleisli ...
Routines within Kleisli manage optimization, query evaluation, and I/O from
remote and local data sources."  The engine is that middle layer:

* a **driver registry** — drivers are registered by name, contribute CPL
  functions and statistics, and are reached at run time through
  :meth:`driver_executor`, the callback every :class:`~repro.core.nrc.ast.Scan`
  node evaluates through;
* the **optimizer pipeline** (rebuilt whenever registration changes);
* the **evaluator context** — subquery cache, execution statistics;
* ``execute`` / ``stream`` — eager evaluation and the pipelined variant that
  yields results as the outermost generator produces them (fast first
  response).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import DriverNotRegisteredError
from ..core.nrc import ast as A
from ..core.nrc.eval import Environment, EvalContext, EvalStatistics, Evaluator
from ..core.nrc.rewrite import RewriteStats
from ..core.optimizer import OptimizerConfig, OptimizerPipeline, ScanSpec
from ..core.values import iter_collection
from .cache import SubqueryCache
from .drivers.base import Driver, DriverFunction
from .statistics import SourceStatisticsRegistry

__all__ = ["KleisliEngine"]


class KleisliEngine:
    """Driver registry, optimizer and evaluator in one object."""

    def __init__(self, optimizer_config: Optional[OptimizerConfig] = None):
        self.drivers: Dict[str, Driver] = {}
        self.driver_functions: Dict[str, Tuple[Driver, DriverFunction]] = {}
        self.statistics_registry = SourceStatisticsRegistry()
        self.cache = SubqueryCache()
        self.optimizer_config = optimizer_config or OptimizerConfig()
        self.optimizer = self._build_optimizer()
        self.last_eval_statistics: Optional[EvalStatistics] = None
        self.last_rewrite_stats: Optional[RewriteStats] = None

    # -- driver registration ---------------------------------------------------------

    def register_driver(self, driver: Driver, latency: Optional[float] = None) -> Driver:
        """Register a driver; its CPL functions and statistics become available.

        ``latency`` (seconds) marks the driver as remote in the statistics
        registry, which is what the parallelism rules key on.
        """
        self.drivers[driver.name] = driver
        driver.open()
        for function in driver.cpl_functions():
            self.driver_functions[function.name] = (driver, function)
        for collection in driver.collection_names():
            cardinality = driver.cardinality(collection)
            if cardinality is not None:
                self.statistics_registry.register_cardinality(driver.name, collection, cardinality)
        if latency is not None:
            self.statistics_registry.register_latency(driver.name, latency)
        elif getattr(driver, "remote", None) is not None:
            self.statistics_registry.register_latency(driver.name, driver.remote.latency)
        self.optimizer = self._build_optimizer()
        return driver

    def unregister_driver(self, name: str) -> None:
        driver = self.drivers.pop(name, None)
        if driver is None:
            raise DriverNotRegisteredError(name)
        driver.close()
        self.driver_functions = {
            fname: (drv, fn) for fname, (drv, fn) in self.driver_functions.items()
            if drv.name != name
        }
        self.optimizer = self._build_optimizer()

    def driver(self, name: str) -> Driver:
        try:
            return self.drivers[name]
        except KeyError:
            raise DriverNotRegisteredError(name)

    # -- optimizer wiring ---------------------------------------------------------------

    def _build_optimizer(self) -> OptimizerPipeline:
        registry = {
            fname: ScanSpec(driver.name, function.request_template,
                            function.argument_key, function.argument_is_record,
                            function.result_kind)
            for fname, (driver, function) in self.driver_functions.items()
        }
        capabilities = {name: driver.capabilities for name, driver in self.drivers.items()}
        return OptimizerPipeline(
            function_registry=registry,
            capabilities=capabilities,
            cardinality_of=self._estimate_cardinality,
            is_remote_driver=self.statistics_registry.is_remote,
            config=self.optimizer_config,
        )

    def _estimate_cardinality(self, source: A.Expr) -> int:
        """Estimate the size of a generator source for the join rule set."""
        if isinstance(source, A.Cached):
            return self._estimate_cardinality(source.expr)
        if isinstance(source, A.Scan):
            collection = str(source.request.get("table")
                             or source.request.get("class")
                             or source.request.get("db")
                             or "")
            return self.statistics_registry.cardinality(source.driver, collection)
        if isinstance(source, A.Const):
            try:
                return len(list(iter_collection(source.value)))
            except Exception:
                return SourceStatisticsRegistry.DEFAULT_CARDINALITY
        return SourceStatisticsRegistry.DEFAULT_CARDINALITY

    # -- compilation and execution ----------------------------------------------------------

    def compile(self, expr: A.Expr, collect_stats: bool = True) -> A.Expr:
        """Optimize an NRC expression with the current rule sets."""
        stats = RewriteStats() if collect_stats else None
        optimized = self.optimizer.optimize(expr, stats)
        self.last_rewrite_stats = stats
        return optimized

    def driver_executor(self, driver_name: str, request: Mapping[str, object]):
        """The Scan callback: route a request to the named driver."""
        return self.driver(driver_name).execute(request)

    def _make_context(self) -> EvalContext:
        statistics = EvalStatistics()
        self.last_eval_statistics = statistics
        return EvalContext(driver_executor=self.driver_executor,
                           statistics=statistics, cache=self.cache)

    def execute(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
                optimize: bool = True):
        """Optimize (optionally) and evaluate an NRC expression."""
        if optimize:
            expr = self.compile(expr)
        evaluator = Evaluator(self._make_context())
        return evaluator.evaluate(expr, Environment(dict(bindings or {})))

    def stream(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
               optimize: bool = True) -> Iterator[object]:
        """Pipelined evaluation of a top-level comprehension.

        When the (optimized) expression is an ``Ext`` whose source is a driver
        scan, results are yielded as each source element is consumed — the
        "laziness in strategic places" of Section 4, used to get initial output
        to the user quickly.  Other shapes fall back to eager evaluation.
        """
        if optimize:
            expr = self.compile(expr)
        evaluator = Evaluator(self._make_context())
        environment = Environment(dict(bindings or {}))
        if type(expr) is A.Ext:
            source = evaluator._eval(expr.source, environment)
            for item in evaluator._iterate_source(source):
                body_value = evaluator._eval(expr.body, environment.child(expr.var, item))
                for element in iter_collection(evaluator._materialise(body_value)):
                    yield element
            return
        result = evaluator.evaluate(expr, environment)
        try:
            yield from iter_collection(result)
        except Exception:
            yield result
