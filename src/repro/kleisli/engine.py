"""The Kleisli engine: drivers + optimizer + evaluator.

"CPL is implemented on top of an extensible query system called Kleisli ...
Routines within Kleisli manage optimization, query evaluation, and I/O from
remote and local data sources."  The engine is that middle layer:

* a **driver registry** — drivers are registered by name, contribute CPL
  functions and statistics, and are reached at run time through
  :meth:`driver_executor`, the callback every :class:`~repro.core.nrc.ast.Scan`
  node evaluates through;
* the **optimizer pipeline** (rebuilt whenever registration changes);
* the **evaluator context** — subquery cache, execution statistics;
* ``execute`` / ``stream`` — eager evaluation and the pipelined variant that
  yields results as the outermost generator produces them (fast first
  response).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.errors import DriverNotRegisteredError
from ..core.nrc import ast as A
from ..core.nrc.compile import (
    CompiledQuery,
    ExecutionMode,
    compile_term,
    term_fingerprint,
)
from ..core.nrc.eval import (
    Environment,
    EvalContext,
    EvalStatistics,
    Evaluator,
    close_source,
    iterate_source,
    materialise,
)
from ..core.nrc.rewrite import RewriteStats
from ..core.optimizer import OptimizerConfig, OptimizerPipeline, ScanSpec
from ..core.values import iter_collection
from .cache import SubqueryCache
from .drivers.base import Driver, DriverFunction
from .statistics import SourceStatisticsRegistry

__all__ = ["KleisliEngine", "ExecutionMode"]

#: How many compiled queries the engine keeps; evicted wholesale when full.
_COMPILED_CACHE_LIMIT = 128


class KleisliEngine:
    """Driver registry, optimizer and evaluator in one object."""

    def __init__(self, optimizer_config: Optional[OptimizerConfig] = None,
                 execution_mode: object = ExecutionMode.COMPILED):
        self.drivers: Dict[str, Driver] = {}
        self.driver_functions: Dict[str, Tuple[Driver, DriverFunction]] = {}
        self.statistics_registry = SourceStatisticsRegistry()
        self.cache = SubqueryCache()
        self.optimizer_config = optimizer_config or OptimizerConfig()
        self.optimizer = self._build_optimizer()
        self.execution_mode = ExecutionMode.coerce(execution_mode)
        self.last_eval_statistics: Optional[EvalStatistics] = None
        self.last_rewrite_stats: Optional[RewriteStats] = None
        self._compiled_queries: Dict[Tuple, CompiledQuery] = {}

    # -- driver registration ---------------------------------------------------------

    def register_driver(self, driver: Driver, latency: Optional[float] = None) -> Driver:
        """Register a driver; its CPL functions and statistics become available.

        ``latency`` (seconds) marks the driver as remote in the statistics
        registry, which is what the parallelism rules key on.
        """
        self.drivers[driver.name] = driver
        driver.open()
        for function in driver.cpl_functions():
            self.driver_functions[function.name] = (driver, function)
        for collection in driver.collection_names():
            cardinality = driver.cardinality(collection)
            if cardinality is not None:
                self.statistics_registry.register_cardinality(driver.name, collection, cardinality)
        if latency is not None:
            self.statistics_registry.register_latency(driver.name, latency)
        elif getattr(driver, "remote", None) is not None:
            self.statistics_registry.register_latency(driver.name, driver.remote.latency)
        self.optimizer = self._build_optimizer()
        return driver

    def unregister_driver(self, name: str) -> None:
        driver = self.drivers.pop(name, None)
        if driver is None:
            raise DriverNotRegisteredError(name)
        driver.close()
        self.driver_functions = {
            fname: (drv, fn) for fname, (drv, fn) in self.driver_functions.items()
            if drv.name != name
        }
        self.optimizer = self._build_optimizer()

    def driver(self, name: str) -> Driver:
        try:
            return self.drivers[name]
        except KeyError:
            raise DriverNotRegisteredError(name)

    # -- optimizer wiring ---------------------------------------------------------------

    def _build_optimizer(self) -> OptimizerPipeline:
        registry = {
            fname: ScanSpec(driver.name, function.request_template,
                            function.argument_key, function.argument_is_record,
                            function.result_kind)
            for fname, (driver, function) in self.driver_functions.items()
        }
        capabilities = {name: driver.capabilities for name, driver in self.drivers.items()}
        return OptimizerPipeline(
            function_registry=registry,
            capabilities=capabilities,
            cardinality_of=self._estimate_cardinality,
            is_remote_driver=self.statistics_registry.is_remote,
            config=self.optimizer_config,
        )

    def _estimate_cardinality(self, source: A.Expr) -> int:
        """Estimate the size of a generator source for the join rule set."""
        if isinstance(source, A.Cached):
            return self._estimate_cardinality(source.expr)
        if isinstance(source, A.Scan):
            collection = str(source.request.get("table")
                             or source.request.get("class")
                             or source.request.get("db")
                             or "")
            return self.statistics_registry.cardinality(source.driver, collection)
        if isinstance(source, A.Const):
            try:
                return len(list(iter_collection(source.value)))
            except Exception:
                return SourceStatisticsRegistry.DEFAULT_CARDINALITY
        return SourceStatisticsRegistry.DEFAULT_CARDINALITY

    # -- compilation and execution ----------------------------------------------------------

    def compile(self, expr: A.Expr, collect_stats: bool = True) -> A.Expr:
        """Optimize an NRC expression with the current rule sets."""
        stats = RewriteStats() if collect_stats else None
        optimized = self.optimizer.optimize(expr, stats)
        self.last_rewrite_stats = stats
        return optimized

    def driver_executor(self, driver_name: str, request: Mapping[str, object]):
        """The Scan callback: route a request to the named driver."""
        return self.driver(driver_name).execute(request)

    def _make_context(self) -> EvalContext:
        statistics = EvalStatistics()
        self.last_eval_statistics = statistics
        return EvalContext(driver_executor=self.driver_executor,
                           statistics=statistics, cache=self.cache)

    def _resolve_mode(self, mode: Optional[object]) -> ExecutionMode:
        return self.execution_mode if mode is None else ExecutionMode.coerce(mode)

    def compiled_query(self, expr: A.Expr) -> CompiledQuery:
        """Return (and memoize) the closure-compiled form of ``expr``.

        The memo key is :func:`~repro.core.nrc.compile.term_fingerprint`, not
        structural equality: equality is too loose for a compile cache (it
        conflates ``Const(True)``/``Const(1)`` and ignores ``Cached.key`` /
        ``Join.block_size``, all of which compiled closures bake in) and too
        strict across runs (each parse of the same query mints fresh binder
        names; the fingerprint de-Bruijn-indexes them away, so the common
        session pattern — the same query executed repeatedly — compiles
        once).
        """
        memo_key = term_fingerprint(expr)
        query = self._compiled_queries.get(memo_key)
        if query is None:
            if len(self._compiled_queries) >= _COMPILED_CACHE_LIMIT:
                self._compiled_queries.clear()
            query = compile_term(expr)
            self._compiled_queries[memo_key] = query
        return query

    def execute(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
                optimize: bool = True, mode: Optional[object] = None):
        """Optimize (optionally) and evaluate an NRC expression.

        ``mode`` overrides the engine's default :class:`ExecutionMode` for
        this call (``"compiled"`` lowers the term to closures first;
        ``"interpret"`` tree-walks it).
        """
        mode = self._resolve_mode(mode)
        context = self._make_context()
        environment = Environment(dict(bindings or {}))
        if mode is ExecutionMode.COMPILED:
            if optimize:
                stats = RewriteStats()
                # The pipeline owns the ordering: closure-lowering runs
                # strictly post-rewrite, through this engine's memo.
                expr, query = self.optimizer.prepare(expr, stats,
                                                     lower=self.compiled_query)
                self.last_rewrite_stats = stats
            else:
                query = self.compiled_query(expr)
            context.statistics.execution_mode = (
                "compiled" if query.fully_compiled else "compiled+fallback")
            return query(environment, context)
        if optimize:
            expr = self.compile(expr)
        context.statistics.execution_mode = "interpreted"
        return Evaluator(context).evaluate(expr, environment)

    def stream(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
               optimize: bool = True, mode: Optional[object] = None) -> Iterator[object]:
        """Pipelined evaluation of a top-level comprehension.

        When the (optimized) expression is an ``Ext`` whose source is a driver
        scan, results are yielded as each source element is consumed — the
        "laziness in strategic places" of Section 4, used to get initial output
        to the user quickly.  Other shapes fall back to eager evaluation.

        Closing the returned iterator early closes the underlying source
        cursor (token stream, driver generator), so an abandoned stream does
        not hold driver resources open.  Both execution modes stream.
        """
        mode = self._resolve_mode(mode)
        if optimize:
            expr = self.compile(expr)
        # Resolution above runs eagerly (a bad mode raises at the call site);
        # evaluation below starts on the first next().
        return self._stream(expr, bindings, mode)

    def _stream(self, expr: A.Expr, bindings: Optional[Dict[str, object]],
                mode: ExecutionMode) -> Iterator[object]:
        if type(expr) is A.Ext:
            context = self._make_context()
            environment = Environment(dict(bindings or {}))
            if mode is ExecutionMode.COMPILED:
                source_query = self.compiled_query(expr.source)
                body_query = self.compiled_query(A.Lam(expr.var, expr.body))
                context.statistics.execution_mode = (
                    "compiled"
                    if source_query.fully_compiled and body_query.fully_compiled
                    else "compiled+fallback")
                source = source_query(environment, context)
                evaluate_body = body_query(environment, context)
            else:
                context.statistics.execution_mode = "interpreted"
                evaluator = Evaluator(context)
                source = evaluator._eval(expr.source, environment)

                def evaluate_body(item):
                    return evaluator._eval(expr.body, environment.child(expr.var, item))

            iterator = iterate_source(source)
            try:
                for item in iterator:
                    for element in iter_collection(materialise(evaluate_body(item))):
                        yield element
            finally:
                close_source(iterator, source)
            return
        result = self.execute(expr, bindings, optimize=False, mode=mode)
        try:
            elements = iter_collection(result)
        except Exception:
            yield result
            return
        yield from elements
