"""The Kleisli engine: drivers + optimizer + evaluator.

"CPL is implemented on top of an extensible query system called Kleisli ...
Routines within Kleisli manage optimization, query evaluation, and I/O from
remote and local data sources."  The engine is that middle layer:

* a **driver registry** — drivers are registered by name, contribute CPL
  functions and statistics, and are reached at run time through
  :meth:`driver_executor`, the callback every :class:`~repro.core.nrc.ast.Scan`
  node evaluates through;
* the **optimizer pipeline** (rebuilt whenever registration changes);
* the **cost-based planner** — per-query physical knobs (join block size,
  chunk ramp bounds, prefetch granularity) chosen from registered/observed
  source statistics and the run-time feedback ledger, instead of constants
  (:meth:`KleisliEngine.plan_for`; zero knowledge reproduces the historical
  defaults exactly);
* the **evaluator context** — subquery cache, execution statistics;
* ``execute`` / ``stream`` — eager evaluation and the pipelined variant that
  yields results as the outermost generator produces them (fast first
  response).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import (
    DriverNotRegisteredError,
    MemoryBudgetExceededError,
    QueryCancelledError,
)
from ..core.nrc import ast as A
from ..core.nrc.compile import (
    ChunkPolicy,
    CompiledChunkedStream,
    CompiledQuery,
    CompiledStream,
    ExecutionMode,
    compile_chunked,
    compile_stream,
    compile_term,
    term_fingerprint,
)
from ..core.nrc.eval import (
    Environment,
    EvalContext,
    EvalStatistics,
    Evaluator,
    close_source,
    iterate_source,
    materialise,
)
from ..core.nrc.rewrite import RewriteStats
from ..core.optimizer import OptimizerConfig, OptimizerPipeline, ScanSpec
from ..core.planner import (
    PhysicalPlan,
    PlanFeedback,
    PlanStore,
    QueryPlanner,
    scan_collection,
)
from ..core.values import CBag, CList, CSet, iter_collection
from ..obs import Observability
from ..obs.metrics import RowWidthEstimator
from ..obs.profile import ProbeTee, QueryProfile, StageCollector, aggregate_driver_spans
from ..obs.trace import QueryTrace
from .cache import SubqueryCache
from .drivers.base import Driver, DriverFunction
from .governance import (
    NOMINAL_ROW_BYTES,
    CancellationToken,
    MemoryBudget,
    QueryGovernor,
)
from .resilience import CircuitBreaker, CircuitBreakerPolicy, ResilienceLayer, RetryPolicy
from .spill import SpillManager
from .statistics import SourceStatisticsRegistry

__all__ = ["KleisliEngine", "ExecutionMode"]

#: How many lowered queries (eager + streaming together) the engine keeps;
#: the least recently used entry is evicted when the cache is full.
_COMPILED_CACHE_LIMIT = 128


class _CompileCache:
    """A fingerprint-keyed LRU of lowered queries, shared by both targets.

    Keys are ``(target, term_fingerprint(expr))`` where ``target`` is
    ``"eager"`` (:class:`CompiledQuery`) or ``"stream"``
    (:class:`CompiledStream`) or ``"chunked"`` (:class:`CompiledChunkedStream`),
    so the lowerings of one term coexist without conflation.  A hit moves
    the entry to the most-recently-used position; insertion past ``limit``
    evicts only the least recently used entry — not the whole cache, as the
    pre-LRU memo did.

    All operations hold a lock: scheduler worker threads compile through
    the one engine (a ``ParallelExt`` body's subqueries, cross-session
    reuse), and an unlocked ``OrderedDict`` being reordered by ``get`` while
    another thread inserts can corrupt the linked list — and the hit/miss
    counters' read-modify-writes would under-count (``SubqueryCache`` has
    locked for the same reason all along).
    """

    __slots__ = ("limit", "hits", "misses", "evictions", "_entries", "_lock")

    def __init__(self, limit: int = _COMPILED_CACHE_LIMIT):
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Tuple) -> Optional[object]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class KleisliEngine:
    """Driver registry, optimizer and evaluator in one object."""

    def __init__(self, optimizer_config: Optional[OptimizerConfig] = None,
                 execution_mode: object = ExecutionMode.COMPILED,
                 stream_chunking: bool = True,
                 plan_store: Optional[PlanStore] = None,
                 memory_pool_limit: Optional[int] = None):
        self.drivers: Dict[str, Driver] = {}
        self.driver_functions: Dict[str, Tuple[Driver, DriverFunction]] = {}
        self.statistics_registry = SourceStatisticsRegistry()
        self.cache = SubqueryCache()
        self.optimizer_config = optimizer_config or OptimizerConfig()
        #: The run-time feedback ledger: per-stage per-chunk costs and true
        #: cardinalities of drained chunked runs, keyed by term fingerprint.
        self.plan_feedback = PlanFeedback()
        #: The cost-based planner.  Its compile-time hooks gate the join
        #: block size and parallel introduction inside both optimizers;
        #: :meth:`plan_for` asks it for the run-time knobs per query.  With
        #: zero statistics and no feedback it reproduces the historical
        #: constants exactly.
        self.planner = QueryPlanner(
            self.statistics_registry, self.plan_feedback,
            default_block_size=self.optimizer_config.join_block_size,
            parallel_max_workers=self.optimizer_config.parallel_max_workers,
            batches_natively=self._driver_batches_natively)
        self.last_plan: Optional[PhysicalPlan] = None
        self.optimizer = self._build_optimizer()
        #: The pipelined-execution planner: same rule sets, but with the
        #: streaming hint set (blocked joins get block size 1 so the
        #: streamed probe side yields per outer element).  ``stream`` uses
        #: this; ``execute`` keeps the eager plan.
        self.stream_optimizer = self._build_optimizer(streaming=True)
        self.execution_mode = ExecutionMode.coerce(execution_mode)
        #: Whether compiled-mode ``stream`` uses the chunked (morsel-at-a-
        #: time) lowering by default; per-call override via
        #: ``stream(..., chunked=...)``.
        self.stream_chunking = stream_chunking
        #: The driver resilience layer (retries, breakers, deadlines,
        #: mid-stream recovery).  Default-off: a driver with no configured
        #: policy dispatches exactly as before, so zero-fault runs are
        #: bit-for-bit unchanged.  Configure via :meth:`configure_resilience`.
        self.resilience = ResilienceLayer()
        self.resilience.on_breaker_event = self._note_breaker_event
        self.resilience.on_retry = self._note_retry_event
        #: The governance ledger (cancellations, spills, budget rejections,
        #: watchdog kills) plus the optional engine-wide memory pool that
        #: per-query budgets parent into.  With no ``memory_pool_limit`` and
        #: no per-run governance arguments, every run takes exactly the
        #: ungoverned code paths (the zero-governance contract).
        self.governor = QueryGovernor(memory_pool_limit)
        #: The observability hub (metrics + tracer + slow-query log), or
        #: ``None`` — the zero-recorder contract: with no hub attached and
        #: ``profile=False``, every run takes the exact pre-observability
        #: code paths.  Attach via :meth:`attach_observability`.
        self.observability: Optional[Observability] = None
        #: The sampled row-width model feeding the governance spill gate.
        #: Fed from spill bookkeeping (bytes *and* rows per spilled frame);
        #: with zero samples it returns ``NOMINAL_ROW_BYTES`` verbatim, so
        #: an engine that never spilled gates exactly like the historical
        #: constant.
        self.row_width = RowWidthEstimator(NOMINAL_ROW_BYTES)
        #: The most recent :class:`~repro.obs.profile.QueryProfile` (EXPLAIN
        #: ANALYZE record) any observed/profiled run produced, plus a
        #: thread-local mirror for shared-engine servers (same rationale as
        #: ``_thread_statistics``).
        self.last_profile: Optional[QueryProfile] = None
        self._thread_profiles = threading.local()
        #: Engine-wide default for ``on_source_failure`` when a run does not
        #: choose: ``"fail"`` propagates source failures, ``"degrade"``
        #: completes federated runs with typed partial-result warnings.
        self.on_source_failure = "fail"
        self.last_eval_statistics: Optional[EvalStatistics] = None
        self.last_rewrite_stats: Optional[RewriteStats] = None
        # Thread-local mirror of last_eval_statistics: on a shared engine,
        # concurrent sessions overwrite the engine-wide attribute, so a
        # server thread that needs ITS run's statistics (degradation
        # warnings on the wire) reads thread_eval_statistics() instead.
        self._thread_statistics = threading.local()
        self._compiled_queries = _CompileCache(_COMPILED_CACHE_LIMIT)
        #: The crash-safe persistence layer for the feedback ledger and the
        #: statistics registry's learned state.  ``None`` (the default)
        #: means no persistence at all — the engine behaves exactly as
        #: before the store existed.
        self.plan_store: Optional[PlanStore] = None
        if plan_store is not None:
            self.attach_plan_store(plan_store)

    # -- plan-store wiring -----------------------------------------------------

    def attach_plan_store(self, store: PlanStore) -> None:
        """Attach a persistence store: warm-start now, write-through after.

        Loads whatever the store recovered (feedback entries below any live
        knowledge's recency, statistics as gap-fill), then hooks the ledger
        so every fold is journaled write-through and the store can read
        consistent state for compaction.  Loading never raises on corrupt
        storage — the zero-knowledge contract: an engine attached to a
        missing/empty/corrupt store plans exactly like a storeless one.
        """
        self.plan_store = store
        store.state_provider = self._plan_store_state
        state = store.load()
        self.plan_feedback.restore(state.feedback)
        self.statistics_registry.restore(state.statistics)
        self.plan_feedback.on_record = self._persist_feedback

    def _plan_store_state(self) -> Tuple[list, dict]:
        """The store's consistent-state callback (compaction, flushes)."""
        return (self.plan_feedback.snapshot(),
                self.statistics_registry.snapshot())

    def _persist_feedback(self, fingerprint: Tuple, state: Dict,
                          updated: float) -> None:
        store = self.plan_store
        if store is not None:
            store.append_feedback(fingerprint, state, updated)

    def flush_plan_store(self, compact: bool = False) -> None:
        """Durably flush (optionally compact) the attached store, if any.

        The shutdown/drain hook: the server calls this at the end of a
        graceful stop, and periodic flushing piggybacks on the store's own
        statistics interval.  A storeless engine no-ops.
        """
        store = self.plan_store
        if store is None:
            return
        if compact:
            store.compact()
        store.flush()

    # -- driver registration ---------------------------------------------------------

    def register_driver(self, driver: Driver, latency: Optional[float] = None) -> Driver:
        """Register a driver; its CPL functions and statistics become available.

        ``latency`` (seconds) marks the driver as remote in the statistics
        registry, which is what the parallelism rules key on.
        """
        self.drivers[driver.name] = driver
        driver.open()
        for function in driver.cpl_functions():
            self.driver_functions[function.name] = (driver, function)
        for collection in driver.collection_names():
            cardinality = driver.cardinality(collection)
            if cardinality is not None:
                self.statistics_registry.register_cardinality(driver.name, collection, cardinality)
        if latency is not None:
            self.statistics_registry.register_latency(driver.name, latency)
        elif getattr(driver, "remote", None) is not None:
            self.statistics_registry.register_latency(driver.name, driver.remote.latency)
        self._rebuild_optimizers()
        return driver

    def unregister_driver(self, name: str) -> None:
        driver = self.drivers.pop(name, None)
        if driver is None:
            raise DriverNotRegisteredError(name)
        driver.close()
        self.driver_functions = {
            fname: (drv, fn) for fname, (drv, fn) in self.driver_functions.items()
            if drv.name != name
        }
        self._rebuild_optimizers()

    def driver(self, name: str) -> Driver:
        try:
            return self.drivers[name]
        except KeyError:
            raise DriverNotRegisteredError(name)

    def _driver_batches_natively(self, name: str) -> bool:
        """Does this driver ship a whole ``execute_batch`` in one round-trip?

        What makes raising the remote batch cap pay for the planner: a
        default-looping driver performs the same round-trips however the
        requests are batched, so only a native single-round-trip batch
        changes the cost model.
        """
        driver = self.drivers.get(name)
        return (driver is not None
                and type(driver).execute_batch is not Driver.execute_batch
                and driver.batch_single_round_trip)

    # -- optimizer wiring ---------------------------------------------------------------

    def _build_optimizer(self, streaming: bool = False) -> OptimizerPipeline:
        registry = {
            fname: ScanSpec(driver.name, function.request_template,
                            function.argument_key, function.argument_is_record,
                            function.result_kind)
            for fname, (driver, function) in self.driver_functions.items()
        }
        capabilities = {name: driver.capabilities for name, driver in self.drivers.items()}
        config = self.optimizer_config
        if streaming:
            config = config.for_streaming()
        return OptimizerPipeline(
            function_registry=registry,
            capabilities=capabilities,
            cardinality_of=self._estimate_cardinality,
            is_remote_driver=self.statistics_registry.is_remote,
            config=config,
            planner=self.planner,
        )

    def _rebuild_optimizers(self) -> None:
        """Re-derive both planners after driver registration changed."""
        self.optimizer = self._build_optimizer()
        self.stream_optimizer = self._build_optimizer(streaming=True)

    def _estimate_cardinality(self, source: A.Expr) -> int:
        """Estimate the size of a generator source for the join rule set."""
        if isinstance(source, A.Cached):
            return self._estimate_cardinality(source.expr)
        if isinstance(source, A.Scan):
            # One collection-key probing order for the whole system: the
            # planner's estimator uses the same helper, so the join rule
            # and the plan chooser can never disagree about which
            # cardinality a scan reads.
            collection = scan_collection(source.request)
            return self.statistics_registry.cardinality(source.driver, collection)
        if isinstance(source, A.Const):
            try:
                return len(list(iter_collection(source.value)))
            except Exception:
                return SourceStatisticsRegistry.DEFAULT_CARDINALITY
        return SourceStatisticsRegistry.DEFAULT_CARDINALITY

    # -- compilation and execution ----------------------------------------------------------

    def compile(self, expr: A.Expr, collect_stats: bool = True) -> A.Expr:
        """Optimize an NRC expression with the current rule sets."""
        stats = RewriteStats() if collect_stats else None
        optimized = self.optimizer.optimize(expr, stats)
        self.last_rewrite_stats = stats
        return optimized

    def compile_for_stream(self, expr: A.Expr, collect_stats: bool = True) -> A.Expr:
        """Optimize for pipelined execution: the streaming-hinted planner.

        Same rule sets as :meth:`compile`, but blocked joins are emitted with
        block size 1 so the streamed lowering probes — and yields — per outer
        element (``stream`` routes through this; result values are identical
        either way).
        """
        stats = RewriteStats() if collect_stats else None
        optimized = self.stream_optimizer.optimize(expr, stats)
        self.last_rewrite_stats = stats
        return optimized

    def configure_resilience(self, driver_name: str,
                             retry: Optional[RetryPolicy] = None,
                             breaker: Optional[CircuitBreakerPolicy] = None) -> None:
        """Install a retry policy and/or circuit breaker for one driver.

        Passing neither removes the configuration: the driver returns to
        raw pass-through dispatch (the default for every driver).
        """
        self.resilience.set_policy(driver_name, retry, breaker)

    def _note_breaker_event(self, driver_name: str, state: str) -> None:
        """Breaker state changes feed the planner's availability view.

        An open (or half-open, still-probing) breaker marks the source
        unavailable in the statistics registry, so :meth:`plan_for` stops
        routing batched scans at it; re-closing restores availability.
        With a hub attached, every transition also bumps the breaker
        counter.
        """
        self.statistics_registry.set_available(
            driver_name, state == CircuitBreaker.CLOSED)
        hub = self.observability
        if hub is not None:
            hub.note_breaker(driver_name, state)

    def _note_retry_event(self, driver_name: str, attempt: int) -> None:
        """Resilience retry hook: feed the hub's retry counter, if attached."""
        hub = self.observability
        if hub is not None:
            hub.note_retry(driver_name, attempt)

    # -- observability wiring ---------------------------------------------------

    def attach_observability(self, hub: Optional[Observability]) -> Optional[Observability]:
        """Attach (or, with ``None``, detach) the observability hub.

        While attached, every run is traced, the standard instruments are
        fed from the engine/server hook sites, and completed runs are
        considered for the slow-query log.  Detached (the default), every
        hook site short-circuits on ``None`` — the zero-recorder contract,
        differential-pinned by the test suite.
        """
        self.observability = hub
        return hub

    def _begin_trace(self, profile: bool) -> Optional[QueryTrace]:
        """The run's trace: hub-recorded, profile-only, or ``None`` (off)."""
        hub = self.observability
        if hub is not None:
            return hub.start_trace("query")
        if profile:
            return QueryTrace("query")
        return None

    def thread_profile(self) -> Optional[QueryProfile]:
        """The profile of the last observed run *started on this thread*."""
        return getattr(self._thread_profiles, "value", None)

    def driver_executor(self, driver_name: str, request: Mapping[str, object],
                        context: Optional[EvalContext] = None):
        """The Scan callback: route a request to the named driver.

        Dispatch runs through the resilience layer — retries, per-request
        timeouts, the per-query deadline on ``context``, circuit breaking,
        mid-stream recovery wrapping, degradation — which is pure
        pass-through for drivers with no configured policy.  ``context``
        (bound per run by :meth:`_make_context`) carries the deadline and
        failure policy; direct callers may omit it.

        A cancelled run never dispatches another request: the token is
        checked *before* the resilience layer, so cancellation beats retry
        loops and degradation alike — no driver round-trip is wasted on a
        query nobody is waiting for.
        """
        if context is not None and context.cancellation is not None:
            context.cancellation.raise_if_cancelled()
        trace = None if context is None else context.trace
        if trace is None:
            return self.resilience.execute(driver_name, request,
                                           self._raw_execute, context)
        with trace.span(driver_name, "driver"):
            return self.resilience.execute(driver_name, request,
                                           self._raw_execute, context)

    def _raw_execute(self, driver_name: str, request: Mapping[str, object]):
        """One raw driver round-trip (what the resilience layer retries).

        Every *successful* request's round-trip is folded into the
        statistics registry's observed-latency EMA, so a driver nobody
        declared remote but whose requests are measured slow is treated as
        remote by the parallelism rules on later compilations (lazy cursors
        dispatch in ~0s and stay local; their per-element latency is paid
        during consumption).  Failures are excluded: an overloaded remote
        server rejecting in ~1 ms would otherwise drag the EMA *down* and
        demote exactly the driver that most needs request overlap — for the
        same reason, a retried request contributes one sample per
        *successful* attempt, never its failed tries.
        """
        driver = self.driver(driver_name)
        hub = self.observability
        started = time.perf_counter()
        try:
            result = driver.execute(request)
        except Exception:
            if hub is not None:
                hub.observe_request(driver_name,
                                    time.perf_counter() - started, failed=True)
            raise
        elapsed = time.perf_counter() - started
        self.statistics_registry.record_latency_sample(driver_name, elapsed)
        if hub is not None:
            hub.observe_request(driver_name, elapsed)
        return result

    def driver_executor_batch(self, driver_name: str,
                              requests: Sequence[Mapping[str, object]],
                              context: Optional[EvalContext] = None) -> List[object]:
        """The batched Scan callback: a whole chunk's requests in one call.

        A driver that left :meth:`~repro.kleisli.drivers.base.Driver.execute_batch`
        at its default (loop over ``execute``) is dispatched per request
        through :meth:`driver_executor` — identical behavior, but every
        round-trip feeds the observed-latency EMA, so a slow undeclared
        driver reached only through batched body scans is still promoted to
        remote (and its later batches capped at ``remote_max_chunk``)
        exactly as under per-element dispatch.  A driver with a *native*
        ``execute_batch`` gets the one call; whether it yields a latency
        sample depends on the driver's declared batch economics
        (``batch_single_round_trip``): one-wire-call batches record nothing
        — a batch elapsed time has no sound per-request decomposition, and
        a mean-per-request sample would decay a genuinely remote driver's
        EMA below the promotion threshold as batches grow — while native
        batches that still do per-request work (the flat-file driver's
        cached reads) record the mean, which IS their true per-request cost.

        A *failed* native batch no longer poisons its siblings: the batch is
        decomposed and re-dispatched per request through
        :meth:`driver_executor`, so only the genuinely bad request fails
        (and, with a retry policy or degradation configured, may not fail at
        all — a whole-batch cap rejection retries per request).  The
        re-dispatched requests are real per-request round-trips, so their
        EMA samples follow the per-request rule above.
        """
        if context is not None and context.cancellation is not None:
            context.cancellation.raise_if_cancelled()
        driver = self.driver(driver_name)
        if not requests:
            return []
        if type(driver).execute_batch is Driver.execute_batch:
            return [self.driver_executor(driver_name, request, context)
                    for request in requests]
        trace = None if context is None else context.trace
        span = (None if trace is None
                else trace.begin(driver_name, "driver-batch",
                                 requests=len(requests)))
        started = time.perf_counter()
        try:
            results = list(driver.execute_batch(requests))
        except Exception:
            if span is not None:
                trace.end(span, status="error")
            return [self.driver_executor(driver_name, request, context)
                    for request in requests]
        if span is not None:
            trace.end(span)
        if not driver.batch_single_round_trip:
            self.statistics_registry.record_latency_sample(
                driver_name, (time.perf_counter() - started) / len(requests))
        return results

    def health(self) -> Dict[str, object]:
        """A consistent snapshot of the engine's *shared* structures.

        This is what the query service's ``stats`` op reports, and what the
        multi-session soak tests assert consistency on: every counter here
        belongs to state that concurrent sessions share (the compile-cache
        LRU, the subquery cache, the plan-feedback ledger, per-driver
        request counts) or to process-wide resource accounting
        (:meth:`~repro.core.nrc.eval.EvalScope.live_count` — open pipelined
        runs; zero when every cursor has been released).  Per-session state
        (CPL definitions, type environments, ``EvalScope`` contents) never
        appears here — it dies with the session.
        """
        from ..core.nrc.eval import EvalScope

        cache = self._compiled_queries
        return {
            "compile_cache": {
                "hits": cache.hits, "misses": cache.misses,
                "evictions": cache.evictions, "size": len(cache),
                "limit": cache.limit,
            },
            "subquery_cache": {
                "hits": self.cache.hits, "misses": self.cache.misses,
                "size": len(self.cache),
            },
            "plan_feedback": {
                "entries": len(self.plan_feedback),
                "recordings": self.plan_feedback.recordings,
                "lookups": self.plan_feedback.lookups,
                "hits": self.plan_feedback.hits,
            },
            "drivers": {name: driver.request_count
                        for name, driver in self.drivers.items()},
            "live_scopes": EvalScope.live_count(),
            # Per-driver resilience books: retry/timeout/recovery counters
            # and breaker state (``None`` breaker = no breaker configured).
            # Only drivers with a policy, breaker, or recorded activity
            # appear; an unconfigured engine reports {}.
            "resilience": self.resilience.snapshot(),
            # The plan store's account: what loaded, what was refused as
            # corrupt, what was written.  ``{"attached": False}`` when no
            # store is configured.
            "persistence": (self.plan_store.books()
                            if self.plan_store is not None
                            else {"attached": False}),
            # The governance books: cancellations, spills, bytes spilled,
            # budget rejections, watchdog kills — plus pool usage when an
            # engine-wide memory pool is configured.  All zeros on an
            # ungoverned engine.
            "governance": self.governor.snapshot(),
            # The observability hub's account (tracer, slow-query log) —
            # ``{"attached": False}`` with no hub — and the sampled
            # row-width model behind the spill gate.
            "observability": (self.observability.snapshot()
                              if self.observability is not None
                              else {"attached": False}),
            "row_width": self.row_width.snapshot(),
        }

    def chunk_policy(self) -> ChunkPolicy:
        """The *uninformed* chunk-size policy (historical default knobs).

        Remote drivers (declared or observed through the registry's latency
        EMA) keep small chunks so one chunk never buffers more than a
        bounded slice of a slow cursor; local sources ramp to the full
        maximum.  ``stream`` prefers :meth:`plan_for`'s per-query policy;
        this is what the planner also returns when it knows nothing.
        """
        return ChunkPolicy(is_remote=self.statistics_registry.is_remote)

    def plan_for(self, expr: A.Expr,
                 fingerprint: Optional[Tuple] = None) -> PhysicalPlan:
        """The cost-based physical plan for one (optimized) query.

        Consults registered/observed source statistics and the feedback
        ledger of earlier runs; with ``OptimizerConfig.planning`` off — or
        nothing known — the historical default knobs come back unchanged.
        The chosen plan is recorded on ``last_plan`` for inspection.
        ``fingerprint`` (when the caller already computed the term's
        fingerprint) skips the planner's own walk.
        """
        if self.optimizer_config.planning:
            plan = self.planner.plan_for(expr, fingerprint)
        else:
            plan = PhysicalPlan.default(self.optimizer_config.join_block_size)
        self.last_plan = plan
        return plan

    def _make_context(self, deadline: Optional[float] = None,
                      on_source_failure: Optional[str] = None,
                      cancellation: Optional[CancellationToken] = None,
                      memory_budget: Optional[MemoryBudget] = None,
                      spill_manager: Optional[SpillManager] = None
                      ) -> EvalContext:
        """One run's ambient context, with its resilience parameters bound.

        ``deadline`` is a *relative* budget in seconds, converted to an
        absolute deadline on the resilience layer's clock here, when the
        run starts.  The Scan callbacks are bound as closures over this
        context so the resilience layer sees the run's deadline and
        failure policy at every dispatch — while the engine methods keep
        their context-free signatures for direct callers.  ``cancellation``,
        ``memory_budget`` and ``spill_manager`` (already resolved by
        :meth:`_governed_run`) land on the context's governance hooks; all
        ``None`` reproduces the pre-governance context exactly.
        """
        statistics = EvalStatistics()
        self.last_eval_statistics = statistics
        self._thread_statistics.value = statistics
        context = EvalContext(statistics=statistics, cache=self.cache)
        policy = (on_source_failure if on_source_failure is not None
                  else self.on_source_failure)
        if policy not in ("fail", "degrade"):
            raise ValueError(
                f"on_source_failure must be 'fail' or 'degrade', got {policy!r}")
        context.on_source_failure = policy
        if deadline is not None:
            context.deadline = self.resilience.clock() + deadline
        context.cancellation = cancellation
        context.memory_budget = memory_budget
        context.spill = spill_manager
        context.driver_executor = (
            lambda name, request: self.driver_executor(name, request, context))
        context.driver_executor_batch = (
            lambda name, requests: self.driver_executor_batch(
                name, requests, context))
        return context

    # -- governance resolution ---------------------------------------------------

    def _resolve_budget(self, memory_budget
                        ) -> Tuple[Optional[MemoryBudget], bool]:
        """Normalise a caller's budget argument to a :class:`MemoryBudget`.

        Returns ``(budget, owned)``.  An ``int`` mints a per-query budget
        parented into the engine pool; a ready-made :class:`MemoryBudget`
        (e.g. a session-scoped quota) becomes the *parent* of a fresh
        per-run child, so concurrent runs share the quota and each run's
        usage flows back when its child closes.  Both are ``owned`` — the
        run finalizer closes the child, never the caller's budget.
        ``None`` normally stays ``None`` (zero governance) — except on a
        pool-capped engine, where every run charges the pool through an
        unbounded owned budget, or one unbudgeted query could dodge the cap
        the operator configured.
        """
        pool = self.governor.pool
        if memory_budget is None:
            if pool is None:
                return None, False
            return MemoryBudget(None, label="query", parent=pool), True
        if isinstance(memory_budget, MemoryBudget):
            return MemoryBudget(None, label="query",
                                parent=memory_budget), True
        limit = int(memory_budget)
        return MemoryBudget(limit, label="query", parent=pool), True

    def _resolve_spill(self, spill: Optional[bool],
                       budget: Optional[MemoryBudget],
                       plan: Optional[PhysicalPlan]) -> Optional[SpillManager]:
        """The plan gate: pick in-memory vs. spill-to-disk *up front*.

        ``spill=True`` forces a spill manager, ``False`` forbids one, and
        ``None`` (auto) consults the cost model: when the planner's row
        estimate times the *sampled* row width (``self.row_width``, fed
        from spill bookkeeping; exactly
        :data:`~repro.kleisli.governance.NOMINAL_ROW_BYTES` until the first
        sample — the differential pin) exceeds the tightest cap in the
        budget chain, the materialization points are going to blow the
        budget anyway — so the run degrades to disk-backed
        (slower-but-correct) from the start instead of failing mid-flight.
        No estimate, or estimate under budget, means in-memory with the
        budget as a backstop.
        """
        if spill is False:
            return None
        if spill is True:
            return SpillManager()
        if budget is None or plan is None or plan.estimated_rows is None:
            return None
        cap: Optional[int] = None
        node = budget
        while node is not None:
            if node.limit is not None and (cap is None or node.limit < cap):
                cap = node.limit
            node = node.parent
        if cap is not None and plan.estimated_rows * self.row_width.row_bytes() > cap:
            return SpillManager()
        return None

    def _finish_governed(self, budget: Optional[MemoryBudget], owned: bool,
                         spill_manager: Optional[SpillManager]) -> None:
        """The run finalizer: settle the books, free pool capacity and disk.

        Spill books also feed the row-width model (each spilled frame knows
        its bytes *and* rows) and, with a hub attached, the spill metrics.
        """
        if spill_manager is not None:
            books = spill_manager.books
            rows = books.get("rows_spilled", 0)
            if rows:
                self.row_width.observe(books.get("bytes_spilled", 0), rows)
            hub = self.observability
            if hub is not None:
                hub.record_spill_books(books)
            self.governor.merge(books)
            spill_manager.close()
        if owned and budget is not None:
            budget.close()

    def _count_governance(self, key: str) -> None:
        """One governance outcome: engine ledger plus hub counter (if any)."""
        self.governor.count(key)
        hub = self.observability
        if hub is not None:
            hub.note_governance(key)

    def thread_eval_statistics(self) -> Optional[EvalStatistics]:
        """The statistics of the last run *started on this thread*.

        Unlike ``last_eval_statistics`` this cannot be clobbered by another
        session's concurrent run; a streamed run's object keeps accumulating
        (warnings included) as the stream drains.
        """
        return getattr(self._thread_statistics, "value", None)

    def _resolve_mode(self, mode: Optional[object]) -> ExecutionMode:
        return self.execution_mode if mode is None else ExecutionMode.coerce(mode)

    def _lowered(self, target: str, expr: A.Expr, lower: Callable,
                 statistics: Optional[EvalStatistics],
                 fingerprint: Optional[Tuple] = None) -> object:
        """LRU lookup-or-compile for one lowering target; updates counters.

        ``fingerprint`` reuses a walk the caller already did (``stream``
        fingerprints every planned run for the planner and feedback probe).
        """
        cache = self._compiled_queries
        if fingerprint is None:
            fingerprint = term_fingerprint(expr)
        memo_key = (target, fingerprint)
        query = cache.get(memo_key)
        if query is None:
            query = lower(expr)
            cache.put(memo_key, query)
            if statistics is not None:
                statistics.compile_cache_misses += 1
        elif statistics is not None:
            statistics.compile_cache_hits += 1
        return query

    def compiled_query(self, expr: A.Expr,
                       statistics: Optional[EvalStatistics] = None) -> CompiledQuery:
        """Return (and LRU-cache) the eager closure-compiled form of ``expr``.

        The cache key is :func:`~repro.core.nrc.compile.term_fingerprint`, not
        structural equality: equality is too loose for a compile cache (it
        conflates ``Const(True)``/``Const(1)`` and ignores ``Cached.key`` /
        ``Join.block_size``, all of which compiled closures bake in) and too
        strict across runs (each parse of the same query mints fresh binder
        names; the fingerprint de-Bruijn-indexes them away, so the common
        session pattern — the same query executed repeatedly — compiles
        once).  ``statistics`` (when given) receives the hit/miss accounting
        for this lookup.
        """
        return self._lowered("eager", expr, compile_term, statistics)

    def compiled_stream(self, expr: A.Expr,
                        statistics: Optional[EvalStatistics] = None) -> CompiledStream:
        """Return (and LRU-cache) the pull-based streaming lowering of ``expr``.

        Shares the LRU (and the fingerprint keying) with
        :meth:`compiled_query` under a distinct target tag, so the eager and
        streaming forms of one term coexist and age out independently.
        """
        return self._lowered("stream", expr, compile_stream, statistics)

    def compiled_chunked(self, expr: A.Expr,
                         statistics: Optional[EvalStatistics] = None,
                         fingerprint: Optional[Tuple] = None) -> CompiledChunkedStream:
        """Return (and LRU-cache) the chunked (morsel-at-a-time) lowering.

        Third target tag in the shared LRU.  Chunk sizes are *not* baked in
        — they are read from ``EvalContext.chunk_policy`` at run time — so
        one cached pipeline serves every policy (and every plan).
        """
        return self._lowered("chunked", expr, compile_chunked, statistics,
                             fingerprint)

    def execute(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
                optimize: bool = True, mode: Optional[object] = None,
                deadline: Optional[float] = None,
                on_source_failure: Optional[str] = None,
                cancellation: Optional[CancellationToken] = None,
                memory_budget=None,
                spill: Optional[bool] = None,
                profile: bool = False):
        """Optimize (optionally) and evaluate an NRC expression.

        ``mode`` overrides the engine's default :class:`ExecutionMode` for
        this call (``"compiled"`` lowers the term to closures first;
        ``"interpret"`` tree-walks it).  ``deadline`` (seconds) bounds the
        whole run's driver work; ``on_source_failure`` overrides the
        engine's failure policy (``"fail"`` | ``"degrade"``) for this call.

        Governance (all optional; omitting all of them reproduces the
        ungoverned run bit-for-bit): ``cancellation`` is a
        :class:`~repro.kleisli.governance.CancellationToken` checked at every
        evaluation checkpoint and before every driver dispatch;
        ``memory_budget`` caps the run's materialization (an ``int`` of
        bytes, or a prebuilt session-scoped
        :class:`~repro.kleisli.governance.MemoryBudget`); ``spill`` picks the
        backend for the big materialization points — ``None`` lets the cost
        model decide (estimated rows vs. the budget), ``True`` forces
        disk-backed execution, ``False`` forbids it (over-budget then raises
        :class:`~repro.core.errors.MemoryBudgetExceededError`).  Spill
        applies to the compiled lowerings; the interpreter honours token and
        budget only.

        ``profile=True`` attaches an EXPLAIN ANALYZE recorder to this run:
        the returned value is bit-identical (observation only), and the
        :class:`~repro.obs.profile.QueryProfile` lands on ``last_profile``
        / :meth:`thread_profile`.  With a hub attached every run is
        profiled for the slow-query log anyway; with neither, this path is
        byte-for-byte the pre-observability one.
        """
        mode = self._resolve_mode(mode)
        budget, owned = self._resolve_budget(memory_budget)
        trace = self._begin_trace(profile)
        if cancellation is None and budget is None and spill is not True:
            context = self._make_context(deadline, on_source_failure)
            if trace is None:
                return self._execute(expr, bindings, optimize, mode, context)
            return self._execute_observed(expr, bindings, optimize, mode,
                                          context, trace)
        gate_plan = None
        if spill is None and budget is not None and self.optimizer_config.planning:
            gate_plan = self.planner.plan_for(expr)
        spill_manager = self._resolve_spill(spill, budget, gate_plan)
        context = self._make_context(deadline, on_source_failure,
                                     cancellation, budget, spill_manager)
        try:
            if trace is None:
                return self._execute(expr, bindings, optimize, mode, context)
            return self._execute_observed(expr, bindings, optimize, mode,
                                          context, trace)
        except QueryCancelledError:
            self._count_governance("cancellations")
            raise
        except MemoryBudgetExceededError:
            self._count_governance("budget_rejections")
            raise
        finally:
            self._finish_governed(budget, owned, spill_manager)

    def _execute_observed(self, expr: A.Expr,
                          bindings: Optional[Dict[str, object]],
                          optimize: bool, mode: ExecutionMode,
                          context: EvalContext, trace: QueryTrace):
        """Eager evaluation under a trace; finalizes the profile either way.

        Eager runs carry no physical plan, so the profile's estimated
        cardinality comes straight from the planner's estimator —
        observation only, never written back to the context.
        """
        context.trace = trace
        estimate = None
        if self.optimizer_config.planning:
            try:
                estimate = self.planner.cardinality.estimate(expr)
            except Exception:  # pragma: no cover - estimator is total today
                estimate = None
        started = time.perf_counter()
        status = "ok"
        result = None
        try:
            result = self._execute(expr, bindings, optimize, mode, context)
            return result
        except BaseException as exc:
            status = type(exc).__name__
            raise
        finally:
            actual = (float(len(result))
                      if isinstance(result, (CSet, CBag, CList)) else None)
            self._finalize_observed(context, trace,
                                    time.perf_counter() - started, status,
                                    actual, None, estimated_hint=estimate)

    def _finalize_observed(self, context: EvalContext, trace: QueryTrace,
                           elapsed: float, status: str,
                           actual_rows: Optional[float],
                           collector: Optional[StageCollector],
                           estimated_hint: Optional[float] = None
                           ) -> QueryProfile:
        """Close the run's trace and assemble its EXPLAIN ANALYZE profile.

        Runs *before* governance settlement (the spill books are read off
        the still-open manager), publishes the profile on ``last_profile``
        and the thread-local mirror, and — with a hub attached — offers it
        to the slow-query log.
        """
        trace.finish("ok" if status == "ok" else "error")
        plan = context.physical_plan
        spill_manager = context.spill
        books = dict(spill_manager.books) if spill_manager is not None else {}
        trace_dict = trace.as_dict()
        estimated = None if plan is None else plan.estimated_rows
        if estimated is None:
            estimated = estimated_hint
        if collector is not None and collector.cardinality is not None:
            actual_rows = (collector.cardinality
                           if actual_rows is None else actual_rows)
        profile = QueryProfile(
            mode=context.statistics.execution_mode or "unknown",
            plan=None if plan is None else plan.describe(),
            estimated_rows=estimated,
            actual_rows=actual_rows,
            elapsed=elapsed,
            stages=collector.stages() if collector is not None else {},
            drivers=aggregate_driver_spans(trace_dict),
            statistics=context.statistics.as_dict(),
            books=books,
            trace=trace_dict,
            status="ok" if status == "ok" else status)
        self.last_profile = profile
        self._thread_profiles.value = profile
        hub = self.observability
        if hub is not None:
            hub.slow_queries.record(profile)
        return profile

    def _execute(self, expr: A.Expr, bindings: Optional[Dict[str, object]],
                 optimize: bool, mode: ExecutionMode, context: EvalContext):
        """The mode dispatch ``execute`` has always performed, context in hand."""
        environment = Environment(dict(bindings or {}))
        if mode is ExecutionMode.COMPILED:
            lower = lambda term: self.compiled_query(term, context.statistics)
            if optimize:
                stats = RewriteStats()
                # The pipeline owns the ordering: closure-lowering runs
                # strictly post-rewrite, through this engine's LRU.
                expr, query = self.optimizer.prepare(expr, stats, lower=lower)
                self.last_rewrite_stats = stats
            else:
                query = lower(expr)
            context.statistics.execution_mode = (
                "compiled" if query.fully_compiled else "compiled+fallback")
            return query(environment, context)
        if optimize:
            expr = self.compile(expr)
        context.statistics.execution_mode = "interpreted"
        return Evaluator(context).evaluate(expr, environment)

    def stream(self, expr: A.Expr, bindings: Optional[Dict[str, object]] = None,
               optimize: bool = True, mode: Optional[object] = None,
               chunked: Optional[bool] = None,
               chunk_policy: Optional[ChunkPolicy] = None,
               deadline: Optional[float] = None,
               on_source_failure: Optional[str] = None,
               cancellation: Optional[CancellationToken] = None,
               memory_budget=None,
               spill: Optional[bool] = None,
               profile: bool = False) -> Iterator[object]:
        """Pipelined evaluation: yield elements as the pipeline produces them.

        In compiled mode the (optimized) term is lowered by default to a
        *chunked* pipeline (:meth:`compiled_chunked`): stages exchange
        ramping chunks — the first chunk is one element, so time-to-first-
        result matches the per-element backend — and fused per-chunk loops
        replace per-element generator frames on the hot path.  ``chunked``
        overrides the engine's ``stream_chunking`` default per call
        (``False`` forces the per-element generator pipeline of
        :meth:`compiled_stream`); ``chunk_policy`` overrides the chunk-size
        policy, which otherwise comes from :meth:`chunk_policy` (remote
        sources keep small chunks, local sources ramp to the full maximum).
        Sections with no streaming lowering run eagerly inside the pipeline
        (``EvalStatistics.stream_fallbacks``); sections with a streaming but
        no chunk-wise lowering run per-element inside a chunked run
        (``EvalStatistics.scalar_stages``).  This is the "laziness in
        strategic places" of Section 4, used to get initial output to the
        user quickly.

        The whole run happens inside a context-managed evaluation scope:
        closing the returned iterator early closes every cursor the pipeline
        opened — the source's *and* any body-level scans' — so an abandoned
        stream holds no driver resources, even behind buffered-but-
        unconsumed chunk elements.  Both execution modes stream.

        ``cancellation``, ``memory_budget`` and ``spill`` govern the run as
        in :meth:`execute`; a governed stream additionally settles its books
        (budget closed, spill files deleted, governance ledger updated) when
        the iterator is exhausted, raises, or is closed early.  Omitting all
        three returns the raw pipeline generator exactly as before.

        ``profile=True`` records an EXPLAIN ANALYZE profile of this run
        (per-stage timings via a tee on the plan probe, driver round-trips
        via trace spans, actual vs. estimated rows), finalized when the
        stream is drained, raises, or is closed early; the yielded elements
        are bit-identical to an unprofiled run.  With neither a hub nor
        ``profile``, the raw pipeline comes back exactly as before (the
        zero-recorder contract).
        """
        mode = self._resolve_mode(mode)
        if optimize:
            expr = self.compile_for_stream(expr)
        budget, owned = self._resolve_budget(memory_budget)
        governed = (cancellation is not None or budget is not None
                    or spill is True)
        # Resolution, planning and context creation run eagerly (a bad mode
        # raises at the call site, and last_eval_statistics / last_plan
        # refer to *this* run as soon as stream() returns); evaluation
        # starts on the first next().
        context = self._make_context(deadline, on_source_failure,
                                     cancellation, budget)
        trace = self._begin_trace(profile)
        collector = None
        if trace is not None:
            context.trace = trace
            collector = StageCollector()
        if chunked is None:
            chunked = self.stream_chunking
        fingerprint = None
        if mode is ExecutionMode.COMPILED:
            # The per-query physical plan: chunk knobs, prefetch hints.  An
            # uninformed planner returns the historical defaults, so this
            # changes nothing until statistics or feedback exist.  One
            # fingerprint walk serves both the planner and the feedback
            # probe below (they share the compile cache's keying).
            fingerprint = term_fingerprint(expr) \
                if self.optimizer_config.planning else None
            context.physical_plan = self.plan_for(expr, fingerprint)
        spill_manager = None
        if governed:
            # The plan gate rides the plan the run was going to compute
            # anyway; the interpreter has no plan, so auto-spill never
            # triggers there (force with ``spill=True`` if needed).
            spill_manager = self._resolve_spill(
                spill, budget, getattr(context, "physical_plan", None))
            context.spill = spill_manager
        if mode is ExecutionMode.COMPILED and chunked:
            if chunk_policy is not None:
                context.chunk_policy = chunk_policy
            else:
                context.chunk_policy = context.physical_plan.chunk_policy(
                    is_remote=self.statistics_registry.is_remote)
                if self.optimizer_config.planning:
                    # Close the loop: a drained run feeds the ledger the
                    # next compilation of this (or a similarly-shaped) term
                    # re-plans from — keyed exactly like the compile cache.
                    # Runs under an EXPLICIT policy override record
                    # nothing: their per-chunk costs reflect the caller's
                    # forced knobs, and folding them in would contaminate
                    # the observations future planned runs are chosen from.
                    context.plan_probe = self.plan_feedback.probe(fingerprint)
            if collector is not None:
                # The profile tee: the real feedback probe (if any) keeps
                # seeing exactly the calls it always saw; the collector —
                # and, with a hub, the chunk-size histogram — ride along.
                # Forcing a probe here is what routes the pump through its
                # probe-timed branch, so per-stage timings exist even for
                # runs that record no feedback.
                sinks = [collector]
                hub = self.observability
                if hub is not None:
                    sinks.append(hub.chunk_sink())
                context.plan_probe = ProbeTee(context.plan_probe, *sinks)
            inner = self._stream_chunked(expr, bindings, context, fingerprint)
        else:
            inner = self._stream(expr, bindings, mode, context)
        if trace is not None:
            inner = self._observed_stream(inner, context, trace, collector)
        if not governed:
            return inner
        return self._governed_stream(inner, budget, owned, spill_manager,
                                     cancellation)

    def _observed_stream(self, inner: Iterator[object], context: EvalContext,
                         trace: QueryTrace,
                         collector: Optional[StageCollector]
                         ) -> Iterator[object]:
        """Count the run's yielded rows and finalize its profile at the end.

        The ``finally`` fires on exhaustion, error, *and* early ``close()``
        — the same discipline as the governed wrapper it nests inside, so
        the profile's spill books are read before settlement deletes them.
        """
        rows = 0
        status = "ok"
        started = time.perf_counter()
        try:
            for element in inner:
                rows += 1
                yield element
        except GeneratorExit:
            status = "closed"
            raise
        except BaseException as exc:
            status = type(exc).__name__
            raise
        finally:
            self._finalize_observed(context, trace,
                                    time.perf_counter() - started, status,
                                    float(rows), collector)

    def _governed_stream(self, inner: Iterator[object],
                         budget: Optional[MemoryBudget], owned: bool,
                         spill_manager: Optional[SpillManager],
                         cancellation: Optional[CancellationToken] = None
                         ) -> Iterator[object]:
        """Wrap a governed run's pipeline with its settlement finalizer.

        The ``finally`` fires on exhaustion, error, *and* early ``close()``
        — whichever way the consumer lets go, pool capacity returns and
        spill files are deleted.  Typed governance errors are counted in the
        engine ledger on their way out; a stream closed early *after* its
        token was cancelled (the server's ``cancel`` op tears down without
        draining into the error) counts as a cancellation too.
        """
        settled = False
        try:
            yield from inner
        except QueryCancelledError:
            settled = True
            self._count_governance("cancellations")
            raise
        except MemoryBudgetExceededError:
            settled = True
            self._count_governance("budget_rejections")
            raise
        else:
            settled = True
        finally:
            if (not settled and cancellation is not None
                    and cancellation.cancelled):
                self._count_governance("cancellations")
            self._finish_governed(budget, owned, spill_manager)

    def _stream_chunked(self, expr: A.Expr,
                        bindings: Optional[Dict[str, object]],
                        context: EvalContext,
                        fingerprint: Optional[Tuple] = None) -> Iterator[object]:
        environment = Environment(dict(bindings or {}))
        query = self.compiled_chunked(expr, context.statistics, fingerprint)
        context.statistics.execution_mode = (
            "compiled" if query.fully_compiled else "compiled+fallback")
        yield from query(environment, context)

    def _stream(self, expr: A.Expr, bindings: Optional[Dict[str, object]],
                mode: ExecutionMode, context: EvalContext) -> Iterator[object]:
        environment = Environment(dict(bindings or {}))
        if mode is ExecutionMode.COMPILED:
            stream_query = self.compiled_stream(expr, context.statistics)
            context.statistics.execution_mode = (
                "compiled" if stream_query.fully_compiled
                else "compiled+fallback")
            yield from stream_query(environment, context)
            return
        yield from self._stream_interpreted(expr, environment, context)

    def _stream_interpreted(self, expr: A.Expr, environment: Environment,
                            context: EvalContext) -> Iterator[object]:
        """The interpreter's pipelined path (top-level ``Ext`` only).

        Kept for mode parity: the outer loop is pipelined, the body is
        evaluated eagerly per element.  The evaluation scope still releases
        any cursor the body opened if the consumer abandons the stream
        mid-element.
        """
        context.statistics.execution_mode = "interpreted"
        with context.evaluation_scope():
            if type(expr) is A.Ext:
                evaluator = Evaluator(context)
                source = evaluator._eval(expr.source, environment)

                def evaluate_body(item):
                    return evaluator._eval(expr.body, environment.child(expr.var, item))

                iterator = iterate_source(source)
                # Set semantics: suppress repeats incrementally (CSet order
                # is first-occurrence order), so the stream matches the
                # eagerly built value element-for-element — same policy as
                # the compiled pipeline's set-kind stages.
                seen = set() if expr.kind == "set" else None
                token = context.cancellation
                budget = context.memory_budget
                try:
                    for item in iterator:
                        if token is not None:
                            token.raise_if_cancelled()
                        # Count the outer loop like the eager evaluator does,
                        # so a drained stream and execute() agree on
                        # elements_fetched (the differential harness pins it).
                        context.statistics.ext_iterations += 1
                        for element in iter_collection(materialise(evaluate_body(item))):
                            if seen is not None:
                                if element in seen:
                                    continue
                                seen.add(element)
                                if budget is not None:
                                    budget.charge_elements(1)
                            yield element
                finally:
                    close_source(iterator, source)
                return
            # Evaluate on *this* context (not via execute(), which would
            # rebind last_eval_statistics to a fresh object mid-stream and
            # orphan the statistics published at stream() time).
            result = Evaluator(context).evaluate(expr, environment)
            try:
                elements = iter_collection(result)
            except Exception:
                yield result
                return
            yield from elements
