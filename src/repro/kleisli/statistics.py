"""Statically registered statistics about remote sources.

"Several of the rules for join optimizations require statistics about the size
of files ... We have found it problematic to obtain such statistics on the fly
from remote sites, and are currently extending the system to use statically
stored statistics from commonly used data sources."  This registry is that
extension: per-driver (and per-table / per-division) cardinalities the join and
caching rule sets consult at compile time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["SourceStatisticsRegistry"]


class SourceStatisticsRegistry:
    """Cardinality estimates keyed by (driver name, collection name)."""

    DEFAULT_CARDINALITY = 1000

    def __init__(self) -> None:
        self._cardinalities: Dict[Tuple[str, str], int] = {}
        self._remote_latency: Dict[str, float] = {}

    def register_cardinality(self, driver: str, collection: str, rows: int) -> None:
        self._cardinalities[(driver, collection)] = rows

    def cardinality(self, driver: str, collection: str = "") -> int:
        if (driver, collection) in self._cardinalities:
            return self._cardinalities[(driver, collection)]
        if (driver, "") in self._cardinalities:
            return self._cardinalities[(driver, "")]
        return self.DEFAULT_CARDINALITY

    def has_cardinality(self, driver: str, collection: str = "") -> bool:
        return (driver, collection) in self._cardinalities or (driver, "") in self._cardinalities

    def register_latency(self, driver: str, seconds: float) -> None:
        self._remote_latency[driver] = seconds

    def latency(self, driver: str) -> float:
        return self._remote_latency.get(driver, 0.0)

    def is_remote(self, driver: str) -> bool:
        """A driver with registered latency is treated as remote by the parallel rules."""
        return self._remote_latency.get(driver, 0.0) > 0.0
