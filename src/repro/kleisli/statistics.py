"""Statically registered statistics about remote sources.

"Several of the rules for join optimizations require statistics about the size
of files ... We have found it problematic to obtain such statistics on the fly
from remote sites, and are currently extending the system to use statically
stored statistics from commonly used data sources."  This registry is that
extension: per-driver (and per-table / per-division) cardinalities the join and
caching rule sets consult at compile time.

Latency statistics come in two flavours: **registered** (the static
declaration the paper favours — an operator saying "this driver is remote,
expect ~80 ms per request") and **observed** (an exponential moving average
of actual request round-trips, fed by the engine's driver executor).  The
registered value always wins where both exist; observation fills the gap for
drivers nobody declared, so a measurably slow driver becomes remote for the
parallelism rules on later compilations without any configuration.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = ["SourceStatisticsRegistry"]


class SourceStatisticsRegistry:
    """Cardinality estimates keyed by (driver name, collection name)."""

    DEFAULT_CARDINALITY = 1000
    #: EMA weight of one new latency sample (higher = reacts faster).
    LATENCY_SAMPLE_WEIGHT = 0.2
    #: Samples below this (seconds) are discarded: a near-zero "round-trip"
    #: means the driver answered with a lazy cursor (the work — and the
    #: latency — is deferred to consumption), so the sample says nothing
    #: about the driver's real cost.  Folding such samples in would let a
    #: mixed eager/lazy driver's cursor dispatches decay a legitimately
    #: slow EMA below the remote threshold and demote exactly the driver
    #: whose eager requests need parallelism.
    LATENCY_SAMPLE_FLOOR = 0.001
    #: Observed per-request latency (seconds) above which an *undeclared*
    #: driver is treated as remote by the parallelism rules.  Deliberately
    #: far above a local in-process driver's dispatch cost, so only genuine
    #: network-ish round-trips flip a driver's classification.
    REMOTE_LATENCY_THRESHOLD = 0.05

    def __init__(self) -> None:
        self._cardinalities: Dict[Tuple[str, str], int] = {}
        self._remote_latency: Dict[str, float] = {}
        self._observed_latency: Dict[str, float] = {}
        # Drivers currently marked UNavailable (circuit breaker open or
        # half-open).  Fed by the engine's breaker-event hook; consulted by
        # the planner so batched scans stop being routed at tripped sources.
        # Absence means available — the common case stays allocation-free.
        self._unavailable: set = set()
        # One lock guards EVERY mutable map (the _CompileCache discipline):
        # latency samples arrive from scheduler worker threads (a
        # ParallelExt body's scans all route through the engine's driver
        # executor) while the consumer thread registers drivers or the
        # planner reads — an unguarded dict being resized under a concurrent
        # read can raise, and the EMA's read-modify-write would lose samples.
        self._lock = threading.Lock()

    def register_cardinality(self, driver: str, collection: str, rows: int) -> None:
        with self._lock:
            self._cardinalities[(driver, collection)] = rows

    def cardinality(self, driver: str, collection: str = "") -> int:
        with self._lock:
            if (driver, collection) in self._cardinalities:
                return self._cardinalities[(driver, collection)]
            if (driver, "") in self._cardinalities:
                return self._cardinalities[(driver, "")]
            return self.DEFAULT_CARDINALITY

    def has_cardinality(self, driver: str, collection: str = "") -> bool:
        with self._lock:
            return (driver, collection) in self._cardinalities \
                or (driver, "") in self._cardinalities

    def register_latency(self, driver: str, seconds: float) -> None:
        with self._lock:
            self._remote_latency[driver] = seconds

    def latency(self, driver: str) -> float:
        """Best latency estimate: the registered value, else the observed EMA."""
        with self._lock:
            registered = self._remote_latency.get(driver)
            if registered is not None:
                return registered
            return self._observed_latency.get(driver, 0.0)

    def has_latency(self, driver: str) -> bool:
        """Is anything known about this driver's latency (declared or
        observed)?  The planner treats either as source knowledge —
        including an explicit ``0.0`` declaration, which is the operator
        *pinning* the driver local, not an absence of information."""
        with self._lock:
            return driver in self._remote_latency \
                or driver in self._observed_latency

    def record_latency_sample(self, driver: str, seconds: float) -> None:
        """Fold one observed request round-trip into the driver's latency EMA.

        The engine's driver executor calls this for every successful request
        it routes, so the estimate tracks the driver's actual behaviour with
        no per-driver configuration.  Sub-floor samples (lazy-cursor
        dispatches, see :data:`LATENCY_SAMPLE_FLOOR`) are discarded.
        """
        if seconds < self.LATENCY_SAMPLE_FLOOR:
            return
        with self._lock:
            previous = self._observed_latency.get(driver)
            if previous is None:
                self._observed_latency[driver] = seconds
            else:
                weight = self.LATENCY_SAMPLE_WEIGHT
                self._observed_latency[driver] = (
                    previous * (1.0 - weight) + seconds * weight)

    def observed_latency(self, driver: str) -> float:
        """The EMA of observed request round-trips (0.0 before any sample)."""
        with self._lock:
            return self._observed_latency.get(driver, 0.0)

    def set_available(self, driver: str, available: bool) -> None:
        """Mark a driver (un)available — the breaker's trip/close events.

        Availability is *advisory* planner knowledge, not an admission
        gate: requests still dispatch (and the breaker itself rejects
        them); the planner merely stops choosing batching-aggressive plans
        for a source the breaker has proved down.
        """
        with self._lock:
            if available:
                self._unavailable.discard(driver)
            else:
                self._unavailable.add(driver)

    def is_available(self, driver: str) -> bool:
        """Is the driver's circuit closed (or breaker-less)?  Default True."""
        with self._lock:
            return driver not in self._unavailable

    def snapshot(self) -> Dict[str, object]:
        """A consistent plain-data export for the plan store.

        Only *learned* state is exported: registered cardinalities (an
        operator's declarations, worth sharing across workers) and the
        observed latency EMAs.  Registered latencies and breaker-fed
        availability are deliberately excluded — declarations belong to
        each process's configuration, and availability is live circuit
        state that must never outlive the breaker that proved it.
        """
        with self._lock:
            return {"cardinalities": [
                        [driver, collection, rows]
                        for (driver, collection), rows
                        in sorted(self._cardinalities.items())],
                    "observed_latency": dict(self._observed_latency)}

    def restore(self, state: Dict[str, object]) -> int:
        """Fill gaps from persisted state; what this process knows wins.

        A cardinality registered in this process, or a latency already
        observed here, is never overwritten by history.  Malformed entries
        are skipped, not raised.  Returns how many entries were adopted.
        """
        adopted = 0
        cardinalities = state.get("cardinalities") or []
        observed = state.get("observed_latency") or {}
        with self._lock:
            for entry in cardinalities:
                try:
                    driver, collection, rows = entry
                    key = (str(driver), str(collection))
                    rows = int(rows)
                except (TypeError, ValueError):
                    continue
                if key not in self._cardinalities:
                    self._cardinalities[key] = rows
                    adopted += 1
            for driver, ema in dict(observed).items():
                try:
                    driver = str(driver)
                    ema = float(ema)
                except (TypeError, ValueError):
                    continue
                if ema >= 0.0 and driver not in self._observed_latency:
                    self._observed_latency[driver] = ema
                    adopted += 1
        return adopted

    def is_remote(self, driver: str) -> bool:
        """Is this driver remote, for the parallelism rules?

        A registered latency is an explicit declaration and always wins —
        including ``0.0``, which pins a driver local no matter how slow it
        is measured.  Without a declaration, a driver whose observed
        round-trip EMA exceeds :data:`REMOTE_LATENCY_THRESHOLD` is promoted
        to remote, so its inner loops get parallelised on later queries.
        """
        with self._lock:
            registered = self._remote_latency.get(driver)
            if registered is not None:
                return registered > 0.0
            return self._observed_latency.get(driver, 0.0) >= self.REMOTE_LATENCY_THRESHOLD
