"""The driver protocol.

A driver has:

* a **name** (the name it is registered under — ``"GDB"``, ``"GenBank"`` ...),
* a set of **capabilities** the optimizer's pushdown rules consult
  (``"sql"`` — accepts SQL text and understands ``columns`` / ``where``
  requests; ``"path"`` — accepts path-extraction expressions; ``"links"`` —
  serves precomputed neighbour links; ``"index-select"`` — boolean index
  queries),
* an :meth:`~Driver.execute` method taking a plain request dictionary and
  returning CPL values (or a :class:`~repro.kleisli.tokens.TokenStream`),
* a set of **CPL functions** (:class:`DriverFunction`) the session binds when
  the driver is registered — e.g. ``GDB``, ``GDB-Tab`` for a relational driver
  — each of which is compiled into a :class:`~repro.core.nrc.ast.Scan` so the
  optimizer can rewrite the request.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence

from ...core.errors import DriverError
from ...core.values import Record, to_python

__all__ = ["Driver", "DriverFunction"]


class DriverFunction:
    """Describes one CPL-callable entry point of a driver.

    ``request_template`` holds the constant part of the Scan request;
    ``argument_key`` names the request key the function's CPL argument fills
    in.  When ``argument_is_record`` is true the argument is a record whose
    fields are merged into the request (``GDB([query = ...])``); otherwise the
    argument value is stored under ``argument_key`` (``GDB-Tab("locus")``).
    """

    def __init__(self, name: str, request_template: Mapping[str, object],
                 argument_key: Optional[str] = None, argument_is_record: bool = False,
                 result_kind: str = "set", doc: str = ""):
        self.name = name
        self.request_template = dict(request_template)
        self.argument_key = argument_key
        self.argument_is_record = argument_is_record
        self.result_kind = result_kind
        self.doc = doc

    def build_request(self, argument: object) -> Dict[str, object]:
        """Build a concrete request from an evaluated CPL argument value."""
        request = dict(self.request_template)
        if self.argument_is_record:
            if not isinstance(argument, Record):
                raise DriverError(
                    f"driver function {self.name!r} expects a record argument"
                )
            for label, value in argument.items():
                request[label] = to_python(value)
        elif self.argument_key is not None:
            request[self.argument_key] = to_python(argument) \
                if isinstance(argument, Record) else argument
        return request


class Driver:
    """Base class for Kleisli drivers."""

    #: Capability tags the optimizer's pushdown rules look at.
    capabilities: FrozenSet[str] = frozenset()

    #: Set by drivers whose native :meth:`execute_batch` performs ONE wire
    #: round-trip for the whole batch (e.g. the relational driver's
    #: ``call_batch``).  The engine then records no per-request latency
    #: sample for batched dispatch — the batch elapsed time has no sound
    #: per-request decomposition.  Drivers whose native batch still performs
    #: per-request work (the flat-file driver's cached reads) leave this
    #: False: the mean per-request elapsed IS their true per-request cost,
    #: and feeds the observed-latency EMA like individual requests would.
    batch_single_round_trip: bool = False

    def __init__(self, name: str):
        self.name = name
        self.request_count = 0
        self.session_open = False

    # -- session management (the paper's "logging in / logging out") ---------------

    def open(self) -> None:
        self.session_open = True

    def close(self) -> None:
        self.session_open = False

    # -- requests ----------------------------------------------------------------

    def execute(self, request: Mapping[str, object]):
        """Satisfy a request; subclasses implement :meth:`_execute`."""
        self.request_count += 1
        return self._execute(dict(request))

    def execute_batch(self, requests: Sequence[Mapping[str, object]]) -> List[object]:
        """Satisfy several requests in one call (the chunked pipeline's
        batched fetch extension point).

        The engine's ``driver_executor_batch`` routes a whole chunk's worth
        of Scan requests here.  The contract: result ``i`` corresponds to
        request ``i``, exactly as ``len(requests)`` separate
        :meth:`execute` calls would produce — which is also the default
        implementation, so drivers need not opt in.  Drivers with a cheaper
        native form override this: the relational driver ships the batch
        over one remote round-trip, the flat-file driver reads each distinct
        file once per batch.
        """
        return [self.execute(request) for request in requests]

    def _execute(self, request: Dict[str, object]):
        raise NotImplementedError

    # -- CPL integration -------------------------------------------------------------

    def cpl_functions(self) -> List[DriverFunction]:
        """The CPL-callable functions this driver contributes to a session."""
        return []

    def collection_names(self) -> List[str]:
        """Names of the collections (tables, divisions, classes) this driver serves."""
        return []

    def cardinality(self, collection: str) -> Optional[int]:
        """Best-known size of a collection, for the statistics registry."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r})"
