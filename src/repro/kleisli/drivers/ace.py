"""The ACE driver: class scans and object fetches, preserving object identity.

Request vocabulary::

    {"class": "Locus"}                      -- all objects of a class, as records
    {"class": "Locus", "object": "D22S1"}   -- one object
    {"classes": True}                        -- the class catalogue

Object references inside results are CPL :class:`~repro.core.values.Ref`
values bound to the underlying store, so CPL's dereferencing (``!r`` and
reference patterns) resolves through the driver's database.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...ace.database import AceDatabase
from ...core.errors import DriverError
from ...core.values import CSet
from .base import Driver, DriverFunction

__all__ = ["AceDriver"]


class AceDriver(Driver):
    """Drives an :class:`repro.ace.database.AceDatabase`."""

    capabilities = frozenset({"class-scan", "object-identity"})

    def __init__(self, name: str, database: AceDatabase):
        super().__init__(name)
        self.database = database

    def _execute(self, request: Dict[str, object]):
        if request.get("classes"):
            return CSet(self.database.class_names())
        class_name = request.get("class")
        if class_name is None:
            raise DriverError(
                f"ACE driver {self.name!r} needs a 'class' or 'classes' request, got {sorted(request)}"
            )
        if "object" in request:
            obj = self.database.get(str(class_name), str(request["object"]))
            return obj.to_record(self.database)
        return self.database.scan(str(class_name))

    def cpl_functions(self) -> List[DriverFunction]:
        return [
            DriverFunction(f"{self.name}-Class", {}, argument_key="class",
                           doc=f"scan every object of a class in {self.name}"),
            DriverFunction(self.name, {}, argument_is_record=True,
                           doc=f"send a raw request (e.g. [class = ..., object = ...]) to {self.name}"),
        ]

    def collection_names(self) -> List[str]:
        return self.database.class_names()

    def cardinality(self, collection: str) -> Optional[int]:
        if collection in self.database.classes:
            return len(self.database.classes[collection])
        return None
