"""Kleisli data drivers.

"Once registered in Kleisli, the data drivers perform the task of logging into
a specific data source, sending queries in the native form for that source,
[and] returning results to Kleisli in internal Kleisli value syntax."  Each
driver here wraps one substrate:

* :class:`RelationalDriver` — SQL against :class:`repro.relational.Database`
  (the Sybase/GDB driver); the pushdown target of experiment E4.
* :class:`EntrezDriver` — index selection + path pruning against
  :class:`repro.asn1.entrez.EntrezServer` (the GenBank driver); experiment E5.
* :class:`AceDriver` — class scans and object fetches with object identity.
* :class:`FlatFileDriver` — FASTA / EMBL / GCG / tabular files.
* :class:`BlastDriver` — the sequence-analysis "application program".
"""

from .base import Driver, DriverFunction
from .relational import RelationalDriver
from .entrez import EntrezDriver
from .ace import AceDriver
from .flatfile import FlatFileDriver
from .blast import BlastDriver

__all__ = [
    "Driver", "DriverFunction",
    "RelationalDriver", "EntrezDriver", "AceDriver", "FlatFileDriver", "BlastDriver",
]
