"""The flat-file driver: FASTA, EMBL, GCG and tab-delimited files.

Request vocabulary::

    {"format": "fasta", "file": "/path/to/file.fa"}
    {"format": "fasta", "text": ">x\\nACGT"}          -- inline text instead of a file
    {"format": "embl", ...} / {"format": "gcg", ...} / {"format": "tabular", ...}
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ...core.errors import DriverError
from ...core.values import CList, CSet, Record
from ...formats.embl import embl_to_cpl, read_embl
from ...formats.fasta import fasta_to_cpl, read_fasta
from ...formats.gcg import read_gcg
from ...formats.tabular import read_tabular
from .base import Driver, DriverFunction

__all__ = ["FlatFileDriver"]


class FlatFileDriver(Driver):
    """Reads formatted files into CPL values."""

    capabilities = frozenset({"formats"})

    def __init__(self, name: str = "Files", root: Optional[str] = None):
        super().__init__(name)
        self.root = root

    def execute_batch(self, requests):
        """Native batched fetch: each distinct file is read once per batch.

        A chunk of Scan requests frequently targets the same flat file with
        different parse parameters; caching the raw text for the duration of
        the batch turns K reads of one file into one, while results keep
        request order and per-request shape (``Driver.execute_batch``'s
        contract).
        """
        text_cache: Dict[str, str] = {}
        results = []
        for request in requests:
            self.request_count += 1
            request = dict(request)
            if "text" not in request and "file" in request:
                path = str(request["file"])
                if path not in text_cache:
                    text_cache[path] = self._load_text(request)
                request["text"] = text_cache[path]
            results.append(self._execute(request))
        return results

    def _execute(self, request: Dict[str, object]):
        text = self._load_text(request)
        format_name = str(request.get("format", "fasta")).lower()
        if format_name == "fasta":
            return fasta_to_cpl(read_fasta(text))
        if format_name == "embl":
            return embl_to_cpl(read_embl(text))
        if format_name == "gcg":
            record = read_gcg(text)
            return Record({"name": record.name, "length": record.length,
                           "checksum": record.checksum, "comment": record.comment,
                           "sequence": record.sequence})
        if format_name == "tabular":
            return read_tabular(text)
        raise DriverError(f"flat-file driver does not understand format {format_name!r}")

    def _load_text(self, request: Dict[str, object]) -> str:
        if "text" in request:
            return str(request["text"])
        if "file" not in request:
            raise DriverError("flat-file request needs a 'file' path or inline 'text'")
        path = str(request["file"])
        if self.root is not None and not os.path.isabs(path):
            path = os.path.join(self.root, path)
        if not os.path.exists(path):
            raise DriverError(f"flat file {path!r} does not exist")
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def cpl_functions(self) -> List[DriverFunction]:
        return [
            DriverFunction(f"{self.name}-Read", {}, argument_is_record=True,
                           doc="read a formatted file: [format = \"fasta\", file = ...]"),
        ]
