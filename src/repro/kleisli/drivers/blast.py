"""The sequence-analysis ("BLAST") driver.

The paper's system reaches sequence-analysis packages such as BLAST and FASTA
through the same driver mechanism as databases.  This driver wraps the local
Smith–Waterman/k-mer search over a named sequence library.

Request vocabulary::

    {"query": "ACGT...", "min_score": 30, "max_hits": 10}
    {"query_id": "M81409", ...}      -- use a library sequence as the query
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ...bio.similarity import similarity_search
from ...core.errors import DriverError
from ...core.values import CSet, Record
from .base import Driver, DriverFunction

__all__ = ["BlastDriver"]


class BlastDriver(Driver):
    """Searches a query sequence against an in-memory library."""

    capabilities = frozenset({"similarity"})

    def __init__(self, name: str, library: Mapping[str, str],
                 default_min_score: int = 30):
        super().__init__(name)
        self.library: Dict[str, str] = dict(library)
        self.default_min_score = default_min_score

    def _execute(self, request: Dict[str, object]):
        if "query" in request:
            query = str(request["query"])
        elif "query_id" in request:
            query_id = str(request["query_id"])
            if query_id not in self.library:
                raise DriverError(f"library has no sequence named {query_id!r}")
            query = self.library[query_id]
        else:
            raise DriverError("BLAST request needs a 'query' sequence or a 'query_id'")
        min_score = int(request.get("min_score", self.default_min_score))
        max_hits = request.get("max_hits")
        hits = similarity_search(query, self.library, min_score=min_score,
                                 max_hits=int(max_hits) if max_hits is not None else None)
        return CSet(
            Record({"subject": hit.subject_id, "score": hit.score,
                    "identity": round(hit.identity, 4), "kmer_hits": hit.kmer_hits})
            for hit in hits
        )

    def cpl_functions(self) -> List[DriverFunction]:
        return [
            DriverFunction(self.name, {}, argument_is_record=True,
                           doc="run a similarity search: [query = ..., min_score = ...]"),
            DriverFunction(f"{self.name}-Search", {}, argument_key="query",
                           doc="run a similarity search on a raw query sequence"),
        ]

    def collection_names(self) -> List[str]:
        return sorted(self.library)

    def cardinality(self, collection: str) -> Optional[int]:
        return len(self.library)
