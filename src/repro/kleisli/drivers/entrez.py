"""The ASN.1 / Entrez (GenBank) driver.

Request vocabulary::

    {"db": "na", "select": "accession M81409", "path": "Seq-entry.seq.id..giim"}
        index selection, with optional pruning-during-parse by path
    {"db": "na", "select": "...", "uids": True}
        return matching UIDs only
    {"db": "na", "fetch": <uid>, "path": ...}
        fetch one entry (optionally pruned)
    {"db": "na", "links": <uid>}
        precomputed neighbour links (NA-Links)

Because Entrez has no server-side query language, the only things that can be
"pushed" to this driver are the index query and the path — which is exactly
what the paper's optimizer migrates (experiment E5).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ...asn1.entrez import EntrezServer
from ...core.errors import DriverError
from ...core.values import CSet, Record, from_python
from ...net.remote import RemoteSource
from ..tokens import TokenStream
from .base import Driver, DriverFunction

__all__ = ["EntrezDriver"]


class EntrezDriver(Driver):
    """Drives an :class:`repro.asn1.entrez.EntrezServer`, optionally through a remote wrapper."""

    capabilities = frozenset({"index-select", "path", "links"})

    def __init__(self, name: str, server: EntrezServer,
                 remote: Optional[RemoteSource] = None, lazy: bool = False):
        super().__init__(name)
        self.server = server
        self.remote = remote
        self.lazy = lazy

    @classmethod
    def with_latency(cls, name: str, server: EntrezServer, latency: float = 0.02,
                     max_concurrent_requests: int = 5, lazy: bool = False) -> "EntrezDriver":
        """Build a driver whose server sits behind a simulated remote link."""
        remote = RemoteSource(
            name,
            lambda method, *args, **kwargs: getattr(server, method)(*args, **kwargs),
            latency=latency,
            max_concurrent_requests=max_concurrent_requests,
        )
        return cls(name, server, remote=remote, lazy=lazy)

    def _call(self, method: str, *args, **kwargs):
        if self.remote is not None:
            return self.remote.call(method, *args, **kwargs)
        return getattr(self.server, method)(*args, **kwargs)

    def _execute(self, request: Dict[str, object]):
        db = str(request.get("db", "na"))
        if request.get("links") is not None and request.get("links") is not False:
            uid = request["links"] if not isinstance(request.get("links"), bool) else request.get("uid")
            if uid is None:
                raise DriverError("links request needs a 'links' or 'uid' value")
            link_rows = self._call("links", db, int(uid))
            return CSet(Record({key: from_python(value) for key, value in row.items()})
                        for row in link_rows)
        if "fetch" in request:
            value = self._call("fetch", db, int(request["fetch"]),
                               request.get("path") or None)
            return from_python(value) if not _is_cpl(value) else value
        if "select" in request:
            if request.get("uids"):
                uids = self._call("query_uids", db, str(request["select"]))
                return CSet(uids)
            values = self._call("query", db, str(request["select"]),
                                request.get("path") or None)
            lifted = [value if _is_cpl(value) else from_python(value) for value in values]
            # A path ending on a collection (e.g. ...id..giim) yields one set per
            # entry; the driver returns their union so generators iterate the ids
            # themselves, as in the paper's ASN-IDs example.
            if lifted and all(isinstance(value, (CSet,)) or
                              type(value).__name__ in ("CBag", "CList") for value in lifted):
                flattened = []
                for value in lifted:
                    flattened.extend(value)
                lifted = flattened
            if self.lazy:
                return TokenStream(iter(lifted), kind="set")
            return CSet(lifted)
        raise DriverError(
            f"Entrez driver {self.name!r} needs a 'select', 'fetch' or 'links' request, "
            f"got {sorted(request)}"
        )

    # -- CPL integration ---------------------------------------------------------------

    def cpl_functions(self) -> List[DriverFunction]:
        return [
            DriverFunction(self.name, {}, argument_is_record=True,
                           doc=f"send an index-selection request to {self.name} "
                               "(e.g. [db = \"na\", select = ..., path = ...])"),
            DriverFunction("NA-Links", {"db": "na"}, argument_key="links",
                           doc="precomputed similarity links for an ASN.1 sequence id"),
        ]

    def collection_names(self) -> List[str]:
        return sorted(self.server.divisions)

    def cardinality(self, collection: str) -> Optional[int]:
        if collection in self.server.divisions:
            return len(self.server.divisions[collection])
        return None


def _is_cpl(value: object) -> bool:
    from ...core.values import CBag, CList, CSet, Record, Unit, Variant

    return isinstance(value, (Record, Variant, CSet, CBag, CList, Unit, str, int, float, bool))
