"""The relational (Sybase-style) driver.

Request vocabulary (what :class:`~repro.core.nrc.ast.Scan` nodes carry):

``{"query": "<sql text>"}``
    Ship SQL to the server verbatim (the fully pushed-down form of E4).
``{"table": "<name>"}``
    Scan a whole table.
``{"table": "<name>", "columns": [...], "where": [{"column", "op", "value"}...]}``
    Scan with server-side projection and selection (the partial pushdown form).

Results come back as a set of CPL records.  When ``lazy`` is enabled the
driver returns a :class:`~repro.kleisli.tokens.TokenStream` so the evaluator
can pipeline (fast first response); materialising consumers are unaffected.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ...core.errors import DriverError
from ...core.values import CSet, Record, from_python
from ...net.remote import RemoteSource
from ...relational.database import Database
from ..tokens import TokenStream
from .base import Driver, DriverFunction

__all__ = ["RelationalDriver"]

_WHERE_OPS = {"=": "=", "eq": "=", "<>": "<>", "neq": "<>", "<": "<", "<=": "<=",
              ">": ">", ">=": ">="}


class RelationalDriver(Driver):
    """Drives a :class:`repro.relational.Database`, optionally through a remote wrapper."""

    capabilities = frozenset({"sql", "columns", "where"})
    #: The native execute_batch ships the whole batch in one remote
    #: round-trip (call_batch), so no per-request latency decomposition of
    #: a batch is sound (see Driver.batch_single_round_trip).
    batch_single_round_trip = True

    def __init__(self, name: str, database: Database,
                 remote: Optional[RemoteSource] = None, lazy: bool = False):
        super().__init__(name)
        self.database = database
        self.remote = remote
        self.lazy = lazy

    @classmethod
    def with_latency(cls, name: str, database: Database, latency: float = 0.02,
                     max_concurrent_requests: int = 5, lazy: bool = False) -> "RelationalDriver":
        """Build a driver whose database sits behind a simulated remote link."""
        remote = RemoteSource(name, database.sql, latency=latency,
                              max_concurrent_requests=max_concurrent_requests)
        return cls(name, database, remote=remote, lazy=lazy)

    # -- request handling -----------------------------------------------------------

    def _execute(self, request: Dict[str, object]):
        if "query" in request:
            rows = self._run(str(request["query"]))
        elif "table" in request:
            rows = self._run(self._build_sql(request))
        else:
            raise DriverError(
                f"relational driver {self.name!r} needs a 'query' or 'table' request, "
                f"got {sorted(request)}"
            )
        return self._rows_to_result(rows)

    def execute_batch(self, requests):
        """Native batched fetch: one remote round-trip for the whole batch.

        Each request is compiled to SQL up front, the statements ship
        together over :meth:`~repro.net.remote.RemoteSource.call_batch`
        (one admission slot, one latency charge), and results come back in
        request order with the same per-request shape as :meth:`execute` —
        the chunked pipeline's ``Driver.execute_batch`` contract.  Without
        a remote wrapper the database is local and looping is already
        optimal, so the default applies.
        """
        if self.remote is None:
            return [self.execute(request) for request in requests]
        statements = []
        for request in requests:
            self.request_count += 1
            request = dict(request)
            if "query" in request:
                statements.append(str(request["query"]))
            elif "table" in request:
                statements.append(self._build_sql(request))
            else:
                raise DriverError(
                    f"relational driver {self.name!r} needs a 'query' or 'table' "
                    f"request, got {sorted(request)}"
                )
        return [self._rows_to_result(rows)
                for rows in self.remote.call_batch(statements)]

    def _rows_to_result(self, rows: List[Dict[str, object]]):
        records = (Record({key: from_python(value) for key, value in row.items()})
                   for row in rows)
        if self.lazy:
            return TokenStream(records, kind="set")
        return CSet(records)

    def _run(self, sql: str) -> List[Dict[str, object]]:
        if self.remote is not None:
            return self.remote.call(sql)
        return self.database.sql(sql)

    def _build_sql(self, request: Dict[str, object]) -> str:
        table = str(request["table"])
        columns = request.get("columns")
        select_list = ", ".join(columns) if columns else "*"
        sql = f"select {select_list} from {table}"
        conditions = []
        for condition in request.get("where", []):
            column = condition["column"]
            op = _WHERE_OPS.get(str(condition.get("op", "=")))
            if op is None:
                raise DriverError(f"unsupported pushdown operator {condition.get('op')!r}")
            conditions.append(f"{column} {op} {self._literal(condition['value'])}")
        if conditions:
            sql += " where " + " and ".join(conditions)
        return sql

    @staticmethod
    def _literal(value: object) -> str:
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, bool):
            raise DriverError("boolean literals cannot be pushed into SQL")
        if value is None:
            return "null"
        return repr(value)

    # -- CPL integration ---------------------------------------------------------------

    def cpl_functions(self) -> List[DriverFunction]:
        return [
            DriverFunction(self.name, {}, argument_is_record=True,
                           doc=f"send a raw request (e.g. [query = ...]) to {self.name}"),
            DriverFunction(f"{self.name}-Tab", {}, argument_key="table",
                           doc=f"scan a whole table of {self.name} by name"),
        ]

    def collection_names(self) -> List[str]:
        return self.database.table_names()

    def cardinality(self, collection: str) -> Optional[int]:
        if self.database.has_table(collection):
            return len(self.database.table(collection))
        return None
