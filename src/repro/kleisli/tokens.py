"""Token streams.

"Token streams are important for passing data between CPL and the underlying
data sources, and provide Kleisli the mechanisms for laziness, pipelining and
fast response."  A :class:`TokenStream` wraps an iterator of CPL values coming
out of a driver; the evaluator can consume it incrementally (so the first
result of a query is available before the source is exhausted), and anything
that needs the whole collection can materialise it once.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, List, Optional

from ..core.errors import EvaluationError
from ..core.values import CList, CSet, make_collection

__all__ = ["TokenStream"]


class TokenStream:
    """A lazily produced stream of CPL values with a declared collection kind.

    The stream can be iterated exactly once lazily; :meth:`to_collection`
    buffers what has been produced and returns the complete collection.  The
    ``first_item_callback`` hook is used by benchmarks to timestamp the moment
    the first element crosses the driver boundary (response time).
    """

    def __init__(self, items: Iterable[object], kind: str = "set",
                 first_item_callback: Optional[Callable[[], None]] = None):
        self._iterator = iter(items)
        self.kind = kind
        self._buffer: List[object] = []
        self._exhausted = False
        self._closed = False
        self._first_seen = False
        self._first_item_callback = first_item_callback
        self._lock = threading.Lock()

    def __iter__(self) -> Iterator[object]:
        for item in self._buffer:
            yield item
        while True:
            with self._lock:
                if self._exhausted:
                    return
                if self._closed:
                    raise EvaluationError(
                        "token stream was closed before being drained")
                try:
                    item = next(self._iterator)
                except StopIteration:
                    self._exhausted = True
                    return
                self._buffer.append(item)
                if not self._first_seen:
                    self._first_seen = True
                    if self._first_item_callback is not None:
                        self._first_item_callback()
            yield item

    def to_collection(self):
        """Force the stream and return it as a collection of its declared kind."""
        remaining = list(self)
        return make_collection(self.kind, self._buffer if self._exhausted else remaining)

    def close(self) -> None:
        """Stop the stream and release its underlying cursor.

        Called by the engine when a pipelined query is abandoned before the
        source is exhausted; a driver generator's ``finally`` blocks run so
        its cursors do not stay open.  A closed (but not exhausted) stream is
        poisoned: iterating or materialising it raises rather than silently
        presenting the partial buffer as the complete collection.  Closing an
        already-drained stream is a no-op.
        """
        with self._lock:
            if self._exhausted or self._closed:
                return
            self._closed = True
            close = getattr(self._iterator, "close", None)
            if close is not None:
                close()

    def materialised_count(self) -> int:
        """How many elements have crossed the driver boundary so far."""
        return len(self._buffer)

    @property
    def exhausted(self) -> bool:
        """True once the underlying cursor has been fully drained."""
        return self._exhausted

    @property
    def closed(self) -> bool:
        """True if the stream was closed before being drained (poisoned)."""
        return self._closed

    def __enter__(self) -> "TokenStream":
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager support: releases the cursor on exit.

        This is the same contract an :class:`~repro.core.nrc.eval.EvalScope`
        applies when the engine registers the stream inside a pipelined run —
        a drained stream is untouched, an abandoned one is closed.
        """
        self.close()
