"""Disk-backed degradation for the engine's unbounded materialization points.

When a query's memory budget says an in-memory materialization will not fit
(plan-gated up front: estimated rows × nominal row bytes vs. the budget),
the engine attaches a :class:`SpillManager` to the run's ``EvalContext`` and
the two biggest offenders degrade to hash-partitioned disk runs instead of
dying with a budget rejection:

``SpilledList``
    A multi-pass sequence for blocked-join build sides: a small in-memory
    tail buffer, flushed as pickled batches into an unnamed temporary file
    using the plan store's length+CRC32 framing codec
    (:func:`repro.core.planner.store.frame_payload`).  Iteration replays the
    file runs then the tail, preserving exact order — bit-for-bit parity
    with the in-memory list it replaces.

``GovernedSeenSet``
    An exact, bounded-memory dedup set for set/union semantics: an
    in-memory front set up to a threshold, then a compact hash index plus
    :data:`PARTITIONS` hash-partitioned value files.  A probe whose hash is
    absent is *definitely* new (no disk touch — the common case); a hash
    hit loads one partition and scans for true equality, so deduplication
    stays exact under hash collisions.

``SpilledIndex``
    A hash-partitioned (key → rows) index for indexed joins: build appends
    framed (key, row) pairs to the key-hash partition; probe loads one
    partition dict at a time with a single-partition cache, so probe
    locality in the outer stream costs one partition load per key cluster.

All three retain unpicklable values in memory (counted in the manager's
``spill_fallbacks`` book) — spilling degrades capacity, never correctness.
Spill files are process-private ``tempfile.TemporaryFile`` handles, deleted
by the OS on close; :meth:`SpillManager.close` runs in the engine's run
finalizer, and the manager's books (spills, bytes_spilled) fold into the
:class:`~repro.kleisli.governance.QueryGovernor` ledger.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import EvaluationError
from ..core.planner.store import frame_payload, unframe_payload

__all__ = [
    "SpillManager",
    "SpilledList",
    "GovernedSeenSet",
    "SpilledIndex",
    "PARTITIONS",
    "SPILL_FRAME_MAX",
]

#: Hash partitions for the seen-set and join-index backends.
PARTITIONS = 16

#: Per-frame ceiling for spill runs — wider than the plan store's 4 MiB
#: record cap because a spill batch carries many values per frame.
SPILL_FRAME_MAX = 64 * 1024 * 1024

_HEADER_BYTES = 8  # the codec's ">II" length + CRC32 prefix


def _read_frames(handle) -> Iterator[bytes]:
    """Replay every framed payload in ``handle`` from the start.

    The caller owns positioning (flush + seek happen here); corruption in a
    spill file is a hard error — unlike the plan store, these are our own
    single-process temp files, and skipping a damaged run would silently
    drop result rows.
    """
    handle.flush()
    handle.seek(0)
    while True:
        header = handle.read(_HEADER_BYTES)
        if not header:
            break
        if len(header) < _HEADER_BYTES:
            raise EvaluationError("spill file truncated mid-header")
        length = int.from_bytes(header[:4], "big")
        payload = handle.read(length)
        if len(payload) < length:
            raise EvaluationError("spill file truncated mid-payload")
        verified, _ = unframe_payload(header + payload, 0,
                                      max_bytes=SPILL_FRAME_MAX)
        if verified is None:
            raise EvaluationError("spill file failed CRC verification")
        yield verified


class _SpillBacked:
    """Shared plumbing: a lazily-opened temp file plus manager bookkeeping."""

    def __init__(self, manager: "SpillManager"):
        self._manager = manager
        self._touched_disk = False

    def _open_file(self):
        handle = tempfile.TemporaryFile(
            prefix="kleisli-spill-", dir=self._manager.directory)
        self._manager._register_file(handle)
        if not self._touched_disk:
            self._touched_disk = True
            self._manager._count_spill()
        return handle

    def _write_frame(self, handle, payload: bytes, rows: int = 1) -> None:
        frame = frame_payload(payload, max_bytes=SPILL_FRAME_MAX)
        handle.seek(0, 2)  # append; a prior probe may have repositioned
        handle.write(frame)
        self._manager._record_spill(len(frame), rows)


class SpilledList(_SpillBacked):
    """A multi-pass, append-only sequence with a bounded in-memory tail.

    Exact iteration order is preserved: file runs replay in append order,
    then the unflushed tail.  Unpicklable batches are retained in memory
    (order intact — retained runs remember their position in the sequence
    of runs) so spilling never changes the values produced.
    """

    def __init__(self, manager: "SpillManager", buffer_elements: int):
        super().__init__(manager)
        self._buffer_elements = max(1, buffer_elements)
        self._buffer: List[Any] = []
        self._handle = None
        # Runs in append order: ("disk", flushed_count) | ("memory", values).
        # Disk runs all live in one file in order, so replaying the file
        # interleaved with memory runs reconstructs the exact sequence.
        self._runs: List[Tuple[str, Any]] = []
        self._length = 0

    def append(self, value: Any) -> None:
        self._buffer.append(value)
        self._length += 1
        if len(self._buffer) >= self._buffer_elements:
            self._flush()

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def _flush(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        try:
            payload = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._manager._record_fallback()
            self._runs.append(("memory", batch))
            return
        if self._handle is None:
            self._handle = self._open_file()
        self._write_frame(self._handle, payload, rows=len(batch))
        self._runs.append(("disk", len(batch)))

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Any]:
        disk_frames = _read_frames(self._handle) if self._handle is not None \
            else iter(())
        for kind, run in self._runs:
            if kind == "disk":
                yield from pickle.loads(next(disk_frames))
            else:
                yield from run
        yield from self._buffer


class GovernedSeenSet(_SpillBacked):
    """An exact dedup set whose value storage spills past a threshold.

    Below ``memory_elements`` this is a plain set.  Past it, values move to
    :data:`PARTITIONS` hash partitions on disk and memory holds only the
    (int) hash index plus a single cached partition — membership stays
    exact because a hash hit always verifies equality against the loaded
    partition's values.
    """

    def __init__(self, manager: "SpillManager", memory_elements: int):
        super().__init__(manager)
        self._memory_elements = max(1, memory_elements)
        self._front: set = set()
        self._spilled = False
        self._hashes: set = set()
        self._handles: List[Any] = [None] * PARTITIONS
        self._cached_partition: int = -1
        self._cached_values: Optional[set] = None
        self._overflow: set = set()   # unhashable never lands here; this is
        self._overflow_list: list = []  # for unpicklable values (list keeps
        # unpicklable-and-unhashable hypotheticals from crashing dedup).

    # -- set protocol -------------------------------------------------------

    def __contains__(self, value: Any) -> bool:
        if not self._spilled:
            return value in self._front
        if value in self._overflow or any(value == v for v in self._overflow_list):
            return True
        key = hash(value)
        if key not in self._hashes:
            return False
        return value in self._partition_values(key % PARTITIONS)

    def add(self, value: Any) -> None:
        if not self._spilled:
            self._front.add(value)
            if len(self._front) >= self._memory_elements:
                self._spill_front()
            return
        if value in self:
            return
        self._insert_spilled(value)

    def __len__(self) -> int:
        if not self._spilled:
            return len(self._front)
        return self._count + len(self._overflow) + len(self._overflow_list)

    # -- spill mechanics ----------------------------------------------------

    _count = 0

    def _spill_front(self) -> None:
        front, self._front = self._front, set()
        self._spilled = True
        self._count = 0
        for value in front:
            self._insert_spilled(value)

    def _insert_spilled(self, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._manager._record_fallback()
            try:
                self._overflow.add(value)
            except TypeError:
                self._overflow_list.append(value)
            return
        key = hash(value)
        partition = key % PARTITIONS
        if self._handles[partition] is None:
            self._handles[partition] = self._open_file()
        self._write_frame(self._handles[partition], payload)
        self._hashes.add(key)
        self._count += 1
        if self._cached_partition == partition:
            self._cached_values.add(value)

    def _partition_values(self, partition: int) -> set:
        if self._cached_partition == partition:
            return self._cached_values
        handle = self._handles[partition]
        values: set = set()
        if handle is not None:
            for payload in _read_frames(handle):
                values.add(pickle.loads(payload))
        self._cached_partition = partition
        self._cached_values = values
        return values


class SpilledIndex(_SpillBacked):
    """A hash-partitioned (key → rows) index for indexed-join build sides.

    Build appends framed (key, row) pairs to the key-hash partition; probes
    load one partition at a time into a dict with a single-partition cache.
    Unpicklable pairs stay in an in-memory residue dict consulted on every
    probe, so degraded storage never drops build rows.
    """

    def __init__(self, manager: "SpillManager"):
        super().__init__(manager)
        self._handles: List[Any] = [None] * PARTITIONS
        self._counts: List[int] = [0] * PARTITIONS
        self._cached_partition: int = -1
        self._cached_index: Optional[Dict[Any, List[Any]]] = None
        self._residue: Dict[Any, List[Any]] = {}
        self._length = 0

    def add(self, key: Any, row: Any) -> None:
        self._length += 1
        try:
            payload = pickle.dumps((key, row),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._manager._record_fallback()
            self._residue.setdefault(key, []).append(row)
            return
        partition = hash(key) % PARTITIONS
        if self._handles[partition] is None:
            self._handles[partition] = self._open_file()
        self._write_frame(self._handles[partition], payload)
        self._counts[partition] += 1
        if self._cached_partition == partition:
            self._cached_index.setdefault(key, []).append(row)

    def get(self, key: Any, default=None):
        rows = self._probe(key)
        return rows if rows is not None else default

    def __contains__(self, key: Any) -> bool:
        return self._probe(key) is not None

    def __len__(self) -> int:
        return self._length

    def _probe(self, key: Any) -> Optional[List[Any]]:
        partition = hash(key) % PARTITIONS
        index = self._partition_index(partition)
        rows = index.get(key)
        residue = self._residue.get(key)
        if rows is None and residue is None:
            return None
        if residue is None:
            return rows
        return (rows or []) + residue

    def _partition_index(self, partition: int) -> Dict[Any, List[Any]]:
        if self._cached_partition == partition:
            return self._cached_index
        handle = self._handles[partition]
        index: Dict[Any, List[Any]] = {}
        if handle is not None:
            for payload in _read_frames(handle):
                key, row = pickle.loads(payload)
                index.setdefault(key, []).append(row)
        self._cached_partition = partition
        self._cached_index = index
        return index


class SpillManager:
    """Per-run factory and ledger for the spill backends.

    Created by the engine when the plan gate decides a run should spill;
    attached as ``context.spill``.  Owns every temp file the run's backends
    open (closed — and thereby deleted — in :meth:`close`, which the
    engine's run finalizer always reaches) and the run-local books that
    fold into the engine's :class:`~repro.kleisli.governance.QueryGovernor`.
    """

    #: In-memory elements a backend may hold before touching disk.
    DEFAULT_MEMORY_ELEMENTS = 1024

    def __init__(self, directory: Optional[str] = None,
                 memory_elements: int = DEFAULT_MEMORY_ELEMENTS):
        self.directory = directory
        self.memory_elements = max(1, memory_elements)
        self._lock = threading.Lock()
        self._files: List[Any] = []
        self._closed = False
        self.books: Dict[str, int] = {
            "spills": 0, "bytes_spilled": 0, "rows_spilled": 0,
            "spill_fallbacks": 0}

    # -- backend factories --------------------------------------------------

    def spilled_list(self) -> SpilledList:
        return SpilledList(self, self.memory_elements)

    def seen_set(self) -> GovernedSeenSet:
        return GovernedSeenSet(self, self.memory_elements)

    def index(self) -> SpilledIndex:
        return SpilledIndex(self)

    # -- bookkeeping --------------------------------------------------------

    def _register_file(self, handle) -> None:
        with self._lock:
            if self._closed:
                handle.close()
                raise EvaluationError("spill manager already closed")
            self._files.append(handle)

    def _count_spill(self) -> None:
        """One spill event per backend that actually touches disk."""
        with self._lock:
            self.books["spills"] += 1

    def _record_spill(self, nbytes: int, rows: int = 0) -> None:
        with self._lock:
            self.books["bytes_spilled"] += nbytes
            self.books["rows_spilled"] += rows

    def _record_fallback(self) -> None:
        with self._lock:
            self.books["spill_fallbacks"] += 1

    def close(self) -> None:
        """Close (and so delete) every spill file.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            files, self._files = self._files, []
        for handle in files:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
