"""Driver resilience: retries, circuit breakers, deadlines, stream recovery.

The paper's federated queries reach flaky wide-area sources (GDB in
Baltimore, GenBank in Bethesda, over the 1995 Internet) and it warns that a
server "may only be able to handle a limited number of requests at a time".
Before this module a single transient fault anywhere — a cap rejection, a
dropped cursor three elements into a scan — aborted the whole query.  This
layer sits at the ONE choke point every backend shares
(``KleisliEngine.driver_executor`` / ``driver_executor_batch``), so the
eager, per-element and chunked lowerings all inherit it without any change
to compiled code:

* :class:`RetryPolicy` — bounded attempts with exponential backoff
  (deterministic injectable jitter, clock and sleeper, so tests never
  sleep), a per-request timeout, honoring the per-query deadline carried on
  ``EvalContext.deadline``;
* :class:`CircuitBreaker` — the classic three-state machine (closed / open /
  half-open) per driver; trips stop the hammering, a half-open probe decides
  re-closing, and every state change is published (the engine feeds it to
  the statistics registry, which the planner consults before routing batched
  scans at a source);
* :class:`RecoveringStream` — mid-stream cursor recovery: when a lazy scan
  cursor dies mid-chunk, the scan is re-issued and resumed through a
  seen-prefix filter, so a drained recovered run is **bit-identical** to a
  fault-free run in both values and ``elements_fetched`` accounting (the
  skipped prefix is consumed *below* the statistics-counting wrapper);
* **graceful degradation** — under ``on_source_failure="degrade"`` a source
  that stays down after retries (or whose breaker is open) contributes an
  empty result plus a typed
  :class:`~repro.core.errors.SourceDegradedWarning` in
  ``EvalStatistics.warnings`` instead of failing the query: federated
  unions return partial results that are always announced, never silently
  truncated.

Fault classification is :func:`repro.core.errors.is_retryable_fault` — see
the taxonomy table in :mod:`repro.core.errors`.  A driver with no
configured policy and no breaker passes straight through: zero-fault runs
are bit-for-bit unchanged with the layer installed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DriverError,
    DriverTimeoutError,
    SourceDegradedWarning,
    is_retryable_fault,
)
from ..core.nrc.eval import _CountingStream

__all__ = ["RetryPolicy", "CircuitBreakerPolicy", "CircuitBreaker",
           "ResilienceLayer", "RecoveringStream"]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-driver retry knobs (immutable, like :class:`PhysicalPlan`).

    ``jitter`` (when given) maps ``(attempt, delay) -> delay`` and MUST be
    deterministic if tests rely on reproducible schedules — the layer never
    calls a random source itself.  ``request_timeout`` bounds one request's
    round-trip as measured by the layer's clock; overruns are classified
    :class:`~repro.core.errors.DriverTimeoutError` (retryable) and the slow
    answer is discarded.  ``recover_midstream`` enables
    :class:`RecoveringStream` wrapping of lazy results.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.5
    request_timeout: Optional[float] = None
    jitter: Optional[Callable[[int, float], float]] = None
    recover_midstream: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff knobs must be non-negative")

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based count of failures)."""
        delay = min(self.backoff_cap,
                    self.backoff_base * (self.backoff_multiplier ** (attempt - 1)))
        if self.jitter is not None:
            delay = self.jitter(attempt, delay)
        return max(0.0, delay)


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Knobs for one driver's :class:`CircuitBreaker`."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 5
    #: Seconds an open breaker waits before letting a half-open probe through.
    recovery_time: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")


class CircuitBreaker:
    """Three-state (closed / open / half-open) breaker for one driver.

    Thread-safe: scheduler worker threads report successes/failures
    concurrently.  State changes are published via ``on_event(driver,
    state)`` *outside* the lock (the engine forwards them to the statistics
    registry so the planner sees availability).  In half-open state exactly
    one probe request is admitted at a time; its outcome decides re-closing
    (success) or re-opening (failure).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, driver: str,
                 policy: Optional[CircuitBreakerPolicy] = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_event: Optional[Callable[[str, str], None]] = None):
        self.driver = driver
        self.policy = policy or CircuitBreakerPolicy()
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0
        self.probes = 0
        self.successes = 0
        self.failures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _emit(self, state: str) -> None:
        if self._on_event is not None:
            self._on_event(self.driver, state)

    def before_call(self) -> None:
        """Admission check; raises :class:`CircuitOpenError` when tripped.

        An open breaker past its recovery time transitions to half-open and
        admits the caller as the probe; further callers are rejected until
        the probe reports back.
        """
        event = None
        with self._lock:
            if self._state == self.CLOSED:
                return
            if self._state == self.OPEN:
                waited = self._clock() - self._opened_at
                if waited < self.policy.recovery_time:
                    raise CircuitOpenError(
                        self.driver,
                        retry_after=self.policy.recovery_time - waited)
                self._state = self.HALF_OPEN
                self._probe_in_flight = True
                self.probes += 1
                event = self.HALF_OPEN
            else:  # half-open: one probe at a time
                if self._probe_in_flight:
                    raise CircuitOpenError(self.driver, retry_after=0.0)
                self._probe_in_flight = True
                self.probes += 1
        if event is not None:
            self._emit(event)

    def record_success(self) -> None:
        event = None
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._probe_in_flight = False
                event = self.CLOSED
        if event is not None:
            self._emit(event)

    def record_failure(self) -> None:
        event = None
        with self._lock:
            self.failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: back to fully open, clock restarted.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.trips += 1
                event = self.OPEN
            else:
                self._consecutive_failures += 1
                if (self._state == self.CLOSED and self._consecutive_failures
                        >= self.policy.failure_threshold):
                    self._state = self.OPEN
                    self._opened_at = self._clock()
                    self.trips += 1
                    event = self.OPEN
        if event is not None:
            self._emit(event)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"state": self._state, "trips": self.trips,
                    "probes": self.probes, "successes": self.successes,
                    "failures": self.failures,
                    "consecutive_failures": self._consecutive_failures}


class _DriverCounters:
    """Lock-guarded per-driver resilience counters (for ``engine.health()``)."""

    FIELDS = ("requests", "retries", "timeouts", "failures",
              "midstream_faults", "recoveries", "degraded")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {field: 0 for field in self.FIELDS}

    def increment(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[field] += amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class ResilienceLayer:
    """Per-driver retry policies and breakers behind the engine's executors.

    ``clock`` and ``sleeper`` are injectable so the whole layer — backoff,
    timeouts, deadlines, breaker recovery — runs deterministically under a
    fake clock in tests.  ``on_breaker_event(driver, state)`` (settable
    post-construction) is fanned every breaker state change; the engine
    points it at the statistics registry's availability map.
    ``on_retry(driver, attempt)`` (same shape) fires once per retry before
    its backoff; the engine points it at the observability hub's retry
    counter — ``None`` (the default) costs one attribute read per retry.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 sleeper: Callable[[float], None] = time.sleep):
        self.clock = clock
        self.sleeper = sleeper
        self.on_breaker_event: Optional[Callable[[str, str], None]] = None
        self.on_retry: Optional[Callable[[str, int], None]] = None
        self._lock = threading.Lock()
        self._policies: Dict[str, RetryPolicy] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._counters: Dict[str, _DriverCounters] = {}

    # -- configuration -------------------------------------------------------

    def set_policy(self, driver: str, retry: Optional[RetryPolicy] = None,
                   breaker: Optional[CircuitBreakerPolicy] = None) -> None:
        """Install (or replace) one driver's resilience configuration.

        ``retry=None`` with ``breaker=None`` removes the configuration —
        the driver returns to raw pass-through dispatch.
        """
        with self._lock:
            if retry is None and breaker is None:
                self._policies.pop(driver, None)
                self._breakers.pop(driver, None)
                return
            if retry is not None:
                self._policies[driver] = retry
            else:
                self._policies.pop(driver, None)
            if breaker is not None:
                self._breakers[driver] = CircuitBreaker(
                    driver, breaker, clock=self.clock,
                    on_event=self._breaker_event)
            else:
                self._breakers.pop(driver, None)

    def policy_for(self, driver: str) -> Optional[RetryPolicy]:
        with self._lock:
            return self._policies.get(driver)

    def breaker_for(self, driver: str) -> Optional[CircuitBreaker]:
        with self._lock:
            return self._breakers.get(driver)

    def configured(self, driver: str) -> bool:
        with self._lock:
            return driver in self._policies or driver in self._breakers

    def _breaker_event(self, driver: str, state: str) -> None:
        callback = self.on_breaker_event
        if callback is not None:
            callback(driver, state)

    def counters(self, driver: str) -> _DriverCounters:
        with self._lock:
            counters = self._counters.get(driver)
            if counters is None:
                counters = self._counters[driver] = _DriverCounters()
            return counters

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-driver counters + breaker state, for ``engine.health()``."""
        with self._lock:
            drivers = set(self._counters) | set(self._breakers) \
                | set(self._policies)
            breakers = dict(self._breakers)
            counters = dict(self._counters)
        result: Dict[str, Dict[str, object]] = {}
        for driver in sorted(drivers):
            entry: Dict[str, object] = {}
            if driver in counters:
                entry.update(counters[driver].snapshot())
            breaker = breakers.get(driver)
            entry["breaker"] = breaker.snapshot() if breaker is not None \
                else None
            result[driver] = entry
        return result

    # -- the dispatch path ---------------------------------------------------

    def execute(self, driver: str, request, raw: Callable, context=None):
        """Dispatch one request through retry/breaker/deadline machinery.

        ``raw(driver, request)`` is the engine's timed dispatch (driver
        lookup + execute + latency-EMA sample).  Unconfigured drivers pass
        straight through — one dict probe of overhead.  Lazy results of
        configured drivers are wrapped for mid-stream recovery; terminal
        failures may degrade to an announced-empty result when the context
        asks for it.
        """
        with self._lock:
            policy = self._policies.get(driver)
            breaker = self._breakers.get(driver)
        if policy is None and breaker is None:
            return raw(driver, request)
        counters = self.counters(driver)
        counters.increment("requests")
        try:
            result = self._attempt(driver, request, raw, policy, breaker,
                                   counters, context)
        except Exception as error:  # noqa: BLE001 - classified below
            degraded = self._maybe_degrade(driver, error, context, counters)
            if degraded is None:
                raise
            return degraded
        if (policy is not None and policy.recover_midstream
                and not _is_eager(result)):
            return RecoveringStream(self, driver, request, raw, policy,
                                    breaker, counters, context, result)
        return result

    def _attempt(self, driver: str, request, raw: Callable,
                 policy: Optional[RetryPolicy],
                 breaker: Optional[CircuitBreaker],
                 counters: _DriverCounters, context) -> object:
        """The bounded attempt loop shared by first dispatch and re-issues."""
        max_attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        while True:
            attempt += 1
            self._check_deadline(driver, context)
            if breaker is not None:
                breaker.before_call()
            started = self.clock()
            try:
                result = raw(driver, request)
            except Exception as error:  # noqa: BLE001 - classified below
                if breaker is not None:
                    breaker.record_failure()
                counters.increment("failures")
                if not is_retryable_fault(error) or attempt >= max_attempts:
                    raise
                self._note_retry(driver, attempt, policy, counters, context)
                continue
            if policy is not None and policy.request_timeout is not None:
                elapsed = self.clock() - started
                if elapsed > policy.request_timeout:
                    _close_quietly(result)
                    if breaker is not None:
                        breaker.record_failure()
                    counters.increment("timeouts")
                    if attempt >= max_attempts:
                        raise DriverTimeoutError(driver, elapsed,
                                                 policy.request_timeout)
                    self._note_retry(driver, attempt, policy, counters,
                                     context)
                    continue
            if breaker is not None:
                breaker.record_success()
            return result

    def _note_retry(self, driver: str, attempt: int,
                    policy: Optional[RetryPolicy],
                    counters: _DriverCounters, context) -> None:
        """Account one retry and serve its backoff (deadline-capped)."""
        counters.increment("retries")
        if context is not None:
            context.statistics.retries += 1
            trace = getattr(context, "trace", None)
            if trace is not None:
                trace.event("retry", driver=driver, attempt=attempt)
        callback = self.on_retry
        if callback is not None:
            callback(driver, attempt)
        if policy is None:
            return
        delay = policy.backoff_for(attempt)
        if delay <= 0:
            return
        deadline = getattr(context, "deadline", None) if context is not None \
            else None
        if deadline is not None and self.clock() + delay > deadline:
            # Sleeping would blow the budget: fail now, not later.
            raise DeadlineExceededError(driver)
        self.sleeper(delay)

    def _check_deadline(self, driver: str, context) -> None:
        deadline = getattr(context, "deadline", None) if context is not None \
            else None
        if deadline is not None:
            now = self.clock()
            if now > deadline:
                raise DeadlineExceededError(driver, overrun=now - deadline)

    def _maybe_degrade(self, driver: str, error: BaseException, context,
                       counters: _DriverCounters):
        """Empty-result degradation, or ``None`` to propagate the error.

        Only *unavailability* faults degrade — retryable classes whose
        budget ran out, and open breakers.  Malformed requests, spent
        deadlines and missing drivers always propagate: degrading those
        would hide bugs, not outages.
        """
        if context is None or getattr(context, "on_source_failure", "fail") \
                != "degrade":
            return None
        if not (is_retryable_fault(error)
                or isinstance(error, CircuitOpenError)):
            return None
        counters.increment("degraded")
        self.record_degradation(driver, error, context)
        from ..core.values import CList

        return CList([])

    #: Guards warning aggregation (parallel bodies may degrade concurrently).
    _warnings_lock = threading.Lock()

    def record_degradation(self, driver: str, error: BaseException,
                           context) -> None:
        """Append (or aggregate into) the run's typed degradation warnings."""
        statistics = context.statistics
        error_type = type(error).__name__
        with ResilienceLayer._warnings_lock:
            for warning in statistics.warnings:
                if warning.driver == driver \
                        and warning.error_type == error_type:
                    warning.requests_dropped += 1
                    return
            statistics.warnings.append(SourceDegradedWarning(driver, error))


class RecoveringStream:
    """Resume a lazy scan cursor across mid-stream faults, bit-identically.

    Sits *below* the statistics-counting ``_CountingStream`` wrapper: the
    re-issued cursor's already-seen prefix is consumed here and never
    surfaces, so a drained recovered run reports exactly the fault-free
    ``scan_elements`` — and yields exactly the fault-free element sequence
    (sources are assumed deterministic across re-issues, which the engine's
    drivers are; a re-issue that ends *before* the prefix is complete is a
    terminal error, never a silent short stream).

    A fault event consumes one recovery from a consecutive-failure budget of
    ``policy.max_attempts - 1``; any successfully yielded element resets it,
    so eventually-succeeding fault schedules always drain while a
    permanently dead source still fails fast.
    """

    def __init__(self, layer: ResilienceLayer, driver: str, request,
                 raw: Callable, policy: RetryPolicy,
                 breaker: Optional[CircuitBreaker],
                 counters: _DriverCounters, context, first_result):
        self._layer = layer
        self._driver = driver
        self._request = request
        self._raw = raw
        self._policy = policy
        self._breaker = breaker
        self._counters = counters
        self._context = context
        self._source = first_result
        self._iterator = iter(first_result)
        self._yielded = 0
        self._consecutive_faults = 0
        self._recovering = False
        self._skip = 0
        self._generator = None

    def __iter__(self):
        # Hand out ONE generator: downstream wrappers call iter() once and
        # then resume it per element at C speed — the fault-free path pays
        # a generator resumption, not a Python-level __next__ frame.
        if self._generator is None:
            self._generator = self._iterate()
        return self._generator

    def __next__(self):
        return next(iter(self))

    def _iterate(self):
        while True:
            iterator = self._iterator
            try:
                # Cold path: consume a re-issued cursor's already-delivered
                # prefix (never surfaces, never counted), then draw the
                # first fresh element so recovery bookkeeping runs once per
                # issue instead of once per element.
                while self._skip:
                    next(iterator)
                    self._skip -= 1
                value = next(iterator)
            except StopIteration:
                if self._skip:
                    # The replacement cursor ended before reaching the
                    # already-delivered prefix: the source changed between
                    # issues.  Silent truncation is never an option.
                    raise DriverError(
                        f"driver {self._driver!r} returned a shorter stream "
                        f"on recovery re-issue (source changed mid-query)") \
                        from None
                return
            except Exception as error:  # noqa: BLE001 - classified below
                if not self._handle_fault(error):
                    return  # degraded: announced end, not an exception
                continue
            if self._recovering:
                self._recovering = False
                self._counters.increment("recoveries")
                if self._context is not None:
                    self._context.statistics.recovered_faults += 1
            self._consecutive_faults = 0
            self._yielded += 1
            yield value
            # Hot loop: a bare for over the driver cursor with one local
            # counter — position state syncs back only when the loop exits.
            yielded = self._yielded
            try:
                try:
                    for value in iterator:
                        yielded += 1
                        yield value
                finally:
                    self._yielded = yielded
            except Exception as error:  # noqa: BLE001 - classified below
                if not self._handle_fault(error):
                    return
                continue
            return

    def _handle_fault(self, error: BaseException) -> bool:
        """One mid-stream fault event: account, re-issue, arm the prefix skip.

        Returns ``True`` when a replacement cursor is in place, ``False``
        when the run degrades (the stream ends, announced by a warning).
        Raises when the fault is terminal, the budget is spent, or the
        deadline passed.
        """
        layer = self._layer
        self._counters.increment("midstream_faults")
        if self._breaker is not None:
            self._breaker.record_failure()
        _close_quietly(self._source)
        self._consecutive_faults += 1
        try:
            if not is_retryable_fault(error) \
                    or self._consecutive_faults >= self._policy.max_attempts:
                raise error
            layer._note_retry(self._driver, self._consecutive_faults,
                              self._policy, self._counters, self._context)
            self._recovering = True
            result = layer._attempt(self._driver, self._request, self._raw,
                                    self._policy, self._breaker,
                                    self._counters, self._context)
        except Exception as final:  # noqa: BLE001 - may degrade below
            if self._maybe_degrade_stream(final):
                return False
            raise
        self._source = result
        self._iterator = iter(result)
        self._skip = self._yielded
        return True

    def _maybe_degrade_stream(self, error: BaseException) -> bool:
        context = self._context
        if context is None or getattr(context, "on_source_failure", "fail") \
                != "degrade":
            return False
        if not (is_retryable_fault(error)
                or isinstance(error, CircuitOpenError)):
            return False
        self._counters.increment("degraded")
        self._layer.record_degradation(self._driver, error, context)
        return True

    def close(self) -> None:
        """Release the current underlying cursor (early termination)."""
        _close_quietly(self._source)
        iterator = self._iterator
        if iterator is not self._source:
            _close_quietly(iterator)

    def make_counting_stream(self, statistics) -> "_RecoveringCountingStream":
        """The hook ``scan_stream`` probes for: a merged counting+recovering
        wrapper, so the happy path pays one frame per element instead of a
        counting frame stacked on a recovery generator."""
        return _RecoveringCountingStream(self, statistics)


class _RecoveringCountingStream(_CountingStream):
    """Scan accounting and mid-stream recovery in ONE per-element frame.

    The happy path is exactly the plain :class:`_CountingStream` hot path
    plus a single integer increment (the delivered-prefix position the
    recovery re-issue needs); every fault branch lives in the cold
    ``except`` path, where :class:`RecoveringStream`'s state machine
    (``_handle_fault``: classify, account, re-issue, arm the prefix skip)
    does the work.  The skipped prefix of a replacement cursor is consumed
    here *without* touching ``scan_elements``, which is what keeps a
    recovered run's ``elements_fetched`` bit-identical to a fault-free
    run's.
    """

    def __init__(self, stream: "RecoveringStream", statistics):
        self._stream = stream
        #: ``close()`` (inherited) closes the iterator then the source —
        #: pointing the source at the RecoveringStream reaches whatever
        #: cursor is live after any number of re-issues.
        self._source = stream
        self._inner = stream._iterator
        self._statistics = statistics
        self._scope = None

    def __next__(self):
        try:
            value = next(self._inner)
        except StopIteration:
            self._drained()
            raise
        except Exception as error:  # noqa: BLE001 - classified in _recover
            value = self._recover(error)
        self._statistics.scan_elements += 1
        self._stream._yielded += 1
        return value

    def _recover(self, error: BaseException):
        """Cold path: cycle fault → re-issue → prefix skip until a fresh
        element arrives (returned), the stream degrades or legitimately
        ends (``StopIteration``), or the fault is terminal (raises)."""
        stream = self._stream
        while True:
            if not stream._handle_fault(error):
                self._drained()  # degraded: announced end of stream
                raise StopIteration
            iterator = stream._iterator
            self._inner = iterator
            try:
                for _ in range(stream._skip):
                    next(iterator)
                stream._skip = 0
                value = next(iterator)
            except StopIteration:
                if stream._skip:
                    # The replacement ended inside the already-delivered
                    # prefix: the source changed between issues.  Silent
                    # truncation is never an option.
                    raise DriverError(
                        f"driver {stream._driver!r} returned a shorter "
                        f"stream on recovery re-issue (source changed "
                        f"mid-query)") from None
                self._drained()  # re-issue ended exactly at the prefix
                raise
            except Exception as next_error:  # noqa: BLE001 - next cycle
                error = next_error
                continue
            if stream._recovering:
                stream._recovering = False
                stream._counters.increment("recoveries")
                if stream._context is not None:
                    stream._context.statistics.recovered_faults += 1
            stream._consecutive_faults = 0
            return value

    def _drained(self) -> None:
        scope = self._scope
        if scope is not None:
            self._scope = None
            scope.unregister(self)


def _is_eager(result: object) -> bool:
    """Is this driver result a fully materialised collection?

    Mirrors the check every scan site performs: eager collections need no
    recovery wrapper (the request either failed — handled by the attempt
    loop — or delivered everything).
    """
    from ..core.values import CBag, CList, CSet

    return isinstance(result, (CSet, CBag, CList))


def _close_quietly(resource: object) -> None:
    close = getattr(resource, "close", None)
    if close is not None:
        try:
            close()
        except Exception:  # pragma: no cover - best-effort release
            pass
