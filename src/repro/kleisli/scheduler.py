"""Bounded and adaptive concurrency for remote requests.

Section 4, "Laziness, Latency, and Concurrency": the system issues several
requests to a remote server at once, but must respect the server's capacity
("say five") and not let unconsumed replies pile up.  :class:`BoundedScheduler`
is that mechanism: a worker pool whose size never exceeds the per-server cap,
used by the parallel-loop operator the optimizer introduces around remote
inner loops.

The paper closes the section with its reference [43]: *"techniques to
automatically adjust the level of concurrency based on the capability of
servers and on resource availability are being developed."*
:class:`AdaptiveScheduler` implements that extension: it probes the server
with an additive-increase / multiplicative-decrease policy, ramping the number
of in-flight requests up while responses stay fast and backing off when the
server rejects requests or its per-request latency degrades.  One policy —
:class:`_WindowController` — serves both call styles: ``map`` feeds it a
throughput sample per *batch*, ``prefetch`` a throughput *and mean per-item
latency* sample per completed window of results, so the batch and the
sliding-window paths cannot drift apart.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as _wait_futures
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Type, TypeVar

from ..core.errors import RemoteSourceError

__all__ = ["BoundedScheduler", "AdaptiveScheduler"]

T = TypeVar("T")
R = TypeVar("R")


def _drain_futures(futures: Iterable) -> None:
    """Settle abandoned in-flight futures (early-close cleanup).

    Cancels what has not started; awaits what has (a running request cannot
    be cancelled, and its reply must not arrive with the pool still owed
    work after the consumer is gone).  Shared by every ``prefetch``
    implementation so the drain policy cannot diverge.
    """
    for future in futures:
        future.cancel()
        if not future.cancelled():
            try:
                future.result()
            except Exception:
                pass


class _ExecutorMixin:
    """One lazily-created worker pool per scheduler, shared across calls.

    Earlier versions constructed a fresh ``ThreadPoolExecutor`` per ``map``
    call (bounded) or per *batch* (adaptive) — thread creation and joining
    dominated short batches.  The pool is created on first use, reused by
    every subsequent ``map``/``prefetch``, and shut down by :meth:`close`
    (or the context-manager protocol, or the finalizer as a backstop).
    """

    _pool: Optional[ThreadPoolExecutor] = None

    def _executor(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=self.max_workers)
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the worker pool (joins its threads); safe to call twice."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        pool = self.__dict__.get("_pool")
        if pool is not None:
            pool.shutdown(wait=False)

    def prefetch(self, function: Callable[[T], R], items: Iterable[T],
                 window: Optional[int] = None,
                 chunked: bool = False) -> Iterator[R]:
        """Apply ``function`` with a bounded sliding window, yielding in order.

        The pipelined counterpart of ``map``: a window of at most
        ``max_workers`` requests is in flight while the consumer processes
        earlier replies, so remote latency overlaps consumption end-to-end
        instead of only within one batch.  Each yielded result frees a slot
        and the next item is issued immediately — and because ``items`` is
        pulled lazily, the source itself is only consumed ``window`` elements
        ahead of the consumer (bounding unconsumed replies, the paper's
        resource-control concern).

        With ``chunked`` set, each item is a *chunk* (a list of work units)
        and one task — one window slot — covers the whole chunk: the window
        is counted in chunks.  For the bounded scheduler the flag only
        changes the granularity of what a slot holds (items are opaque
        either way); the adaptive scheduler additionally feeds its window
        controller per-chunk samples, see
        :meth:`AdaptiveScheduler.prefetch`.

        Abandoning the iterator (``close()``) stops issuing new requests;
        already in-flight ones are drained so the pool is left quiescent.
        """
        window = self.max_workers if window is None else max(1, min(window, self.max_workers))
        iterator = iter(items)
        in_flight: deque = deque()
        pool = None
        try:
            while True:
                while len(in_flight) < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    with self._lock:
                        self.tasks_submitted += 1
                    if window == 1:
                        # Degenerate window: no concurrency, no pool needed.
                        yield function(item)
                        continue
                    if pool is None:
                        pool = self._executor()
                    in_flight.append(pool.submit(function, item))
                if not in_flight:
                    return
                yield in_flight.popleft().result()
        finally:
            _drain_futures(in_flight)


class BoundedScheduler(_ExecutorMixin):
    """Runs callables over a collection with at most ``max_workers`` in flight."""

    def __init__(self, max_workers: int = 5):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.tasks_submitted = 0
        self.batches = 0
        self._lock = threading.Lock()

    def map(self, function: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``function`` to every item, preserving order, never exceeding the cap.

        Items are processed in batches of ``max_workers`` so that a slow
        consumer never has more than one batch of unconsumed replies — the
        resource-control concern the paper raises about unbounded threads.
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            self.tasks_submitted += len(items)
        results: List[R] = []
        if self.max_workers == 1 or len(items) == 1:
            with self._lock:
                self.batches += 1
            return [function(item) for item in items]
        pool = self._executor()
        for start in range(0, len(items), self.max_workers):
            batch = items[start:start + self.max_workers]
            with self._lock:
                self.batches += 1
            results.extend(pool.map(function, batch))
        return results


class _WindowController:
    """The shared concurrency-window policy: AIMD plus throughput/latency sampling.

    One implementation serves both granularities of :class:`AdaptiveScheduler`:
    ``map`` feeds it one sample per *batch* (throughput only — its
    historical thresholds), ``prefetch`` one sample per completed *window*
    of results (throughput and mean per-item latency, both derived from
    timing inside the worker so consumer-side waiting never pollutes
    either).  Decisions:

    * a server **rejection** halves the level and pins a ceiling at the
      rejected level, which is never offered again;
    * a sample that **improves** best throughput by ``IMPROVEMENT_FACTOR``
      adds a worker;
    * a sample whose throughput **collapsed** by more than
      ``degradation_threshold`` — or (when latency is measured) whose
      per-item latency rose by that factor while throughput did not improve,
      i.e. extra requests are only queueing at the server — removes one;
    * anything else is a **plateau**: hold the level, probing one step up
      every ``PROBE_INTERVAL`` samples.

    Sub-millisecond samples (``LATENCY_FLOOR``) carry no congestion signal
    above Python's timer noise; such windows only ramp — with nothing to
    overlap, a too-large window costs nothing, and decreases then come from
    explicit rejections only.
    """

    #: Relative throughput improvement that justifies adding a worker.
    IMPROVEMENT_FACTOR = 1.05
    #: On a plateau, probe one level up every this many samples.
    PROBE_INTERVAL = 4
    #: Below this per-item latency (seconds) a sample is treated as noise.
    LATENCY_FLOOR = 0.001

    __slots__ = ("max_workers", "level", "degradation_threshold",
                 "best_throughput", "best_latency", "plateau", "rejection_ceiling")

    def __init__(self, max_workers: int, initial: int, degradation_threshold: float):
        self.max_workers = max_workers
        self.level = initial
        self.degradation_threshold = degradation_threshold
        self.best_throughput: Optional[float] = None
        self.best_latency: Optional[float] = None
        self.plateau = 0
        self.rejection_ceiling: Optional[int] = None

    def on_rejection(self, level: int) -> None:
        """AIMD decrease after a server rejection at ``level``.

        The server pushed back: never offer it that many again (the
        rejection ceiling), halve the level, and re-baseline both samples at
        the reduced level.
        """
        ceiling = max(1, level - 1)
        if self.rejection_ceiling is not None:
            ceiling = min(ceiling, self.rejection_ceiling)
        self.rejection_ceiling = ceiling
        self.best_throughput = None
        self.best_latency = None
        self.plateau = 0
        self.level = max(1, level // 2)

    def on_sample(self, level: int, throughput: float,
                  latency: Optional[float] = None) -> None:
        """Feed one completed batch/window sample; adjusts ``level``."""
        if latency is not None and latency < self.LATENCY_FLOOR:
            # Too fast to measure: ramp freely, and leave the baselines
            # UNTOUCHED — recording a noise-era throughput (~level/µs, e.g.
            # while items hit a local cache) as "best" would misread every
            # later healthy real-latency window as a collapse and serialize
            # a perfectly fine stream.  The first measurable window
            # establishes the baseline instead.
            self.plateau = 0
            self.level = self.raised(level)
            return
        if self.best_throughput is None:
            # The first measurable sample (or the first after a rejection)
            # only establishes the baseline.
            self.best_throughput = throughput
            self.best_latency = latency
            self.level = self.raised(level)
            return
        if throughput >= self.best_throughput * self.IMPROVEMENT_FACTOR:
            # More workers genuinely helped: keep ramping up.
            self.best_throughput = throughput
            if latency is not None and (self.best_latency is None
                                        or latency < self.best_latency):
                self.best_latency = latency
            self.plateau = 0
            self.level = self.raised(level)
            return
        if (throughput < self.best_throughput / self.degradation_threshold
                or self._latency_degraded(latency)):
            # Throughput collapsed, or each request got slower without any
            # throughput gain — the server is degrading under our load.
            # DECAY the stale bests toward what was just observed: keeping
            # them unchanged lets one lucky sample drive a decrease spiral
            # all the way to 1, while erasing them entirely would read
            # *sustained* degradation as a fresh healthy baseline and ramp
            # straight back up.  Decayed, sustained degradation keeps
            # walking the level down (a few steps, then plateau) and a
            # genuine recovery soon registers as improvement again.
            self.best_throughput = max(
                throughput, self.best_throughput / self.degradation_threshold)
            if self.best_latency is not None and latency is not None:
                self.best_latency = min(
                    latency, self.best_latency * self.degradation_threshold)
            self.plateau = 0
            self.level = max(1, level - 1)
            return
        # Plateau: the server absorbed the extra requests without speeding
        # up.  Hold the level, but probe upwards occasionally so a slow
        # first sample cannot pin the level forever.
        self.plateau += 1
        if self.plateau >= self.PROBE_INTERVAL:
            self.plateau = 0
            self.level = self.raised(level)
        else:
            self.level = level

    def _latency_degraded(self, latency: Optional[float]) -> bool:
        if latency is None or self.best_latency is None:
            return False
        if latency < self.LATENCY_FLOOR or self.best_latency < self.LATENCY_FLOOR:
            return False
        return latency > self.best_latency * self.degradation_threshold

    def raised(self, level: int) -> int:
        """One more worker, never past the pool cap or a rejected level."""
        ceiling = self.max_workers
        if self.rejection_ceiling is not None:
            ceiling = min(ceiling, self.rejection_ceiling)
        return min(ceiling, level + 1)


class AdaptiveScheduler(_ExecutorMixin):
    """Adjusts the level of concurrency to the capability of the server.

    The policy is additive increase / multiplicative decrease over batches:

    * run a batch of at most ``level`` requests concurrently;
    * if the server rejected any of them (an ``overload_errors`` exception —
      by default :class:`~repro.core.errors.RemoteSourceError`, what a
      :class:`~repro.net.remote.RemoteSource` raises past its cap), halve the
      level and retry the rejected requests;
    * otherwise compare the batch's throughput (requests completed per second)
      with the best seen so far: while adding workers keeps improving it, add
      one more (up to ``max_workers``); when it collapses by more than
      ``degradation_threshold`` the server is saturating, so remove one; on a
      plateau hold the level, probing one step up every few batches so a slow
      first batch cannot pin the level at 1 forever.

    ``prefetch`` runs the *same* policy (one :class:`_WindowController` per
    scheduler serves both call styles) at window granularity, with per-item
    latency as an extra degradation signal; see :meth:`prefetch`.

    ``level_history`` records the level used for every batch and
    ``overload_events`` counts rejections, which the tests and the adaptive
    concurrency benchmark assert on.
    """

    def __init__(self, max_workers: int = 5, initial_workers: int = 1,
                 degradation_threshold: float = 1.5, max_retries: int = 3,
                 overload_errors: Tuple[Type[BaseException], ...] = (RemoteSourceError,),
                 clock: Optional[Callable[[], float]] = None):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if initial_workers < 1 or initial_workers > max_workers:
            raise ValueError("initial_workers must be between 1 and max_workers")
        if degradation_threshold <= 1.0:
            raise ValueError("degradation_threshold must be greater than 1.0")
        #: The time source behind every `_WindowController` sample.  Tests
        #: inject a counter-based fake so batch/window latency samples — and
        #: therefore the controller's ramp/hold/shrink decisions — are exact
        #: and deterministic instead of riding the wall clock's jitter
        #: (which made sleep-calibrated assertions flake under load).
        self._clock = time.perf_counter if clock is None else clock
        self.max_workers = max_workers
        self.degradation_threshold = degradation_threshold
        self.max_retries = max_retries
        self.overload_errors = overload_errors
        self.tasks_submitted = 0
        self.batches = 0
        self.retries = 0
        self.overload_events = 0
        self.level_history: List[int] = []
        #: The single policy instance behind BOTH map and prefetch: a
        #: rejection ceiling learned in one call style binds the other.
        self._controller = _WindowController(max_workers, initial_workers,
                                             degradation_threshold)
        self._lock = threading.Lock()

    @property
    def level(self) -> int:
        """The current concurrency level (owned by the window controller)."""
        return self._controller.level

    @level.setter
    def level(self, value: int) -> None:
        self._controller.level = value

    def apply_plan_hint(self, level: int) -> None:
        """Start the window at a planner-suggested level.

        The cost-based planner knows (from registered/observed latency)
        that a source is slow before the first request goes out; probing up
        from one worker would waste the first few windows rediscovering
        that.  The hint only sets the *starting* level — clamped to
        ``[1, max_workers]`` and any learned rejection ceiling — and every
        later sample/rejection adapts it exactly as before, so a wrong plan
        costs at most the adjustment the probe would have paid anyway.
        """
        target = max(1, min(int(level), self.max_workers))
        ceiling = self._controller.rejection_ceiling
        if ceiling is not None:
            target = min(target, ceiling)
        self._controller.level = target
        self.level_history.append(target)

    @property
    def _rejection_ceiling(self) -> Optional[int]:
        return self._controller.rejection_ceiling

    def map(self, function: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``function`` to every item, preserving order, adapting the level.

        Requests rejected by the server are retried (at the reduced level) up
        to ``max_retries`` times each; a request that keeps being rejected
        re-raises its last error.
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            self.tasks_submitted += len(items)
        results: dict = {}
        pending: List[Tuple[int, T]] = list(enumerate(items))
        attempts: dict = {}
        while pending:
            level = self.level
            batch, pending = pending[:level], pending[level:]
            self.batches += 1
            self.level_history.append(level)
            started = self._clock()
            failed = self._run_batch(function, batch, results, attempts, level)
            elapsed = self._clock() - started
            if failed:
                self.overload_events += 1
                self.retries += len(failed)
                self._controller.on_rejection(level)
                pending = failed + pending
                continue
            # One sample per batch.  The batch wall clock IS the per-item
            # latency under full concurrency (every item in the batch ran
            # at once), so it is passed as the latency sample too — which
            # routes sub-millisecond local batches into the controller's
            # noise guard instead of letting them poison the throughput
            # baseline a later prefetch on the same scheduler compares
            # against.  Thresholds are map's historical policy; the deltas
            # (noise guard, latency corroboration, decay-on-degradation)
            # are the controller's documented refinements.
            self._controller.on_sample(level, len(batch) / max(elapsed, 1e-9),
                                       latency=elapsed)
        return [results[index] for index in range(len(items))]

    def _run_batch(self, function, batch, results, attempts, level):
        """Run one batch; fill ``results``; return the rejected (index, item) pairs."""
        failed = []

        def run_one(entry):
            index, item = entry
            try:
                results[index] = function(item)
                return None
            except self.overload_errors as error:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > self.max_retries:
                    raise
                return (index, item, error)

        if level == 1 or len(batch) == 1:
            outcomes = [run_one(entry) for entry in batch]
        else:
            # The persistent pool is sized max_workers; submitting only
            # ``len(batch) <= level`` tasks keeps at most ``level`` in flight.
            outcomes = list(self._executor().map(run_one, batch))
        for outcome in outcomes:
            if outcome is not None:
                failed.append((outcome[0], outcome[1]))
        return failed

    def prefetch(self, function: Callable[[T], R], items: Iterable[T],
                 window: Optional[int] = None,
                 chunked: bool = False) -> Iterator[R]:
        """Sliding-window prefetch whose window follows the adaptive level.

        The window is governed by the same :class:`_WindowController` as
        ``map``'s batches: every completed window of ``level`` results
        contributes one sample — throughput over the window, plus the mean
        per-item latency measured *inside* the worker (so a slow consumer
        never reads as a slow server) — and the controller ramps, holds, or
        shrinks the window accordingly.  A server rejection halves the
        window and pins the rejection ceiling (multiplicative decrease);
        rejected items are re-issued up to ``max_retries`` times, preserving
        result order.

        The **chunk-granular mode** (``chunked=True``, used by the chunked
        ``ParallelExt`` lowering): each item is a chunk (list) of work
        units, one task covers the chunk, and the window is counted in
        *chunks*.  The controller then samples per-chunk latency — a chunk
        amortizes enough work to sit above the sub-millisecond noise floor
        where individual local items would not — and throughput in work
        units per second (chunk sizes are weighed in), so its decisions
        stay comparable across granularities.  A rejected chunk is retried
        whole, preserving order.
        """
        iterator = iter(items)
        in_flight: deque = deque()  # entries: [item, future, attempts, level]
        window_completed = 0
        window_latency = 0.0
        window_units = 0

        def timed(item):
            started = self._clock()
            value = function(item)
            return value, self._clock() - started

        def submit(item, attempts):
            # The submission level rides along so a whole burst rejected at
            # one level counts as ONE rejection event, like map's per-batch
            # policy — reacting once per failed future would compound the
            # halving and pin the rejection ceiling at 1.
            return [item, self._executor().submit(timed, item), attempts,
                    self.level]

        try:
            while True:
                cap = self.level if window is None else max(1, min(window, self.level))
                while len(in_flight) < cap:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    with self._lock:
                        self.tasks_submitted += 1
                    in_flight.append(submit(item, 0))
                if not in_flight:
                    return
                item, future, attempts, submitted_at = in_flight.popleft()
                try:
                    result, latency = future.result()
                except self.overload_errors:
                    attempts += 1
                    if attempts > self.max_retries:
                        raise
                    self.retries += 1
                    if self.level >= submitted_at:
                        # First failure seen from the burst submitted at this
                        # level; later failures from the same burst skip the
                        # decrease (the level is already below theirs).
                        self.overload_events += 1
                        self._controller.on_rejection(submitted_at)
                        self.level_history.append(self.level)
                    # A rejection restarts the sample window at the new level.
                    window_completed = 0
                    window_latency = 0.0
                    window_units = 0
                    # Let the burst that overloaded the server settle before
                    # re-issuing, or the retry lands on the same congestion
                    # (their results/errors stay stored in the futures and
                    # are handled in order as they are popped).
                    _wait_futures([entry[1] for entry in in_flight])
                    in_flight.appendleft(submit(item, attempts))
                    continue
                window_completed += 1
                window_latency += latency
                window_units += len(item) if chunked else 1
                if window_completed >= cap:
                    # Sample only when the window actually exercised the
                    # current level (cap == level; an explicit ``window``
                    # argument below it caps real concurrency, so a
                    # level/latency estimate would fabricate improvements
                    # and ramp the shared level on zero evidence — such
                    # capped runs leave the level to rejections alone).
                    if cap == self.level:
                        before = self.level
                        mean_latency = window_latency / window_completed
                        # Little's-law throughput estimate: ``level``
                        # requests in flight, each taking ``mean_latency``
                        # (measured inside the worker), complete at
                        # level/latency per second — derived purely from
                        # worker-side timing, so a consumer that pauses
                        # between next() calls can never read as a server
                        # throughput collapse (a wall-clock window would).
                        # In chunked mode a "request" is a chunk, so the
                        # estimate is weighted by mean units per chunk to
                        # stay in work units per second.
                        mean_units = window_units / window_completed
                        self._controller.on_sample(
                            before,
                            throughput=before * mean_units
                            / max(mean_latency, 1e-9),
                            latency=mean_latency)
                        if self.level != before:
                            self.level_history.append(self.level)
                    window_completed = 0
                    window_latency = 0.0
                    window_units = 0
                yield result
        finally:
            _drain_futures(entry[1] for entry in in_flight)
