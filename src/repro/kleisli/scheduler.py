"""Bounded and adaptive concurrency for remote requests.

Section 4, "Laziness, Latency, and Concurrency": the system issues several
requests to a remote server at once, but must respect the server's capacity
("say five") and not let unconsumed replies pile up.  :class:`BoundedScheduler`
is that mechanism: a worker pool whose size never exceeds the per-server cap,
used by the parallel-loop operator the optimizer introduces around remote
inner loops.

The paper closes the section with its reference [43]: *"techniques to
automatically adjust the level of concurrency based on the capability of
servers and on resource availability are being developed."*
:class:`AdaptiveScheduler` implements that extension: it probes the server
with an additive-increase / multiplicative-decrease policy, ramping the number
of in-flight requests up while responses stay fast and backing off when the
server rejects requests or its per-request latency degrades.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as _wait_futures
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Type, TypeVar

from ..core.errors import RemoteSourceError

__all__ = ["BoundedScheduler", "AdaptiveScheduler"]

T = TypeVar("T")
R = TypeVar("R")


def _drain_futures(futures: Iterable) -> None:
    """Settle abandoned in-flight futures (early-close cleanup).

    Cancels what has not started; awaits what has (a running request cannot
    be cancelled, and its reply must not arrive with the pool still owed
    work after the consumer is gone).  Shared by every ``prefetch``
    implementation so the drain policy cannot diverge.
    """
    for future in futures:
        future.cancel()
        if not future.cancelled():
            try:
                future.result()
            except Exception:
                pass


class _ExecutorMixin:
    """One lazily-created worker pool per scheduler, shared across calls.

    Earlier versions constructed a fresh ``ThreadPoolExecutor`` per ``map``
    call (bounded) or per *batch* (adaptive) — thread creation and joining
    dominated short batches.  The pool is created on first use, reused by
    every subsequent ``map``/``prefetch``, and shut down by :meth:`close`
    (or the context-manager protocol, or the finalizer as a backstop).
    """

    _pool: Optional[ThreadPoolExecutor] = None

    def _executor(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=self.max_workers)
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the worker pool (joins its threads); safe to call twice."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        pool = self.__dict__.get("_pool")
        if pool is not None:
            pool.shutdown(wait=False)

    def prefetch(self, function: Callable[[T], R], items: Iterable[T],
                 window: Optional[int] = None) -> Iterator[R]:
        """Apply ``function`` with a bounded sliding window, yielding in order.

        The pipelined counterpart of ``map``: a window of at most
        ``max_workers`` requests is in flight while the consumer processes
        earlier replies, so remote latency overlaps consumption end-to-end
        instead of only within one batch.  Each yielded result frees a slot
        and the next item is issued immediately — and because ``items`` is
        pulled lazily, the source itself is only consumed ``window`` elements
        ahead of the consumer (bounding unconsumed replies, the paper's
        resource-control concern).

        Abandoning the iterator (``close()``) stops issuing new requests;
        already in-flight ones are drained so the pool is left quiescent.
        """
        window = self.max_workers if window is None else max(1, min(window, self.max_workers))
        iterator = iter(items)
        in_flight: deque = deque()
        pool = None
        try:
            while True:
                while len(in_flight) < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    with self._lock:
                        self.tasks_submitted += 1
                    if window == 1:
                        # Degenerate window: no concurrency, no pool needed.
                        yield function(item)
                        continue
                    if pool is None:
                        pool = self._executor()
                    in_flight.append(pool.submit(function, item))
                if not in_flight:
                    return
                yield in_flight.popleft().result()
        finally:
            _drain_futures(in_flight)


class BoundedScheduler(_ExecutorMixin):
    """Runs callables over a collection with at most ``max_workers`` in flight."""

    def __init__(self, max_workers: int = 5):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.tasks_submitted = 0
        self.batches = 0
        self._lock = threading.Lock()

    def map(self, function: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``function`` to every item, preserving order, never exceeding the cap.

        Items are processed in batches of ``max_workers`` so that a slow
        consumer never has more than one batch of unconsumed replies — the
        resource-control concern the paper raises about unbounded threads.
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            self.tasks_submitted += len(items)
        results: List[R] = []
        if self.max_workers == 1 or len(items) == 1:
            with self._lock:
                self.batches += 1
            return [function(item) for item in items]
        pool = self._executor()
        for start in range(0, len(items), self.max_workers):
            batch = items[start:start + self.max_workers]
            with self._lock:
                self.batches += 1
            results.extend(pool.map(function, batch))
        return results


class AdaptiveScheduler(_ExecutorMixin):
    """Adjusts the level of concurrency to the capability of the server.

    The policy is additive increase / multiplicative decrease over batches:

    * run a batch of at most ``level`` requests concurrently;
    * if the server rejected any of them (an ``overload_errors`` exception —
      by default :class:`~repro.core.errors.RemoteSourceError`, what a
      :class:`~repro.net.remote.RemoteSource` raises past its cap), halve the
      level and retry the rejected requests;
    * otherwise compare the batch's throughput (requests completed per second)
      with the best seen so far: while adding workers keeps improving it, add
      one more (up to ``max_workers``); when it collapses by more than
      ``degradation_threshold`` the server is saturating, so remove one; on a
      plateau hold the level, probing one step up every few batches so a slow
      first batch cannot pin the level at 1 forever.

    ``level_history`` records the level used for every batch and
    ``overload_events`` counts rejections, which the tests and the adaptive
    concurrency benchmark assert on.
    """

    #: Relative throughput improvement that justifies adding a worker.
    IMPROVEMENT_FACTOR = 1.05
    #: On a plateau, probe one level up every this many batches.
    PROBE_INTERVAL = 4

    def __init__(self, max_workers: int = 5, initial_workers: int = 1,
                 degradation_threshold: float = 1.5, max_retries: int = 3,
                 overload_errors: Tuple[Type[BaseException], ...] = (RemoteSourceError,)):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if initial_workers < 1 or initial_workers > max_workers:
            raise ValueError("initial_workers must be between 1 and max_workers")
        if degradation_threshold <= 1.0:
            raise ValueError("degradation_threshold must be greater than 1.0")
        self.max_workers = max_workers
        self.level = initial_workers
        self.degradation_threshold = degradation_threshold
        self.max_retries = max_retries
        self.overload_errors = overload_errors
        self.tasks_submitted = 0
        self.batches = 0
        self.retries = 0
        self.overload_events = 0
        self.level_history: List[int] = []
        self._best_throughput: Optional[float] = None
        self._plateau_batches = 0
        self._rejection_ceiling: Optional[int] = None
        self._lock = threading.Lock()

    def map(self, function: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``function`` to every item, preserving order, adapting the level.

        Requests rejected by the server are retried (at the reduced level) up
        to ``max_retries`` times each; a request that keeps being rejected
        re-raises its last error.
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            self.tasks_submitted += len(items)
        results: dict = {}
        pending: List[Tuple[int, T]] = list(enumerate(items))
        attempts: dict = {}
        while pending:
            level = self.level
            batch, pending = pending[:level], pending[level:]
            self.batches += 1
            self.level_history.append(level)
            started = time.perf_counter()
            failed = self._run_batch(function, batch, results, attempts, level)
            elapsed = time.perf_counter() - started
            if failed:
                self.overload_events += 1
                self.retries += len(failed)
                self._note_rejection(level)
                pending = failed + pending
                continue
            self._adjust_level(level, throughput=len(batch) / max(elapsed, 1e-9))
        return [results[index] for index in range(len(items))]

    def _run_batch(self, function, batch, results, attempts, level):
        """Run one batch; fill ``results``; return the rejected (index, item) pairs."""
        failed = []

        def run_one(entry):
            index, item = entry
            try:
                results[index] = function(item)
                return None
            except self.overload_errors as error:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > self.max_retries:
                    raise
                return (index, item, error)

        if level == 1 or len(batch) == 1:
            outcomes = [run_one(entry) for entry in batch]
        else:
            # The persistent pool is sized max_workers; submitting only
            # ``len(batch) <= level`` tasks keeps at most ``level`` in flight.
            outcomes = list(self._executor().map(run_one, batch))
        for outcome in outcomes:
            if outcome is not None:
                failed.append((outcome[0], outcome[1]))
        return failed

    def _note_rejection(self, level: int) -> None:
        """AIMD decrease after a server rejection (shared by map/prefetch).

        The server pushed back at ``level``: never offer it that many again
        (the rejection ceiling), halve the level, and re-baseline throughput
        at the reduced level.
        """
        ceiling = max(1, level - 1)
        if self._rejection_ceiling is not None:
            ceiling = min(ceiling, self._rejection_ceiling)
        self._rejection_ceiling = ceiling
        self._best_throughput = None
        self._plateau_batches = 0
        self.level = max(1, level // 2)

    def _adjust_level(self, level: int, throughput: float) -> None:
        if self._best_throughput is None:
            # The first batch (or the first after a rejection) only
            # establishes the baseline.
            self._best_throughput = throughput
            self.level = self._raised(level)
            return
        if throughput >= self._best_throughput * self.IMPROVEMENT_FACTOR:
            # More workers genuinely helped: keep ramping up.
            self._best_throughput = throughput
            self._plateau_batches = 0
            self.level = self._raised(level)
        elif throughput < self._best_throughput / self.degradation_threshold:
            # Throughput collapsed — the server is degrading under load.
            self._plateau_batches = 0
            self.level = max(1, level - 1)
        else:
            # Plateau: the server absorbed the extra requests without speeding
            # up.  Hold the level, but probe upwards occasionally.
            self._plateau_batches += 1
            if self._plateau_batches >= self.PROBE_INTERVAL:
                self._plateau_batches = 0
                self.level = self._raised(level)
            else:
                self.level = level

    def _raised(self, level: int) -> int:
        """One more worker, never past the pool cap or a level the server rejected."""
        ceiling = self.max_workers
        if self._rejection_ceiling is not None:
            ceiling = min(ceiling, self._rejection_ceiling)
        return min(ceiling, level + 1)

    def prefetch(self, function: Callable[[T], R], items: Iterable[T],
                 window: Optional[int] = None) -> Iterator[R]:
        """Sliding-window prefetch whose window follows the adaptive level.

        The AIMD policy carries over from ``map`` in per-item form: the
        window starts at the current ``level``, grows by one after every
        ``level`` consecutive successes (additive increase, bounded by
        ``max_workers`` and any rejection ceiling), and halves when the
        server rejects a request (multiplicative decrease); rejected items
        are re-issued up to ``max_retries`` times, preserving result order.
        """
        iterator = iter(items)
        in_flight: deque = deque()  # entries: [item, future, attempts, level]
        successes = 0

        def submit(item, attempts):
            # The submission level rides along so a whole burst rejected at
            # one level counts as ONE rejection event, like map's per-batch
            # policy — reacting once per failed future would compound the
            # halving and pin the rejection ceiling at 1.
            return [item, self._executor().submit(function, item), attempts,
                    self.level]

        try:
            while True:
                cap = self.level if window is None else max(1, min(window, self.level))
                while len(in_flight) < cap:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    with self._lock:
                        self.tasks_submitted += 1
                    in_flight.append(submit(item, 0))
                if not in_flight:
                    return
                item, future, attempts, submitted_at = in_flight.popleft()
                try:
                    result = future.result()
                except self.overload_errors:
                    attempts += 1
                    if attempts > self.max_retries:
                        raise
                    self.retries += 1
                    if self.level >= submitted_at:
                        # First failure seen from the burst submitted at this
                        # level; later failures from the same burst skip the
                        # decrease (the level is already below theirs).
                        self.overload_events += 1
                        self._note_rejection(submitted_at)
                        self.level_history.append(self.level)
                    successes = 0
                    # Let the burst that overloaded the server settle before
                    # re-issuing, or the retry lands on the same congestion
                    # (their results/errors stay stored in the futures and
                    # are handled in order as they are popped).
                    _wait_futures([entry[1] for entry in in_flight])
                    in_flight.appendleft(submit(item, attempts))
                    continue
                successes += 1
                if successes >= self.level:
                    successes = 0
                    raised = self._raised(self.level)
                    if raised != self.level:
                        self.level = raised
                        self.level_history.append(raised)
                yield result
        finally:
            _drain_futures(entry[1] for entry in in_flight)
