"""The subquery result cache.

"To avoid recomputation, we have therefore introduced an operator to cache the
result of a subquery on disk."  The cache used by the evaluator's ``Cached``
node is a plain mapping; this module provides one that holds small results in
memory and spills large ones to disk (pickled), plus hit/miss accounting for
the benchmarks.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from typing import Dict, Iterator, MutableMapping, Optional

__all__ = ["SubqueryCache"]


class SubqueryCache(MutableMapping):
    """A mapping from cache keys to materialised subquery results.

    Values whose pickled size exceeds ``spill_threshold_bytes`` are written to
    a temporary file and re-read on access, so a very large cached inner
    relation does not have to stay resident.
    """

    def __init__(self, spill_threshold_bytes: int = 1 << 20,
                 directory: Optional[str] = None):
        self.spill_threshold_bytes = spill_threshold_bytes
        self._memory: Dict[str, object] = {}
        self._spilled: Dict[str, str] = {}
        self._directory = directory or tempfile.mkdtemp(prefix="kleisli-cache-")
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.spills = 0

    # -- MutableMapping interface -------------------------------------------------

    def __setitem__(self, key: str, value: object) -> None:
        with self._lock:
            try:
                payload = pickle.dumps(value)
            except Exception:
                # Unpicklable values (closures etc.) stay in memory.
                self._memory[key] = value
                return
            if len(payload) > self.spill_threshold_bytes:
                path = os.path.join(self._directory, f"{abs(hash(key))}.pkl")
                with open(path, "wb") as handle:
                    handle.write(payload)
                self._spilled[key] = path
                self._memory.pop(key, None)
                self.spills += 1
            else:
                self._memory[key] = value

    def __getitem__(self, key: str) -> object:
        with self._lock:
            if key in self._memory:
                self.hits += 1
                return self._memory[key]
            if key in self._spilled:
                self.hits += 1
                with open(self._spilled[key], "rb") as handle:
                    return pickle.load(handle)
            self.misses += 1
            raise KeyError(key)

    def __delitem__(self, key: str) -> None:
        with self._lock:
            if key in self._memory:
                del self._memory[key]
                return
            if key in self._spilled:
                path = self._spilled.pop(key)
                if os.path.exists(path):
                    os.unlink(path)
                return
            raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return key in self._memory or key in self._spilled

    def __iter__(self) -> Iterator[str]:
        yield from self._memory
        yield from self._spilled

    def __len__(self) -> int:
        return len(self._memory) + len(self._spilled)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            for path in self._spilled.values():
                if os.path.exists(path):
                    os.unlink(path)
            self._spilled.clear()
