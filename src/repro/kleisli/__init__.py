"""Kleisli: the extensible query system CPL runs on top of.

* :mod:`repro.kleisli.engine` — driver registry, compile/optimize/execute pipeline.
* :mod:`repro.kleisli.session` — the user-facing CPL session (``define``, queries,
  output formatting), the equivalent of the paper's CPL prompt.
* :mod:`repro.kleisli.tokens` — token streams: lazy, pipelined transfer of data
  between drivers and the evaluator.
* :mod:`repro.kleisli.drivers` — the data drivers (relational/Sybase, ASN.1/Entrez,
  ACE, flat files, BLAST-style application programs).
* :mod:`repro.kleisli.scheduler` — bounded concurrency for remote requests.
* :mod:`repro.kleisli.cache` — the inner-subquery result cache.
* :mod:`repro.kleisli.statistics` — statically registered statistics about
  remote sources (the paper found on-the-fly statistics impractical).
"""

from .engine import KleisliEngine
from .session import Session
from .tokens import TokenStream

__all__ = ["KleisliEngine", "Session", "TokenStream"]
