"""The CPL session: the user-facing layer of the system.

A :class:`Session` is what the paper's biologist-facing views are built on: it
parses CPL, type-checks it against the declared types of registered sources,
desugars to NRC, hands the term to the Kleisli engine for optimization and
evaluation, and formats results (CPL value syntax, HTML, tab-delimited).

Typical use::

    session = Session()
    session.register_driver(RelationalDriver("GDB", gdb_database))
    session.register_driver(EntrezDriver("GenBank", entrez_server))
    session.run('define Loci22 == ...')
    result = session.run('{ [locus = l, homologs = NA-Links(u)] | \\l <- Loci22, ... }')
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core import types as T
from ..core.cpl import ast as S
from ..core.cpl.desugar import desugar_expression, desugar_statement
from ..core.cpl.parser import parse, parse_expression
from ..core.cpl.printer import render_html, render_tabular, render_value
from ..core.cpl.typecheck import TypeChecker, TypeEnvironment, TypeScheme
from ..core.errors import CPLTypeError, ReproError
from ..core.nrc import ast as A
from ..core.nrc.eval import Environment
from ..core.optimizer import OptimizerConfig
from ..core.values import from_python
from .drivers.base import Driver
from .engine import ExecutionMode, KleisliEngine
from .governance import CancellationToken, MemoryBudget

__all__ = ["Session", "QueryResult"]


class _TrackedStream:
    """A session-registered wrapper around a streamed query's iterator.

    The session keeps every live stream it handed out in a registry so that
    :meth:`Session.close` (what the query service calls when a client
    disconnects mid-stream) can release *this* session's cursors — and only
    this session's: the underlying cursors belong to the run's own
    ``EvalScope``, so closing one session never touches another's pipelines
    even though both run on the same shared engine.  A drained or closed
    stream unregisters itself, so the registry holds only live streams.
    """

    __slots__ = ("_session", "_iterator", "_done")

    def __init__(self, session: "Session", iterator: Iterator[object]):
        self._session = session
        self._iterator = iterator
        self._done = False

    def __iter__(self) -> "_TrackedStream":
        return self

    def __next__(self) -> object:
        try:
            return next(self._iterator)
        except BaseException:
            # Exhaustion and mid-stream failure both end the stream: the
            # engine's evaluation scope has already released the cursors.
            self._untrack()
            raise

    def close(self) -> None:
        """Close the underlying pipeline (releases its cursors) and
        unregister; closing twice, or after draining, is a no-op."""
        self._untrack()
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()

    def _untrack(self) -> None:
        if not self._done:
            self._done = True
            self._session._forget_stream(self)

    def __enter__(self) -> "_TrackedStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class QueryResult:
    """The value of a query plus the compile/run artefacts a caller may inspect."""

    def __init__(self, value: object, nrc: A.Expr, optimized: A.Expr,
                 inferred_type: Optional[T.Type]):
        self.value = value
        self.nrc = nrc
        self.optimized = optimized
        self.inferred_type = inferred_type

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"QueryResult({self.value!r})"


class Session:
    """A CPL session over a Kleisli engine."""

    def __init__(self, engine: Optional[KleisliEngine] = None,
                 optimizer_config: Optional[OptimizerConfig] = None,
                 typecheck: bool = True,
                 execution_mode: Optional[object] = None,
                 on_source_failure: Optional[str] = None,
                 memory_limit: Optional[int] = None):
        if engine is None:
            engine = KleisliEngine(
                optimizer_config,
                execution_mode=(ExecutionMode.COMPILED if execution_mode is None
                                else execution_mode))
        elif execution_mode is not None:
            # An explicit mode must not be silently dropped when the caller
            # supplies their own engine.
            engine.execution_mode = ExecutionMode.coerce(execution_mode)
        self.engine = engine
        self.typecheck = typecheck
        #: Session default for what a federated run does when a source stays
        #: down after retries: ``None`` defers to the engine's policy,
        #: ``"fail"`` propagates, ``"degrade"`` completes with typed
        #: partial-result warnings.  Per-call overrides win.
        self.on_source_failure = on_source_failure
        #: The session-wide memory quota: every governed run this session
        #: starts charges a per-run child of this budget, so concurrent
        #: queries share the cap and a finished run's usage flows back.
        #: ``None`` (the default) leaves runs ungoverned unless a per-call
        #: budget (or an engine pool) says otherwise.
        self.memory_budget: Optional[MemoryBudget] = None
        if memory_limit is not None:
            self.set_memory_limit(memory_limit)
        self.values: Dict[str, object] = {}
        # ``define f == e`` makes f a *synonym* for e (the paper's wording), so
        # definitions are stored as NRC expressions and expanded into queries
        # before optimization — that is what lets the optimizer see through
        # Loci22 / ASN-IDs in the DOE query and push work to the drivers.
        self.definitions: Dict[str, A.Expr] = {}
        self.type_checker = TypeChecker()
        # Live streamed queries handed out by this session.  Guarded by a
        # lock: the query service closes a disconnecting client's session
        # from the serving thread while a stream wrapper may be
        # unregistering itself.
        self._streams_lock = threading.Lock()
        self._open_streams: List[_TrackedStream] = []
        self._register_existing_driver_functions()

    # -- registration ------------------------------------------------------------

    def register_driver(self, driver: Driver, latency: Optional[float] = None,
                        source_types: Optional[Dict[str, T.Type]] = None) -> Driver:
        """Register a driver with the engine and bind its CPL functions.

        ``source_types`` optionally declares the CPL result type of each driver
        function for the type checker (e.g. the Publication type for an
        Entrez division).
        """
        self.engine.register_driver(driver, latency=latency)
        self._bind_driver_functions(driver)
        for name, ty in (source_types or {}).items():
            self.type_checker.bind_value_type(name, ty)
        return driver

    def _register_existing_driver_functions(self) -> None:
        for driver in self.engine.drivers.values():
            self._bind_driver_functions(driver)

    def _bind_driver_functions(self, driver: Driver) -> None:
        for function in driver.cpl_functions():
            # A callable fallback so that applications the optimizer does not
            # convert into Scan nodes still evaluate.
            def call(argument, _driver=driver, _function=function):
                return _driver.execute(_function.build_request(argument))

            self.values[function.name] = call
            # Give the function a permissive type so typechecking of queries
            # that call it does not fail (drivers may declare better types via
            # ``source_types``).
            if self.type_checker.environment.lookup(function.name) is None:
                self.type_checker.bind_value_type(
                    function.name, T.FunctionType(T.fresh_type_var(), T.fresh_type_var()))

    def bind(self, name: str, value: object, cpl_type: Optional[T.Type] = None,
             list_as: str = "list") -> object:
        """Bind a Python or CPL value in the session environment.

        Plain Python data (dicts, lists, sets, scalars) is lifted into CPL
        values; ``cpl_type`` (or an inferred type) is declared to the checker.
        """
        lifted = from_python(value, list_as=list_as)
        self.values[name] = lifted
        if cpl_type is None:
            from ..core.values import infer_type

            try:
                cpl_type = infer_type(lifted)
            except ReproError:
                cpl_type = None
        if cpl_type is not None:
            self.type_checker.bind_value_type(name, cpl_type)
        return lifted

    def define_type(self, name: str, cpl_type: T.Type) -> None:
        """Declare the type of a name without binding a value (e.g. a driver function)."""
        self.type_checker.bind_value_type(name, cpl_type)

    # -- running CPL ----------------------------------------------------------------

    def run(self, source: str, optimize: bool = True,
            deadline: Optional[float] = None,
            on_source_failure: Optional[str] = None,
            cancellation: Optional[CancellationToken] = None,
            memory_budget=None, spill: Optional[bool] = None,
            profile: bool = False):
        """Run a CPL program (one or more statements); return the last query's value.

        ``deadline`` (seconds) bounds each statement's driver work;
        ``on_source_failure`` overrides the session/engine failure policy
        (``"fail"`` | ``"degrade"``) for this call.  ``cancellation``,
        ``memory_budget`` and ``spill`` govern each statement's run as in
        :meth:`~repro.kleisli.engine.KleisliEngine.execute`; the session
        quota (:meth:`set_memory_limit`) applies when no per-call budget is
        given.
        """
        program = parse(source)
        result = None
        for statement in program.statements:
            result = self._run_statement(
                statement, optimize, deadline,
                self._failure_policy(on_source_failure),
                cancellation, self._effective_budget(memory_budget), spill,
                profile)
        return result

    def query(self, source: str, optimize: bool = True,
              mode: Optional[object] = None,
              deadline: Optional[float] = None,
              on_source_failure: Optional[str] = None,
              cancellation: Optional[CancellationToken] = None,
              memory_budget=None, spill: Optional[bool] = None,
              profile: bool = False) -> QueryResult:
        """Run a single CPL expression and return the full :class:`QueryResult`.

        ``mode`` overrides the engine's execution mode for this query
        (``"compiled"`` | ``"interpret"``); ``deadline`` and
        ``on_source_failure`` as in :meth:`run`; ``cancellation``,
        ``memory_budget`` and ``spill`` as in
        :meth:`~repro.kleisli.engine.KleisliEngine.execute`.
        """
        expression = parse_expression(source)
        inferred = self._infer(expression)
        nrc = self._expand(desugar_expression(expression))
        optimized = self.engine.compile(nrc) if optimize else nrc
        value = self.engine.execute(
            optimized, self.values, optimize=False, mode=mode,
            deadline=deadline,
            on_source_failure=self._failure_policy(on_source_failure),
            cancellation=cancellation,
            memory_budget=self._effective_budget(memory_budget), spill=spill,
            profile=profile)
        return QueryResult(value, nrc, optimized, inferred)

    def _failure_policy(self, override: Optional[str]) -> Optional[str]:
        """Per-call override, else the session default, else the engine's."""
        return override if override is not None else self.on_source_failure

    # -- governance ---------------------------------------------------------------

    def set_memory_limit(self, limit: Optional[int]) -> None:
        """Install (or clear, with ``None``) the session-wide memory quota.

        The quota parents into the engine's pool when one is configured, so
        a charge is admitted only if the query, the session *and* the engine
        all have room.  Replacing the quota affects runs started afterwards;
        in-flight runs keep charging the budget they were admitted under.
        """
        if limit is None:
            self.memory_budget = None
            return
        self.memory_budget = MemoryBudget(
            limit, label="session", parent=self.engine.governor.pool)

    def _effective_budget(self, memory_budget):
        """Per-call budget composed with the session quota.

        No per-call budget → the session quota (or ``None``: ungoverned).
        A per-call ``int`` under a session quota caps this one query *inside*
        the quota; a caller-built :class:`MemoryBudget` is trusted as-is.
        """
        if memory_budget is None:
            return self.memory_budget
        if (self.memory_budget is not None
                and not isinstance(memory_budget, MemoryBudget)):
            return MemoryBudget(int(memory_budget), label="query",
                                parent=self.memory_budget)
        return memory_budget

    def stream(self, source: str, optimize: bool = True,
               mode: Optional[object] = None,
               deadline: Optional[float] = None,
               on_source_failure: Optional[str] = None,
               cancellation: Optional[CancellationToken] = None,
               memory_budget=None, spill: Optional[bool] = None,
               profile: bool = False) -> Iterator[object]:
        """Run a query with pipelined (lazy) result delivery.

        In compiled mode the optimized term is lowered to a pull-based
        generator pipeline, so *any* query shape — nested comprehensions,
        filters, parallel remote loops, join probes — yields elements as
        they are produced; time-to-first-result does not wait for sources
        to drain.  Closing the returned iterator early releases every
        cursor the pipeline opened (``engine.last_eval_statistics`` /
        :attr:`last_eval_statistics` reports the run, including
        ``stream_fallbacks`` for sections that had to run eagerly).
        """
        expression = parse_expression(source)
        self._infer(expression)
        nrc = self._expand(desugar_expression(expression))
        stream = _TrackedStream(
            self, self.engine.stream(
                nrc, self.values, optimize=optimize, mode=mode,
                deadline=deadline,
                on_source_failure=self._failure_policy(on_source_failure),
                cancellation=cancellation,
                memory_budget=self._effective_budget(memory_budget),
                spill=spill, profile=profile))
        with self._streams_lock:
            self._open_streams.append(stream)
        return stream

    def _forget_stream(self, stream: "_TrackedStream") -> None:
        with self._streams_lock:
            try:
                self._open_streams.remove(stream)
            except ValueError:
                pass

    @property
    def open_stream_count(self) -> int:
        """How many streamed queries from this session are still live."""
        with self._streams_lock:
            return len(self._open_streams)

    def close(self) -> None:
        """End the session: close every live stream this session handed out.

        Only *this* session's cursors are released (each stream's cursors
        live in its own run's ``EvalScope``); the engine — and every other
        session multiplexed onto it — is untouched.  The query service
        calls this when a client disconnects, cleanly or not.
        """
        with self._streams_lock:
            streams = list(self._open_streams)
        for stream in streams:
            try:
                stream.close()
            except Exception:  # pragma: no cover - best-effort release
                pass
        # Return any quota the session still holds to the engine pool; the
        # per-run children have already settled, so this is belt-and-braces
        # against a leaked charge pinning pool capacity after disconnect.
        if self.memory_budget is not None:
            self.memory_budget.close()

    @property
    def last_eval_statistics(self):
        """The :class:`~repro.core.nrc.eval.EvalStatistics` of the last run."""
        return self.engine.last_eval_statistics

    @property
    def last_warnings(self) -> List[object]:
        """Typed :class:`~repro.core.errors.SourceDegradedWarning` records of
        the last run started on this thread (empty = complete results).

        Reads the engine's *thread-local* statistics, so on a shared engine
        another session's concurrent run cannot clobber the answer.
        """
        statistics = self.engine.thread_eval_statistics()
        return list(statistics.warnings) if statistics is not None else []

    @property
    def last_profile(self):
        """The :class:`~repro.obs.profile.QueryProfile` of the last observed
        run started on this thread, or ``None`` (unobserved runs record
        nothing — the zero-recorder contract)."""
        return self.engine.thread_profile()

    def explain(self, source: str) -> Tuple[A.Expr, List[Tuple[str, str]]]:
        """Return the optimized NRC form of a query and per-stage rewrite traces."""
        expression = parse_expression(source)
        nrc = self._expand(desugar_expression(expression))
        optimized, _, traces = self.engine.optimizer.explain(nrc)
        return optimized, traces

    def _run_statement(self, statement: S.Statement, optimize: bool,
                       deadline: Optional[float] = None,
                       on_source_failure: Optional[str] = None,
                       cancellation: Optional[CancellationToken] = None,
                       memory_budget=None, spill: Optional[bool] = None,
                       profile: bool = False):
        if isinstance(statement, S.Define):
            if self.typecheck:
                try:
                    self.type_checker.define(statement.name, statement.expr)
                except CPLTypeError:
                    # Definitions over un-typed driver functions are allowed;
                    # queries over properly declared sources still get checked.
                    pass
            _, _, nrc = desugar_statement(statement)
            self.definitions[statement.name] = self._expand(nrc)
            return None
        if self.typecheck and isinstance(statement, S.ExprStatement):
            self._infer(statement.expr)
        _, _, nrc = desugar_statement(statement)
        return self.engine.execute(self._expand(nrc), self.values,
                                   optimize=optimize, deadline=deadline,
                                   on_source_failure=on_source_failure,
                                   cancellation=cancellation,
                                   memory_budget=memory_budget, spill=spill,
                                   profile=profile)

    def _expand(self, nrc: A.Expr, depth: int = 20) -> A.Expr:
        """Substitute defined synonyms into ``nrc`` (non-recursive definitions only)."""
        current = nrc
        for _ in range(depth):
            free = A.free_variables(current)
            pending = [name for name in free if name in self.definitions]
            if not pending:
                return current
            for name in pending:
                current = A.substitute(current, name, self.definitions[name])
        return current

    def _infer(self, expression: S.SExpr) -> Optional[T.Type]:
        if not self.typecheck:
            return None
        try:
            return self.type_checker.infer(expression)
        except CPLTypeError:
            # Sources without declared types (driver functions, raw binds) make
            # full checking impossible; evaluation still proceeds, matching the
            # paper's "static type information is ... useful" (not mandatory).
            return None

    # -- output formatting --------------------------------------------------------------

    def print_value(self, value: object, width: int = 100) -> str:
        """Render a value in CPL value syntax."""
        return render_value(value, width=width)

    def print_html(self, value: object, title: str = "CPL query result") -> str:
        """Render a value as an HTML page (nested tables for nested relations)."""
        return render_html(value, title)

    def print_tabular(self, value: object, separator: str = "\t") -> str:
        """Render a flat relation as delimited text."""
        return render_tabular(value, separator)
