"""Query lifecycle governance: cancellation, memory budgets, engine books.

The server multiplexes many sessions onto ONE shared engine, so a single
runaway query — a huge blocked-join build side, an unbounded dedup seen-set,
an eager section over a hot source — can pin memory and CPU for every other
session.  This module supplies the three primitives the engine threads
through its layers to stop that:

``CancellationToken``
    Cooperative cancellation.  The engine plants the token on
    ``EvalContext.cancellation`` and every lowering checks it at its natural
    scheduling points (chunk boundaries, per-element pulls, eager loop heads,
    pre-driver-dispatch).  Cancellation raises a typed
    :class:`~repro.core.errors.QueryCancelledError` from *inside* the run's
    ``EvalScope``, so every cursor the run opened is released on the way out.

``MemoryBudget``
    A hierarchical accountant (query → session → engine pool) charged by the
    known unbounded materialization points.  Values are *estimated* bytes —
    element counts times :data:`NOMINAL_ROW_BYTES` — because exact Python
    object sizing is both slow and unstable; the budget is an admission
    gate, not an allocator.  Exceeding any level raises a typed
    :class:`~repro.core.errors.MemoryBudgetExceededError` unless a spill
    backend was attached (see :mod:`repro.kleisli.spill`), in which case the
    query degrades to slower-but-correct disk-backed execution.

``QueryGovernor``
    The engine-wide ledger: cancellations, spills, bytes spilled, budget
    rejections, watchdog kills — surfaced in ``engine.health()`` and the
    server ``stats`` op — plus the optional engine-wide memory pool that
    per-query budgets parent into.

Zero-governance contract: every hook is ``None``-guarded.  A query run with
no token and no budget takes exactly the pre-governance code paths —
pinned by the differential suite the same way PR 5 pinned zero-statistics
and PR 8 pinned zero-knowledge.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..core.errors import MemoryBudgetExceededError, QueryCancelledError

__all__ = [
    "CancellationToken",
    "MemoryBudget",
    "QueryGovernor",
    "NOMINAL_ROW_BYTES",
]

#: Estimated bytes charged per materialized element.  Deliberately a round
#: nominal figure (a small record's directory pointer + value tuple + set
#: slot): budgets gate *admission*, they do not meter the allocator, and a
#: stable unit keeps plan-gating (estimated rows × unit vs. budget)
#: deterministic across platforms.
NOMINAL_ROW_BYTES = 64


class CancellationToken:
    """A cooperative, idempotent cancellation flag for one query run.

    Thread-safe: ``cancel()`` may be called from any thread (the server's
    watchdog, a ``cancel`` wire op, a timeout handler) while the query runs
    on another.  The query observes it only at checkpoints —
    ``raise_if_cancelled()`` — so evaluation is never interrupted mid-value;
    a cancelled run either completes a checkpoint-free tail or raises the
    typed error with no partial value emitted past the checkpoint.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cancellation.  Idempotent; the first reason wins."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason if self._event.is_set() else None

    def raise_if_cancelled(self) -> None:
        """The checkpoint: raise :class:`QueryCancelledError` if cancelled."""
        if self._event.is_set():
            raise QueryCancelledError(self._reason or "query cancelled")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = f"cancelled: {self._reason!r}" if self.cancelled else "live"
        return f"CancellationToken({state})"


class MemoryBudget:
    """A hierarchical memory accountant: charges walk up to every ancestor.

    A per-query budget typically parents into a per-session budget which
    parents into the engine-wide pool, so one charge is admitted only if
    *every* level has room — the session cap protects the engine from one
    greedy session, the pool protects the process from all sessions at once.

    ``charge``/``release`` take estimated bytes; ``charge_elements`` is the
    convenience most call sites use (count × :data:`NOMINAL_ROW_BYTES`).
    ``close()`` returns the budget's entire outstanding usage to its
    ancestors — the engine calls it in the run's ``finally`` so a failed or
    cancelled query can never leak pool capacity.
    """

    __slots__ = ("label", "limit", "parent", "_lock", "_used", "_peak",
                 "_closed")

    def __init__(self, limit: Optional[int], label: str = "query",
                 parent: Optional["MemoryBudget"] = None):
        if limit is not None and limit <= 0:
            raise ValueError(f"memory budget limit must be positive, got {limit}")
        self.label = label
        self.limit = limit
        self.parent = parent
        self._lock = threading.Lock()
        self._used = 0
        self._peak = 0
        self._closed = False

    # -- accounting ---------------------------------------------------------

    def charge(self, nbytes: int) -> None:
        """Admit ``nbytes`` at this level and every ancestor, or raise.

        On rejection at any level, charges already admitted at lower levels
        are rolled back, so a failed charge is a no-op on the books.
        """
        if nbytes <= 0:
            return
        node: Optional[MemoryBudget] = self
        charged = []
        try:
            while node is not None:
                node._charge_one(nbytes)
                charged.append(node)
                node = node.parent
        except MemoryBudgetExceededError:
            for paid in charged:
                paid._release_one(nbytes)
            raise

    def charge_elements(self, count: int) -> None:
        """Charge ``count`` materialized elements at the nominal row size."""
        if count > 0:
            self.charge(count * NOMINAL_ROW_BYTES)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to this level and every ancestor."""
        if nbytes <= 0:
            return
        node: Optional[MemoryBudget] = self
        while node is not None:
            node._release_one(nbytes)
            node = node.parent

    def release_elements(self, count: int) -> None:
        if count > 0:
            self.release(count * NOMINAL_ROW_BYTES)

    def close(self) -> None:
        """Return all outstanding usage to the ancestors (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = self._used
            self._used = 0
        node = self.parent
        while node is not None:
            node._release_one(outstanding)
            node = node.parent

    # -- single-level primitives --------------------------------------------

    def _charge_one(self, nbytes: int) -> None:
        with self._lock:
            new_used = self._used + nbytes
            if self.limit is not None and new_used > self.limit:
                raise MemoryBudgetExceededError(
                    self.label, nbytes, self.limit, self._used)
            self._used = new_used
            if new_used > self._peak:
                self._peak = new_used

    def _release_one(self, nbytes: int) -> None:
        with self._lock:
            self._used = max(0, self._used - nbytes)

    # -- introspection ------------------------------------------------------

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def peak(self) -> int:
        with self._lock:
            return self._peak

    def headroom(self) -> Optional[int]:
        """Bytes admittable before *this level* rejects (``None`` = unbounded)."""
        if self.limit is None:
            return None
        with self._lock:
            return max(0, self.limit - self._used)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cap = "unbounded" if self.limit is None else str(self.limit)
        return (f"MemoryBudget({self.label!r}, used={self.used}, "
                f"limit={cap})")


class QueryGovernor:
    """The engine's governance ledger plus the optional engine-wide pool.

    One instance per :class:`~repro.kleisli.engine.KleisliEngine`.  Book
    increments come from everywhere governance acts — the engine's run
    finalizer (cancellations), the spill manager (spills, bytes_spilled),
    budget rejections, the server watchdog (watchdog_kills) — and are
    surfaced as the ``governance`` section of ``engine.health()`` and the
    server ``stats`` op, so the differential/soak suites can assert the
    books balance.
    """

    BOOK_KEYS = ("cancellations", "spills", "bytes_spilled", "rows_spilled",
                 "budget_rejections", "watchdog_kills")

    __slots__ = ("_lock", "_books", "pool")

    def __init__(self, pool_limit: Optional[int] = None):
        self._lock = threading.Lock()
        self._books: Dict[str, int] = {key: 0 for key in self.BOOK_KEYS}
        #: The engine-wide memory pool per-query budgets parent into; ``None``
        #: when the engine runs without a pool cap.
        self.pool: Optional[MemoryBudget] = (
            MemoryBudget(pool_limit, label="engine")
            if pool_limit is not None else None)

    def count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._books[key] = self._books.get(key, 0) + amount

    def merge(self, books: Dict[str, int]) -> None:
        """Fold a run-local book dict (e.g. a spill manager's) into the ledger."""
        with self._lock:
            for key, amount in books.items():
                if amount:
                    self._books[key] = self._books.get(key, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            books = dict(self._books)
        if self.pool is not None:
            books["pool_used_bytes"] = self.pool.used
            books["pool_limit_bytes"] = self.pool.limit
        return books
