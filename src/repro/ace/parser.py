"""Parser for the ``.ace`` bulk-load text format.

The format is paragraph-oriented::

    Locus : "D22S1"
    Map "Chr_22" Position 12.5
    Genbank_ref "M81409"
    Remark "isolated from cosmid library"

    Sequence : "M81409"
    DNA "acgt..."
    Organism "Homo sapiens"

Each paragraph starts with ``Class : "ObjectName"``; following lines are a tag
followed by one or more values.  A value is a quoted string, a number, or a
``Class:"Name"`` reference.  Blank lines separate objects.  This is the format
the paper's system emits ("bulk load") when populating ACEDB from CPL.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional

from ..core.errors import ACEParseError
from .model import AceObject, AceObjectRef

__all__ = ["parse_ace", "iter_ace_objects"]

_VALUE_RE = re.compile(
    r'\s*(?:"((?:[^"\\]|\\.)*)"'              # quoted string
    r"|([A-Za-z_][A-Za-z0-9_]*)\s*:\s*\"((?:[^\"\\]|\\.)*)\""  # Class:"Name" reference
    r"|(-?\d+\.\d+)"                           # float
    r"|(-?\d+)"                                # int
    r"|([A-Za-z_][A-Za-z0-9_.-]*))"            # bare word
)


def parse_ace(text: str) -> List[AceObject]:
    """Parse .ace text into a list of :class:`AceObject`."""
    return list(iter_ace_objects(text))


def iter_ace_objects(text: str) -> Iterator[AceObject]:
    current: Optional[AceObject] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if line.startswith("//"):
            continue
        if not line:
            if current is not None:
                yield current
                current = None
            continue
        if current is None:
            current = _parse_header(line, line_number)
            continue
        _parse_tag_line(current, line, line_number)
    if current is not None:
        yield current


def _parse_header(line: str, line_number: int) -> AceObject:
    match = re.match(r'([A-Za-z_][A-Za-z0-9_]*)\s*:\s*"((?:[^"\\]|\\.)*)"\s*$', line)
    if match is None:
        raise ACEParseError(
            f'line {line_number}: expected an object header like Class : "Name", got {line!r}'
        )
    class_name, object_name = match.group(1), match.group(2)
    return AceObject(class_name, _unescape(object_name))


def _parse_tag_line(obj: AceObject, line: str, line_number: int) -> None:
    match = re.match(r"([A-Za-z_][A-Za-z0-9_]*)(.*)$", line)
    if match is None:
        raise ACEParseError(f"line {line_number}: expected a tag line, got {line!r}")
    tag, rest = match.group(1), match.group(2)
    values = _parse_values(rest, line_number)
    if not values:
        obj.add(tag, True if not obj.values(tag) else True)
        return
    index = 0
    while index < len(values):
        value = values[index]
        # "Tag Class:"Name"" pairs where a bare word precedes a value are treated
        # as sub-tags: Map "Chr_22" Position 12.5 -> Map edge gets the pair list.
        obj.add(tag, value)
        index += 1


def _parse_values(text: str, line_number: int) -> List[object]:
    values: List[object] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _VALUE_RE.match(text, position)
        if match is None:
            raise ACEParseError(f"line {line_number}: cannot parse value near {text[position:]!r}")
        if match.group(1) is not None:
            values.append(_unescape(match.group(1)))
        elif match.group(2) is not None:
            values.append(AceObjectRef(match.group(2), _unescape(match.group(3))))
        elif match.group(4) is not None:
            values.append(float(match.group(4)))
        elif match.group(5) is not None:
            values.append(int(match.group(5)))
        else:
            values.append(match.group(6))
        position = match.end()
    return values


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")
