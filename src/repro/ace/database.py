"""The ACE object store."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..core.errors import ACEError
from ..core.values import CSet, Record, Ref
from .model import AceClass, AceObject, AceObjectRef

__all__ = ["AceDatabase"]


class AceDatabase:
    """A set of ACE classes with reference resolution.

    CPL's dereferencing (`!ref` / reference patterns) resolves through
    :meth:`resolve`, which is why :meth:`AceObject.to_record` mints
    :class:`~repro.core.values.Ref` values bound to this store.
    """

    def __init__(self, name: str = "acedb"):
        self.name = name
        self.classes: Dict[str, AceClass] = {}

    # -- loading --------------------------------------------------------------

    def ensure_class(self, class_name: str) -> AceClass:
        if class_name not in self.classes:
            self.classes[class_name] = AceClass(class_name)
        return self.classes[class_name]

    def add_object(self, obj: AceObject) -> None:
        self.ensure_class(obj.class_name).add_object(obj)

    def new_object(self, class_name: str, name: str) -> AceObject:
        obj = AceObject(class_name, name)
        self.add_object(obj)
        return obj

    def load(self, objects: Iterable[AceObject]) -> int:
        count = 0
        for obj in objects:
            self.add_object(obj)
            count += 1
        return count

    # -- access ----------------------------------------------------------------

    def ace_class(self, class_name: str) -> AceClass:
        try:
            return self.classes[class_name]
        except KeyError:
            raise ACEError(f"database {self.name!r} has no class {class_name!r}")

    def class_names(self) -> List[str]:
        return sorted(self.classes)

    def get(self, class_name: str, object_name: str) -> AceObject:
        return self.ace_class(class_name).get(object_name)

    def scan(self, class_name: str) -> CSet:
        """Return every object of a class as a set of CPL records (the driver's table scan)."""
        return CSet(obj.to_record(self) for obj in self.ace_class(class_name))

    def resolve(self, ref: Ref) -> Record:
        """Resolve a CPL reference minted by this store into its record."""
        obj = self.get(ref.class_name, str(ref.identifier))
        return obj.to_record(self)

    def __len__(self) -> int:
        return sum(len(ace_class) for ace_class in self.classes.values())
