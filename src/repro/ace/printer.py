"""Writer for the ``.ace`` bulk-load text format.

The paper: *"some systems such as ACEDB have a text format for describing a
whole database in which the object identifiers are explicit values.  We can
generate such files with the existing machinery of CPL by applying the
appropriate output reformatting routines."*  :func:`dump_ace` is that
reformatting routine; it also accepts CPL records (as produced by a CPL
transformation) and converts them to objects on the fly.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from ..core.errors import ACEError
from ..core.values import CBag, CList, CSet, Record, Ref
from .model import AceObject, AceObjectRef

__all__ = ["dump_ace", "record_to_ace_object"]


def dump_ace(objects: Iterable[Union[AceObject, Record]]) -> str:
    """Render objects (or CPL records with ``class``/``name`` fields) as .ace text."""
    paragraphs: List[str] = []
    for item in objects:
        if isinstance(item, Record):
            item = record_to_ace_object(item)
        paragraphs.append(_render_object(item))
    return "\n\n".join(paragraphs) + "\n"


def record_to_ace_object(record: Record) -> AceObject:
    """Convert a CPL record into an ACE object.

    The record must carry ``class`` and ``name`` fields; every other field
    becomes a tag.  Collection-valued fields become repeated tag lines, and
    :class:`~repro.core.values.Ref` values become object references.
    """
    if not (record.has_field("class") and record.has_field("name")):
        raise ACEError("a record needs 'class' and 'name' fields to become an ACE object")
    obj = AceObject(str(record.project("class")), str(record.project("name")))
    for label, value in record.items():
        if label in ("class", "name"):
            continue
        for single in _iter_values(value):
            obj.add(label, _convert_value(single))
    return obj


def _iter_values(value: object):
    if isinstance(value, (CSet, CBag, CList)):
        for element in value:
            yield element
    else:
        yield value


def _convert_value(value: object):
    if isinstance(value, Ref):
        return AceObjectRef(value.class_name, str(value.identifier))
    if isinstance(value, (str, int, float, bool)):
        return value
    raise ACEError(f"cannot store a {type(value).__name__} value in an ACE object")


def _render_object(obj: AceObject) -> str:
    lines = [f'{obj.class_name} : "{_escape(obj.name)}"']
    for tag in obj.tag_names():
        for value in obj.values(tag):
            lines.append(f"{tag} {_render_value(value)}")
    return "\n".join(lines)


def _render_value(value: object) -> str:
    if isinstance(value, AceObjectRef):
        return f'{value.class_name}:"{_escape(value.object_name)}"'
    if isinstance(value, bool):
        return ""
    if isinstance(value, (int, float)):
        return repr(value)
    return f'"{_escape(str(value))}"'


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
