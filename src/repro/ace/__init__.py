"""The ACE substrate.

ACE/ACEDB is the tree-structured, object-identity-based format the paper names
as "extremely popular" within the HGP.  This package models it:

* :mod:`repro.ace.model` — classes, objects with identities, tree nodes;
* :mod:`repro.ace.database` — an object store with class scans and reference
  resolution (what CPL's reference type and dereferencing run against);
* :mod:`repro.ace.parser` / :mod:`repro.ace.printer` — the ``.ace`` text format
  used for bulk load and dump (the paper generates such files from CPL when
  populating ACEDB);
* :mod:`repro.ace.oodb` — generation of native OODB loader programs for
  object-oriented databases without a bulk-load format.
"""

from .model import AceClass, AceObject
from .database import AceDatabase
from .parser import parse_ace
from .printer import dump_ace
from .oodb import execute_oodb_program, generate_oodb_program

__all__ = ["AceClass", "AceObject", "AceDatabase", "parse_ace", "dump_ace",
           "generate_oodb_program", "execute_oodb_program"]
