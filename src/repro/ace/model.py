"""The ACE object model.

An ACE database is a set of *classes*; each class holds *objects* identified
by a name (the object identity); each object is a tree of tag → values edges
where a value is a scalar or a reference to another object.  This is a
faithful, if small, rendering of how ACEDB models data and is what gives CPL's
reference type something real to point at.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import ACEError
from ..core.values import CList, CSet, Record, Ref

__all__ = ["AceClass", "AceObject", "AceValue"]

AceValue = Union[str, int, float, "AceObjectRef"]


class AceObjectRef:
    """A reference to an object of some class by name (the ACE notion of identity)."""

    __slots__ = ("class_name", "object_name")

    def __init__(self, class_name: str, object_name: str):
        self.class_name = class_name
        self.object_name = object_name

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AceObjectRef)
                and (self.class_name, self.object_name) == (other.class_name, other.object_name))

    def __hash__(self) -> int:
        return hash((self.class_name, self.object_name))

    def __repr__(self) -> str:
        return f"{self.class_name}:{self.object_name}"


class AceObject:
    """An ACE object: an identity plus tag → list-of-values edges."""

    def __init__(self, class_name: str, name: str):
        self.class_name = class_name
        self.name = name
        self.tags: Dict[str, List[AceValue]] = {}

    def add(self, tag: str, value: AceValue) -> "AceObject":
        self.tags.setdefault(tag, []).append(value)
        return self

    def values(self, tag: str) -> List[AceValue]:
        return list(self.tags.get(tag, ()))

    def first(self, tag: str, default: Optional[AceValue] = None) -> Optional[AceValue]:
        values = self.tags.get(tag)
        return values[0] if values else default

    def tag_names(self) -> List[str]:
        return sorted(self.tags)

    def to_record(self, store: Optional[object] = None) -> Record:
        """Convert to a CPL record; object references become :class:`Ref` values."""
        fields: Dict[str, object] = {"class": self.class_name, "name": self.name}
        for tag, values in self.tags.items():
            converted = [self._convert(value, store) for value in values]
            fields[tag] = converted[0] if len(converted) == 1 else CList(converted)
        return Record(fields)

    @staticmethod
    def _convert(value: AceValue, store: Optional[object]) -> object:
        if isinstance(value, AceObjectRef):
            return Ref(value.class_name, value.object_name, store)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AceObject({self.class_name}:{self.name}, tags={self.tag_names()})"


class AceClass:
    """A class: a named collection of objects."""

    def __init__(self, name: str):
        self.name = name
        self.objects: Dict[str, AceObject] = {}

    def add_object(self, obj: AceObject) -> None:
        if obj.class_name != self.name:
            raise ACEError(
                f"object of class {obj.class_name!r} cannot be stored in class {self.name!r}"
            )
        self.objects[obj.name] = obj

    def get(self, name: str) -> AceObject:
        try:
            return self.objects[name]
        except KeyError:
            raise ACEError(f"class {self.name!r} has no object named {name!r}")

    def __iter__(self) -> Iterator[AceObject]:
        for name in sorted(self.objects):
            yield self.objects[name]

    def __len__(self) -> int:
        return len(self.objects)
