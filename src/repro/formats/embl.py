"""EMBL flat-file format (the two-letter line-code format, e.g. ``ID``, ``DE``, ``SQ``)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Union

from ..core.errors import FormatError
from ..core.values import CList, CSet, Record

__all__ = ["EmblRecord", "read_embl", "write_embl", "embl_to_cpl"]


class EmblRecord(NamedTuple):
    identifier: str
    description: str
    organism: str
    keywords: List[str]
    references: List[str]
    sequence: str


def read_embl(text: str) -> List[EmblRecord]:
    return list(iter_embl(text))


def iter_embl(text: str) -> Iterator[EmblRecord]:
    identifier = ""
    description_parts: List[str] = []
    organism = ""
    keywords: List[str] = []
    references: List[str] = []
    sequence_parts: List[str] = []
    in_sequence = False
    seen_any = False

    def build() -> EmblRecord:
        return EmblRecord(identifier, " ".join(description_parts), organism,
                          list(keywords), list(references), "".join(sequence_parts).upper())

    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.startswith("//"):
            if seen_any:
                yield build()
            identifier, organism = "", ""
            description_parts, keywords, references, sequence_parts = [], [], [], []
            in_sequence = False
            seen_any = False
            continue
        code, _, body = line.partition("   ")
        code = line[:2]
        body = line[5:].strip() if len(line) > 5 else ""
        if code == "ID":
            identifier = body.split(";")[0].split()[0] if body else ""
            seen_any = True
        elif code == "DE":
            description_parts.append(body)
            seen_any = True
        elif code == "OS":
            organism = body
            seen_any = True
        elif code == "KW":
            keywords.extend(k.strip() for k in body.rstrip(".").split(";") if k.strip())
            seen_any = True
        elif code == "RT":
            references.append(body.strip('"').rstrip(";").strip('"'))
            seen_any = True
        elif code == "SQ":
            in_sequence = True
            seen_any = True
        elif in_sequence and line.startswith("  "):
            sequence_parts.append("".join(ch for ch in body if ch.isalpha()))
    if seen_any:
        yield build()


def write_embl(records: Iterable[Union[EmblRecord, Record]]) -> str:
    blocks: List[str] = []
    for record in records:
        if isinstance(record, Record):
            record = EmblRecord(
                str(record.get("identifier", "")),
                str(record.get("description", "")),
                str(record.get("organism", "")),
                [str(k) for k in record.get("keywords", CList())],
                [str(r) for r in record.get("references", CList())],
                str(record.get("sequence", "")),
            )
        lines = [f"ID   {record.identifier}; SV 1; linear; DNA; STD; HUM; {len(record.sequence)} BP."]
        if record.description:
            lines.append(f"DE   {record.description}")
        if record.organism:
            lines.append(f"OS   {record.organism}")
        if record.keywords:
            lines.append("KW   " + "; ".join(record.keywords) + ".")
        for reference in record.references:
            lines.append(f'RT   "{reference}";')
        lines.append(f"SQ   Sequence {len(record.sequence)} BP;")
        for start in range(0, len(record.sequence), 60):
            lines.append("     " + record.sequence[start:start + 60].lower())
        lines.append("//")
        blocks.append("\n".join(lines))
    return "\n".join(blocks) + "\n"


def embl_to_cpl(records: Iterable[EmblRecord]) -> CList:
    """Lift EMBL records into CPL values (keywords become a set, as in the Publication type)."""
    return CList(
        Record({
            "identifier": record.identifier,
            "description": record.description,
            "organism": record.organism,
            "keywd": CSet(record.keywords),
            "references": CList(record.references),
            "sequence": record.sequence,
        })
        for record in records
    )
