"""FASTA format: ``>identifier description`` header lines followed by sequence lines."""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Union

from ..core.errors import FormatError
from ..core.values import CList, Record

__all__ = ["FastaRecord", "read_fasta", "write_fasta", "fasta_to_cpl"]


class FastaRecord(NamedTuple):
    identifier: str
    description: str
    sequence: str


def read_fasta(text: str) -> List[FastaRecord]:
    """Parse FASTA text into records."""
    return list(iter_fasta(text))


def iter_fasta(text: str) -> Iterator[FastaRecord]:
    identifier = None
    description = ""
    sequence_lines: List[str] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith(">"):
            if identifier is not None:
                yield FastaRecord(identifier, description, "".join(sequence_lines))
            header = line[1:].strip()
            if not header:
                raise FormatError(f"line {line_number}: empty FASTA header")
            parts = header.split(None, 1)
            identifier = parts[0]
            description = parts[1] if len(parts) > 1 else ""
            sequence_lines = []
            continue
        if identifier is None:
            raise FormatError(f"line {line_number}: sequence data before any FASTA header")
        cleaned = line.replace(" ", "")
        if not cleaned.replace("*", "").replace("-", "").isalpha():
            raise FormatError(f"line {line_number}: invalid sequence characters in {line!r}")
        sequence_lines.append(cleaned.upper())
    if identifier is not None:
        yield FastaRecord(identifier, description, "".join(sequence_lines))


def write_fasta(records: Iterable[Union[FastaRecord, Record]], line_width: int = 60) -> str:
    """Render records (FastaRecord or CPL records with id/description/sequence) as FASTA text."""
    blocks: List[str] = []
    for record in records:
        if isinstance(record, Record):
            identifier = str(record.get("identifier") or record.get("id") or record.get("accession"))
            description = str(record.get("description", ""))
            sequence = str(record.get("sequence", ""))
        else:
            identifier, description, sequence = record
        header = f">{identifier} {description}".rstrip()
        lines = [header]
        for start in range(0, len(sequence), line_width):
            lines.append(sequence[start:start + line_width])
        blocks.append("\n".join(lines))
    return "\n".join(blocks) + "\n"


def fasta_to_cpl(records: Iterable[FastaRecord]) -> CList:
    """Lift FASTA records into a CPL list of records (the flat-file driver's output)."""
    return CList(
        Record({"identifier": record.identifier,
                "description": record.description,
                "sequence": record.sequence,
                "length": len(record.sequence)})
        for record in records
    )
