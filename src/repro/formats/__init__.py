"""Flat-file sequence formats (FASTA, EMBL, GCG) and tabular exchange files.

The paper lists FASTA, GCG and EMBL among the formats its techniques handle;
the Kleisli flat-file driver reads these into CPL values and CPL's printing
routines write them back out.
"""

from .fasta import FastaRecord, read_fasta, write_fasta
from .embl import EmblRecord, read_embl, write_embl
from .gcg import read_gcg, write_gcg
from .tabular import read_tabular, write_tabular

__all__ = [
    "FastaRecord", "read_fasta", "write_fasta",
    "EmblRecord", "read_embl", "write_embl",
    "read_gcg", "write_gcg",
    "read_tabular", "write_tabular",
]
