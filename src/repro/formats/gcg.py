"""GCG (Wisconsin package) single-sequence format.

A GCG file has free-text comment lines, then a divider line ending in ``..``
that carries the name, length and checksum, then numbered sequence lines::

    perforin gene, human
    M81409  Length: 120  Check: 4556  ..

         1  acgtacgtac gtacgtacgt ...
"""

from __future__ import annotations

import re
from typing import NamedTuple, Tuple

from ..core.errors import FormatError

__all__ = ["GcgRecord", "read_gcg", "write_gcg", "gcg_checksum"]


class GcgRecord(NamedTuple):
    name: str
    length: int
    checksum: int
    comment: str
    sequence: str


_DIVIDER_RE = re.compile(
    r"^\s*(\S+)\s+Length:\s*(\d+)\s+(?:.*?)Check:\s*(\d+)\s+\.\.\s*$"
)


def gcg_checksum(sequence: str) -> int:
    """The classic GCG checksum: position-weighted character sum modulo 10000."""
    total = 0
    for index, char in enumerate(sequence.upper()):
        total += ((index % 57) + 1) * ord(char)
    return total % 10000


def read_gcg(text: str) -> GcgRecord:
    """Parse a single-sequence GCG file."""
    comment_lines = []
    divider = None
    sequence_parts = []
    for line in text.splitlines():
        if divider is None:
            match = _DIVIDER_RE.match(line)
            if match:
                divider = match
                continue
            if line.strip():
                comment_lines.append(line.strip())
            continue
        cleaned = "".join(ch for ch in line if ch.isalpha())
        sequence_parts.append(cleaned.upper())
    if divider is None:
        raise FormatError("GCG file has no divider line (ending in '..')")
    name, length, checksum = divider.group(1), int(divider.group(2)), int(divider.group(3))
    sequence = "".join(sequence_parts)
    if length != len(sequence):
        raise FormatError(
            f"GCG length mismatch: divider says {length}, sequence has {len(sequence)}"
        )
    actual = gcg_checksum(sequence)
    if checksum != actual:
        raise FormatError(f"GCG checksum mismatch: divider says {checksum}, computed {actual}")
    return GcgRecord(name, length, checksum, " ".join(comment_lines), sequence)


def write_gcg(name: str, sequence: str, comment: str = "") -> str:
    """Render a sequence as a GCG file (with a correct checksum)."""
    sequence = sequence.upper()
    lines = []
    if comment:
        lines.append(comment)
        lines.append("")
    lines.append(f"{name}  Length: {len(sequence)}  Check: {gcg_checksum(sequence)}  ..")
    lines.append("")
    position = 1
    for start in range(0, len(sequence), 50):
        chunk = sequence[start:start + 50].lower()
        grouped = " ".join(chunk[i:i + 10] for i in range(0, len(chunk), 10))
        lines.append(f"{position:>8}  {grouped}")
        position += 50
    return "\n".join(lines) + "\n"
