"""Tab-delimited exchange files.

The simplest of the exchange formats: a header row of column names followed by
value rows.  The CPL printing routine produces this form for "reading into
another programming language (e.g. perl)"; the flat-file driver can also read
it back as a relation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.errors import FormatError
from ..core.values import CSet, Record

__all__ = ["read_tabular", "write_tabular"]


def read_tabular(text: str, separator: str = "\t",
                 types: Optional[Sequence[str]] = None) -> CSet:
    """Parse delimited text (header + rows) into a set of CPL records.

    ``types`` optionally names per-column types (``"int"``, ``"float"``,
    ``"string"``); by default everything stays a string.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return CSet()
    header = lines[0].split(separator)
    if types is not None and len(types) != len(header):
        raise FormatError(
            f"types has {len(types)} entries but the header has {len(header)} columns"
        )
    records = []
    for line_number, line in enumerate(lines[1:], start=2):
        cells = line.split(separator)
        if len(cells) != len(header):
            raise FormatError(
                f"line {line_number}: expected {len(header)} cells, found {len(cells)}"
            )
        fields = {}
        for index, (name, cell) in enumerate(zip(header, cells)):
            fields[name] = _convert(cell, types[index] if types else "string", line_number)
        records.append(Record(fields))
    return CSet(records)


def _convert(cell: str, type_name: str, line_number: int) -> object:
    if type_name == "string":
        return cell
    try:
        if type_name == "int":
            return int(cell)
        if type_name == "float":
            return float(cell)
    except ValueError:
        raise FormatError(f"line {line_number}: cannot convert {cell!r} to {type_name}")
    raise FormatError(f"unknown column type {type_name!r}")


def write_tabular(rows: Iterable[Record], separator: str = "\t") -> str:
    """Render records as delimited text with a header row."""
    rows = list(rows)
    if not rows:
        return ""
    header: List[str] = []
    for row in rows:
        for label in row.labels:
            if label not in header:
                header.append(label)
    lines = [separator.join(header)]
    for row in rows:
        lines.append(separator.join(_render_cell(row.get(label)) for label in header))
    return "\n".join(lines) + "\n"


def _render_cell(value: object) -> str:
    if value is None:
        return ""
    return str(value)
